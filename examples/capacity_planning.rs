//! Capacity planning at scale: the (1+ε)-approximation on a fleet far
//! too large for the exact DP.
//!
//! The exact DP of Section 4.1 enumerates Π(m_j+1) configurations per
//! slot — 10⁸ for this fleet. The γ-grid of Section 4.2 shrinks that to
//! a few hundred while guaranteeing a (1+ε) factor, and time-varying
//! fleet sizes (Section 4.3, e.g. maintenance windows) come along for
//! free.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use std::time::Instant;

use heterogeneous_rightsizing::offline;
use heterogeneous_rightsizing::prelude::*;

fn main() {
    // 10,000 web nodes + 2,000 GPU nodes; a day of 5-minute slots.
    let horizon = 288;
    let web = ServerType::new("web", 10_000, 3.0, 1.0, CostModel::linear(0.4, 0.9));
    let gpu = ServerType::new("gpu", 2_000, 12.0, 4.0, CostModel::power(1.5, 0.3, 2.0));
    let types = vec![web, gpu];
    let cap: f64 = types.iter().map(|t| t.fleet_capacity()).sum();

    let trace = workloads::patterns::diurnal(horizon, 0.08 * cap, 0.65 * cap, 288, 0.6);
    let trace = workloads::stochastic::with_gaussian_noise(&trace, 0.03 * cap, 99);
    let instance = Instance::builder()
        .server_types(types)
        .loads(trace.capped(cap).into_values())
        .build()
        .expect("valid instance");

    println!("fleet: 10,000 web + 2,000 gpu; T = {horizon} five-minute slots");
    println!("exact DP grid would be 10,001 × 2,001 ≈ 2·10⁷ cells per slot — skipped\n");

    println!("{:>6} {:>8} {:>16} {:>14} {:>12}", "ε", "γ", "grid cells/slot", "cost", "time");
    println!("{}", "-".repeat(60));
    let mut costs: Vec<(f64, f64)> = Vec::new();
    for eps in [2.0, 1.0, 0.5, 0.25, 0.1] {
        let start = Instant::now();
        let apx = offline::approximate(&instance, &Dispatcher::new(), eps, true);
        let dt = start.elapsed();
        apx.result.schedule.check_feasible(&instance).expect("feasible");
        println!(
            "{:>6} {:>8.3} {:>16} {:>14.0} {:>10.1}ms",
            eps,
            apx.gamma,
            apx.grid_cells,
            apx.result.cost,
            dt.as_secs_f64() * 1e3
        );
        costs.push((eps, apx.result.cost));
    }

    // Tighter ε can only improve the (guaranteed) cost; show the realized
    // improvement from ε = 2 to ε = 0.1.
    let worst = costs.first().expect("non-empty").1;
    let best = costs.last().expect("non-empty").1;
    println!(
        "\nrefining ε from 2.0 to 0.1 improved the schedule by {:.2}% — each step",
        (1.0 - best / worst) * 100.0
    );
    println!("costs a constant-factor larger grid (ε^-d), never a blow-up in m or T.");
}

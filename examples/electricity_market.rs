//! Time-dependent operating costs: a fleet buying energy on a spot
//! market whose price swings by 4× between night and day.
//!
//! This is Section 3's setting — Algorithm A's fixed ski-rental runtime
//! is no longer well-defined, so Algorithm B adapts each server's
//! runtime to the *accumulated* idle cost, and Algorithm C refines time
//! slots until the additive constant c(I) drops below a chosen ε.
//!
//! ```text
//! cargo run --release --example electricity_market
//! ```

use heterogeneous_rightsizing::online::algo_b::c_constant;
use heterogeneous_rightsizing::prelude::*;
use heterogeneous_rightsizing::{offline, online};
use online::algo_c::COptions;
use online::baselines::{AllOn, ReactiveTimeout};
use online::runner::OnlineAlgorithm;
use online::LazyCapacityProvisioning;

fn main() {
    let horizon = 5 * 24; // five days, hourly slots
    let instance = workloads::scenario::electricity_market(8, horizon, 24, 7);
    let oracle = Dispatcher::new();
    let d = instance.num_types() as f64;
    let c = c_constant(&instance);

    println!("homogeneous fleet of 8 servers, {horizon} hourly slots");
    println!("price profile: diurnal 0.5×–2.0× multiplier on the whole power curve");
    println!("instance constant c(I) = Σ_j max_t l_t/β = {c:.3}");
    println!("Algorithm B guarantee: 2d+1+c(I) = {:.3}", 2.0 * d + 1.0 + c);
    println!("Algorithm C(ε=0.25) guarantee: 2d+1+ε = {:.3}\n", 2.0 * d + 1.0 + 0.25);

    let opt = offline::solve(&instance, &oracle, DpOptions::default());

    let mut contenders: Vec<Box<dyn OnlineAlgorithm>> = vec![
        Box::new(AlgorithmB::new(&instance, oracle, Default::default())),
        Box::new(AlgorithmC::new(
            &instance,
            oracle,
            COptions { epsilon: 0.25, ..Default::default() },
        )),
        Box::new(LazyCapacityProvisioning::new(&instance, oracle)),
        Box::new(AllOn),
        Box::new(ReactiveTimeout::with_ski_rental_timeouts(oracle, &instance)),
    ];

    println!("{:<22} {:>10} {:>8}", "policy", "cost", "ratio");
    println!("{}", "-".repeat(42));
    println!("{:<22} {:>10.1} {:>8.3}", "OPT (clairvoyant)", opt.cost, 1.0);
    for algo in contenders.iter_mut() {
        let run = online::run(&instance, algo.as_mut(), &oracle);
        run.schedule.check_feasible(&instance).expect("feasible");
        println!("{:<22} {:>10.1} {:>8.3}", run.name, run.cost(), run.ratio_vs(opt.cost));
    }

    // Show how B adapts runtimes: servers powered in cheap hours run
    // longer than servers powered when energy is dear.
    println!("\nwhy B beats fixed timeouts here: a server's runtime is the time its");
    println!("*accumulated* idle cost needs to reach β, so night-time servers (cheap");
    println!("energy) survive long gaps while peak-price servers retire quickly.");
}

//! A realistic week on a heterogeneous CPU+GPU fleet: diurnal load with
//! noise, compared across the paper's algorithms and practical baselines.
//!
//! This is the workload the paper's introduction motivates: servers idle
//! at a large fraction of peak power, so powering down through the night
//! valley saves real energy — if switching costs are managed.
//!
//! ```text
//! cargo run --release --example diurnal_fleet
//! ```

use heterogeneous_rightsizing::prelude::*;
use heterogeneous_rightsizing::{offline, online};
use online::baselines::{best_static, AllOn, Myopic, ReactiveTimeout};
use online::runner::OnlineAlgorithm;

fn main() {
    let days = 7;
    let slots_per_day = 24; // hourly decisions
    let seed = 2021;
    let instance = workloads::scenario::diurnal_cpu_gpu(6, 2, days, slots_per_day, seed);
    let oracle = Dispatcher::new();
    println!(
        "fleet: 6 CPU nodes + 2 GPU nodes; horizon {} slots ({} days, hourly)",
        instance.horizon(),
        days
    );
    println!(
        "load: diurnal + noise, peak {:.1}, mean {:.1}\n",
        instance.loads().iter().cloned().fold(0.0, f64::max),
        instance.loads().iter().sum::<f64>() / instance.horizon() as f64
    );

    let opt = offline::solve(&instance, &oracle, DpOptions::default());

    let mut contenders: Vec<Box<dyn OnlineAlgorithm>> = vec![
        Box::new(AlgorithmA::new(&instance, oracle, Default::default())),
        Box::new(AllOn),
        Box::new(Myopic::new(oracle, false)),
        Box::new(Myopic::new(oracle, true)),
        Box::new(ReactiveTimeout::with_ski_rental_timeouts(oracle, &instance)),
    ];

    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>10}",
        "policy", "cost", "ratio", "operating", "switching"
    );
    println!("{}", "-".repeat(64));
    println!(
        "{:<22} {:>10.1} {:>8.3} {:>10.1} {:>10.1}",
        "OPT (clairvoyant)",
        opt.cost,
        1.0,
        rsz_core_operating(&instance, &opt.schedule, &oracle),
        opt.schedule.switching_cost(&instance)
    );
    for algo in contenders.iter_mut() {
        let run = online::run(&instance, algo.as_mut(), &oracle);
        run.schedule.check_feasible(&instance).expect("feasible");
        println!(
            "{:<22} {:>10.1} {:>8.3} {:>10.1} {:>10.1}",
            run.name,
            run.cost(),
            run.ratio_vs(opt.cost),
            run.breakdown.operating,
            run.breakdown.switching
        );
    }
    if let Some((cfg, cost)) = best_static(&instance, &oracle, GridMode::Full) {
        println!("{:<22} {:>10.1} {:>8.3}", format!("best static {cfg}"), cost, cost / opt.cost);
    }

    println!("\nAlgorithm A follows the prefix optimum with ski-rental power-downs:");
    println!("it avoids both the always-on idle waste and the reactive policy's");
    println!("switching thrash, with a proven (2d+1) worst-case guarantee.");
}

fn rsz_core_operating(instance: &Instance, schedule: &Schedule, oracle: &Dispatcher) -> f64 {
    heterogeneous_rightsizing::core::objective::operating_cost(instance, schedule, oracle)
}

//! Quickstart: build a small heterogeneous instance, solve it offline,
//! run the online algorithm, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heterogeneous_rightsizing::prelude::*;
use heterogeneous_rightsizing::{offline, online};

fn main() {
    // A data center with two server types:
    //  * "slow":  4 machines, cheap to power up (β = 2), capacity 1 job/slot,
    //             energy-proportional cost 0.5 idle + 1.0 per unit load;
    //  * "fast":  2 machines, expensive to power up (β = 6), capacity 3,
    //             super-linear (quadratic) energy curve.
    let instance = Instance::builder()
        .server_type(ServerType::new("slow", 4, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::new("fast", 2, 6.0, 3.0, CostModel::power(1.0, 0.5, 2.0)))
        .loads(vec![1.0, 5.0, 2.0, 0.0, 0.0, 7.0, 3.0, 1.0, 4.0, 0.0])
        .build()
        .expect("valid instance");

    let oracle = Dispatcher::new();
    let d = instance.num_types() as f64;

    // ---- Offline optimum (Section 4.1): exact DP over the full grid.
    let opt = offline::solve(&instance, &oracle, DpOptions::default());
    println!("offline optimal schedule: {}", opt.schedule);
    println!("offline optimal cost:     {:.3}\n", opt.cost);

    // ---- (1+ε)-approximation (Section 4.2): γ-grid DP.
    let apx = offline::approximate(&instance, &oracle, 0.5, true);
    println!(
        "(1+0.5)-approx cost:      {:.3}  (guarantee ≤ {:.3})",
        apx.result.cost,
        apx.guarantee * opt.cost
    );

    // ---- Online Algorithm A (Section 2): (2d+1)-competitive.
    let mut algo = AlgorithmA::new(&instance, oracle, Default::default());
    let run = online::run(&instance, &mut algo, &oracle);
    println!("\nonline (Algorithm A) schedule: {}", run.schedule);
    println!("online cost:  {:.3}", run.cost());
    println!("  operating:  {:.3}", run.breakdown.operating);
    println!("  switching:  {:.3}", run.breakdown.switching);
    println!(
        "competitive ratio: {:.3}  (proven bound 2d+1 = {:.0})",
        run.ratio_vs(opt.cost),
        2.0 * d + 1.0
    );

    assert!(run.schedule.is_feasible(&instance));
    assert!(run.cost() <= (2.0 * d + 1.0) * opt.cost + 1e-9);
    println!("\nall bounds verified ✓");
}

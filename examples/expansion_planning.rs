//! Data-center expansion planning: time-varying fleet sizes
//! (Section 4.3) plus the actuation layer.
//!
//! A legacy fleet is joined by new-generation servers in two waves while
//! demand ramps up. The exact DP plans over per-slot fleet bounds
//! `m_{t,j}`; the plan is then materialized into per-server power
//! commands under both wear policies.
//!
//! ```text
//! cargo run --release --example expansion_planning
//! ```

use heterogeneous_rightsizing::core::render;
use heterogeneous_rightsizing::offline::{self, DpOptions};
use heterogeneous_rightsizing::online::actuation::{actuate, replay_matches, DownPolicy};
use heterogeneous_rightsizing::prelude::*;

fn main() {
    let instance = workloads::scenario::expansion(36);
    let oracle = Dispatcher::new();

    println!("expansion scenario: legacy fleet fixed at 4; new fleet grows 0 → 3 → 6");
    println!(
        "horizon {} slots; load ramps from {:.1} to {:.1}\n",
        instance.horizon(),
        instance.load(0),
        instance.load(instance.horizon() - 1)
    );

    // Exact offline plan (per-slot grids handle m_{t,j} natively).
    let plan = offline::solve(&instance, &oracle, DpOptions::default());
    println!("optimal cost: {:.2}", plan.cost);
    let apx = offline::approximate(&instance, &oracle, 0.5, true);
    println!("(1+0.5)-approx cost: {:.2} (guarantee ≤ {:.2})\n", apx.result.cost, 1.5 * plan.cost);

    println!("{}", render::schedule_chart(&instance, &plan.schedule));

    // Materialize into per-server commands.
    for policy in [DownPolicy::Lifo, DownPolicy::Fifo] {
        let act = actuate(&instance, &plan.schedule, policy);
        assert!(replay_matches(&instance, &plan.schedule, &act));
        println!(
            "{policy:?}: {} commands; per-type max power cycles: legacy {}, new {}",
            act.commands.len(),
            act.max_cycles(0),
            act.max_cycles(1),
        );
    }
    println!("\nFIFO spreads power cycles across servers (wear leveling); LIFO keeps");
    println!("a stable core running. Both realize the same optimal count schedule.");
}

//! Tiny statistics and timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Summary of a sample of ratios/costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarize a sample (NaNs are rejected by debug assertion).
#[must_use]
pub fn summarize(samples: &[f64]) -> Summary {
    debug_assert!(samples.iter().all(|v| !v.is_nan()));
    if samples.is_empty() {
        return Summary { n: 0, min: f64::NAN, mean: f64::NAN, max: f64::NAN };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in samples {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    Summary { n: samples.len(), min, mean: sum / samples.len() as f64, max }
}

/// Time a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Render a duration compactly (µs / ms / s).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 3.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}

//! Reproduce every figure and theorem-level experiment of the paper.
//!
//! ```text
//! cargo run --release -p rsz-bench --bin reproduce            # run everything
//! cargo run --release -p rsz-bench --bin reproduce -- list    # list experiments
//! cargo run --release -p rsz-bench --bin reproduce -- exp_ratio_a fig3_algo_b_trace
//! cargo run --release -p rsz-bench --bin reproduce -- --quick all
//! ```
//!
//! Reports are printed and saved under `results/`.

use std::path::PathBuf;

use rsz_bench::{registry, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut seed = 0xD1CEu64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            seed = v;
        }
    }
    let selected: Vec<&String> =
        args.iter().filter(|a| !a.starts_with("--") && a.as_str() != format!("{seed}")).collect();

    let reg = registry();
    if selected.iter().any(|a| a.as_str() == "list") {
        println!("available experiments:");
        for (id, desc, _) in &reg {
            println!("  {id:24} {desc}");
        }
        return;
    }

    let run_all = selected.is_empty() || selected.iter().any(|a| a.as_str() == "all");
    let cfg = ExperimentConfig { quick, seed };
    let results_dir = PathBuf::from("results");
    let mut ran = 0usize;
    for (id, desc, runner) in &reg {
        if !run_all && !selected.iter().any(|a| a.as_str() == *id) {
            continue;
        }
        eprintln!(">> running {id} — {desc}");
        let start = std::time::Instant::now();
        let report = runner(&cfg);
        let elapsed = start.elapsed();
        println!("{}", report.render());
        eprintln!("   ({id} finished in {:.2}s)\n", elapsed.as_secs_f64());
        if let Err(e) = report.save(&results_dir) {
            eprintln!("   warning: could not save results/{id}.txt: {e}");
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; try `reproduce list`");
        std::process::exit(2);
    }
    eprintln!("done: {ran} experiment(s); reports saved under results/");
}

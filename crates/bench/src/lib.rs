//! # rsz-bench — experiment harness
//!
//! One experiment per figure and theorem-level claim of the paper; see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for recorded results.
//! Each experiment is a pure function `run(&ExperimentConfig) -> Report`
//! so the `reproduce` binary, the integration tests (which run quick
//! configurations) and Criterion benches share the same code.

#![warn(missing_docs)]

pub mod experiments;
pub mod kernelbench;
pub mod report;
pub mod stats;
pub mod sweep;

pub use report::{Report, TextTable};

/// Knobs shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Reduced sweep sizes for CI / integration tests.
    pub quick: bool,
    /// Base RNG seed; experiments derive per-trial seeds from it.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { quick: false, seed: 0xD1CE }
    }
}

/// One registry entry: `(id, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn(&ExperimentConfig) -> Report);

/// The registry of all experiments.
#[must_use]
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        (
            "fig1_algo_a_trace",
            "Figure 1: Algorithm A power-up/-down mechanism trace",
            experiments::fig1::run,
        ),
        (
            "fig2_blocks",
            "Figure 2: block decomposition and special time slots",
            experiments::fig2::run,
        ),
        (
            "fig3_algo_b_trace",
            "Figure 3: Algorithm B trace (exact paper data)",
            experiments::fig3::run,
        ),
        ("fig4_graph", "Figure 4: graph representation and shortest path", experiments::fig4::run),
        (
            "fig5_gamma_rounding",
            "Figure 5: corridor schedule X' on the gamma-grid",
            experiments::fig5::run,
        ),
        (
            "exp_ratio_a",
            "Theorem 8 / Corollary 9: competitive ratio of Algorithm A",
            experiments::ratio_a::run,
        ),
        ("exp_ratio_b", "Theorem 13: competitive ratio of Algorithm B", experiments::ratio_b::run),
        ("exp_ratio_c", "Theorem 15: competitive ratio of Algorithm C", experiments::ratio_c::run),
        (
            "exp_approx_ratio",
            "Theorem 16: (2γ−1)-approximation quality",
            experiments::approx_ratio::run,
        ),
        (
            "exp_runtime_scaling",
            "Theorem 21/22: runtime and grid-size scaling",
            experiments::runtime_scaling::run,
        ),
        (
            "exp_time_varying_m",
            "Theorem 22: time-varying data-center sizes",
            experiments::time_varying_m::run,
        ),
        (
            "fig_chasing_lb",
            "Section 1: Ω(2^d/d) lower bound for general convex chasing",
            experiments::chasing_lb::run,
        ),
        (
            "exp_baselines",
            "Motivation: paper algorithms vs practical baselines",
            experiments::baselines::run,
        ),
        (
            "exp_integrality_gap",
            "Integrality gap: discrete OPT vs fractional relaxation",
            experiments::integrality_gap::run,
        ),
        (
            "exp_rounding_blowup",
            "Related work: fractional rounding blow-up vs discrete DP",
            experiments::rounding_blowup::run,
        ),
        (
            "exp_worstcase_search",
            "Lower-bound probe: adversarial search against Algorithm A",
            experiments::worstcase_search::run,
        ),
        (
            "exp_prefix_backend",
            "Ablation: exact vs γ-grid prefix backend inside Algorithm A",
            experiments::prefix_backend::run,
        ),
    ]
}

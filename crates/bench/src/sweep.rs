//! Parallel sweeps across independent experiment trials.
//!
//! Ratio experiments evaluate hundreds of independent (instance, seed)
//! pairs; each trial runs a full online algorithm plus an exact DP, so
//! they dominate the harness's wall-clock. Trials are embarrassingly
//! parallel: this helper fans them out over std scoped threads and
//! collects results in input order (so reports stay deterministic).

use std::sync::Mutex;

/// Map `f` over `inputs` in parallel, preserving input order.
///
/// `f` must be pure per input (no cross-trial state); results are
/// collected positionally, so output order is independent of thread
/// scheduling.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map_or(1, usize::from).min(n);
    if threads <= 1 || n == 1 {
        return inputs.iter().map(&f).collect();
    }
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                *slots[i].lock().expect("sweep worker panicked") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("sweep worker panicked").expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..257).collect();
        let out = parallel_map(inputs.clone(), |&x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(parallel_map(Vec::<u32>::new(), |&x| x).is_empty());
        assert_eq!(parallel_map(vec![7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn deterministic_with_nontrivial_work() {
        let inputs: Vec<u64> = (0..64).collect();
        let a = parallel_map(inputs.clone(), |&x| {
            // small busy work so threads interleave
            (0..1000u64).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        let b = parallel_map(inputs, |&x| {
            (0..1000u64).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        assert_eq!(a, b);
    }
}

//! Steady-state kernel-layer timing shared by the solver benches.
//!
//! The end-to-end scenarios of `dp_pipeline` / `dp_refine` mix oracle
//! pricing (KKT dispatch solves) with the kernel-layer work this PR
//! vectorized, so a whole-solve ratio understates the kernel win. This
//! module isolates the kernels on the *same gated instances*: it runs
//! the online engine's [`PrefixDp`] in engine mode, prices the pool
//! during an untimed warm-up (tiled diurnal traces repeat their λ
//! values, so every later slot is a pool hit), and then times
//! steady-state steps — each of which is exactly one arrival transform,
//! one priced-slot fold and one windowed argmin, with **zero** oracle
//! calls. The scalar side runs the identical steps under
//! [`kernels::force_scalar`], i.e. the pre-refactor per-cell paths.
//!
//! Both modes must pick the same configurations and land on the same
//! prefix-optimum bits — the measurement asserts the kernel layer's
//! bit-identity contract while it times it.

use std::time::Instant;

use rsz_core::Instance;
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::DpOptions;
use rsz_offline::{kernels, PrefixDp};

/// Wall-clock of the steady-state stepping loop under both kernel modes.
#[derive(Clone, Copy, Debug)]
pub struct KernelTiming {
    /// Best-of-iterations time of the timed steps, scalar twins forced.
    pub scalar_ms: f64,
    /// Best-of-iterations time of the timed steps, lanes kernels.
    pub simd_ms: f64,
}

impl KernelTiming {
    /// Scalar over lanes wall-clock — the kernel layer's speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }
}

/// Time `timed` steady-state engine-mode steps of `instance` after
/// `warm` untimed pool-warming steps, under the lanes kernels and the
/// scalar twins, best-of-`iterations` each.
///
/// The timed steps replay the warmed slots' λ values cyclically
/// (`λ = load(t mod warm)` via [`PrefixDp::step_scaled`]), so every
/// timed step is a pool hit by construction — pure kernel work —
/// whatever the instance's load period. The resulting prefix cost is
/// not the instance's true prefix optimum, which the measurement never
/// claims; both modes fold the identical slot stream.
///
/// # Panics
/// Panics if `warm` is zero, if the horizon is shorter than
/// `warm + timed`, or if the two modes disagree on any chosen
/// configuration or on the final prefix-optimum bits (the kernel
/// layer's bit-identity contract).
#[must_use]
pub fn measure(instance: &Instance, warm: usize, timed: usize, iterations: usize) -> KernelTiming {
    assert!(warm > 0, "need at least one pool-warming slot");
    assert!(
        warm + timed <= instance.horizon(),
        "kernel timing needs {warm}+{timed} slots, horizon is {}",
        instance.horizon()
    );
    let run_mode = |scalar: bool| -> (f64, Vec<rsz_core::Config>, u64) {
        kernels::force_scalar(scalar);
        let oracle = Dispatcher::new();
        let opts = DpOptions { engine: true, parallel: false, ..DpOptions::default() };
        let mut best = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..iterations.max(1) {
            let mut dp = PrefixDp::new(instance, opts);
            for t in 0..warm {
                let _ = dp.step(instance, &oracle, t);
            }
            let start = Instant::now();
            let mut configs = Vec::with_capacity(timed);
            for t in warm..warm + timed {
                configs.push(dp.step_scaled(instance, &oracle, t, instance.load(t % warm), 1.0));
            }
            best = best.min(start.elapsed().as_secs_f64());
            outcome = Some((configs, dp.prefix_opt_cost().to_bits()));
        }
        kernels::force_scalar(false);
        let (configs, cost_bits) = outcome.expect("at least one iteration");
        (best, configs, cost_bits)
    };

    let (simd_secs, simd_configs, simd_bits) = run_mode(false);
    let (scalar_secs, scalar_configs, scalar_bits) = run_mode(true);
    assert_eq!(simd_configs, scalar_configs, "kernel modes diverged on a chosen configuration");
    assert_eq!(simd_bits, scalar_bits, "kernel modes diverged on the prefix-optimum bits");
    KernelTiming { scalar_ms: scalar_secs * 1e3, simd_ms: simd_secs * 1e3 }
}

//! Plain-text experiment reports: aligned tables, key-value lines, and
//! persistence under `results/`.

use std::fmt::Write as _;
use std::path::Path;

/// A text report assembled by an experiment.
#[derive(Clone, Debug)]
pub struct Report {
    /// Stable experiment identifier (file stem under `results/`).
    pub id: &'static str,
    /// Human title printed as the header.
    pub title: String,
    lines: Vec<String>,
}

impl Report {
    /// Start a report.
    #[must_use]
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self { id, title: title.into(), lines: Vec::new() }
    }

    /// Append a free-form line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Append an empty line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Append a `key: value` line.
    pub fn kv(&mut self, key: &str, value: impl std::fmt::Display) {
        self.lines.push(format!("{key}: {value}"));
    }

    /// Append a rendered table.
    pub fn table(&mut self, table: &TextTable) {
        for l in table.render_lines() {
            self.lines.push(l);
        }
    }

    /// Render the full report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "=".repeat(self.title.len().max(8));
        let _ = writeln!(out, "{bar}\n{}\n{bar}", self.title);
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// Write the report under `dir/<id>.txt` (best-effort; returns the
    /// write error for the caller to surface).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.id)), self.render())
    }
}

/// Column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (cells are pre-formatted strings).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render to aligned lines (header, separator, rows).
    #[must_use]
    pub fn render_lines(&self) -> Vec<String> {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = Vec::with_capacity(self.rows.len() + 2);
        out.push(fmt_row(&self.headers));
        out.push(widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            out.push(fmt_row(row));
        }
        out
    }
}

/// Format a float compactly for tables.
#[must_use]
pub fn f(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".into()
    } else if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["name", "v"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let lines = t.render_lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    fn report_renders_title_and_lines() {
        let mut r = Report::new("x", "Test");
        r.kv("k", 3);
        let s = r.render();
        assert!(s.contains("Test"));
        assert!(s.contains("k: 3"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(f64::INFINITY), "inf");
        assert_eq!(f(1234.5), "1234");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(1.23456), "1.2346");
    }
}

//! Experiment implementations; see the crate root for the registry.

pub mod approx_ratio;
pub mod baselines;
pub mod chasing_lb;
pub mod families;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod integrality_gap;
pub mod prefix_backend;
pub mod ratio_a;
pub mod ratio_b;
pub mod ratio_c;
pub mod rounding_blowup;
pub mod runtime_scaling;
pub mod time_varying_m;
pub mod worstcase_search;

//! Shared instance families for the ratio experiments.

use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_workloads::{adversarial, costs, fleet, stochastic, Trace};

/// Workload shapes used when searching for bad competitive ratios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// One-slot spikes separated by `t̄`-scale gaps.
    SkiProbe,
    /// Randomized two-level oscillation.
    Sawtooth,
    /// Climb-and-collapse staircase.
    Staircase,
    /// Uniform jitter with forced zeros.
    Jitter,
}

/// All families, for sweeps.
pub const FAMILIES: [Family; 4] =
    [Family::SkiProbe, Family::Sawtooth, Family::Staircase, Family::Jitter];

impl Family {
    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Family::SkiProbe => "ski-probe",
            Family::Sawtooth => "sawtooth",
            Family::Staircase => "staircase",
            Family::Jitter => "jitter",
        }
    }

    /// Generate a trace of this family scaled to a fleet capacity.
    #[must_use]
    pub fn trace(&self, len: usize, cap: f64, seed: u64) -> Trace {
        match self {
            Family::SkiProbe => adversarial::ski_rental_probe(len, 0.8 * cap, 3),
            Family::Sawtooth => {
                adversarial::boundary_sawtooth(len, 0.2 * cap, 0.9 * cap, 1, 4, seed)
            }
            Family::Staircase => adversarial::staircase(len, cap / 4.0, 3, 2),
            Family::Jitter => adversarial::jitter(len, cap, 0.35, seed),
        }
    }
}

/// A `d`-type ratio-experiment instance with time-independent costs.
///
/// `constant_costs` replaces the linear energy curves with
/// load-independent ones (the Corollary 9 setting).
#[must_use]
pub fn time_independent(
    d: usize,
    family: Family,
    horizon: usize,
    seed: u64,
    constant_costs: bool,
) -> Instance {
    let mut types = fleet::scaling_family(d, 2);
    if constant_costs {
        for ty in &mut types {
            let idle = ty.idle_cost(0).max(0.2);
            ty.cost = CostSpec::Uniform(CostModel::constant(idle));
        }
    }
    let cap = fleet::total_capacity(&types);
    let trace = family.trace(horizon, cap, seed).capped(cap);
    Instance::builder()
        .server_types(types)
        .loads(trace.into_values())
        .build()
        .expect("family instances are feasible by construction")
}

/// A `d`-type instance with **time-dependent** costs: the scaling-family
/// fleet under a diurnal or spiky electricity-price profile.
#[must_use]
pub fn time_dependent(
    d: usize,
    family: Family,
    horizon: usize,
    seed: u64,
    spiky_prices: bool,
) -> Instance {
    let base = fleet::scaling_family(d, 2);
    let profile = if spiky_prices {
        costs::price_profile_spiky(horizon, 0.8, 3.0, 5)
    } else {
        costs::price_profile_diurnal(horizon, 0.5, 2.0, 8)
    };
    let types: Vec<ServerType> = base
        .into_iter()
        .map(|ty| {
            let model = match &ty.cost {
                CostSpec::Uniform(m) => m.clone(),
                _ => unreachable!("scaling_family is uniform"),
            };
            ServerType::with_spec(
                ty.name,
                ty.count,
                ty.switching_cost,
                ty.capacity,
                CostSpec::scaled(model, profile.clone()),
            )
        })
        .collect();
    let cap = fleet::total_capacity(&types);
    let trace = family.trace(horizon, cap, seed).capped(cap);
    Instance::builder()
        .server_types(types)
        .loads(trace.into_values())
        .build()
        .expect("family instances are feasible by construction")
}

/// Homogeneous random instance for the approximation experiments.
#[must_use]
pub fn approx_instance(d: usize, m_per_type: u32, horizon: usize, seed: u64) -> Instance {
    let types: Vec<ServerType> = (0..d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                m_per_type,
                1.0 + j as f64,
                1.0 + j as f64,
                CostModel::linear(0.3 + 0.2 * j as f64, 0.8),
            )
        })
        .collect();
    let cap = fleet::total_capacity(&types);
    let trace = stochastic::random_walk(horizon, cap / 2.0, cap / 4.0, cap, seed);
    Instance::builder()
        .server_types(types)
        .loads(trace.into_values())
        .build()
        .expect("approx instances are feasible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_produce_valid_instances() {
        for fam in FAMILIES {
            let i = time_independent(2, fam, 12, 1, false);
            assert_eq!(i.num_types(), 2);
            assert!(i.is_time_independent());
            let c = time_independent(2, fam, 12, 1, true);
            assert!(c.is_load_independent());
            let td = time_dependent(1, fam, 12, 1, true);
            assert!(!td.is_time_independent());
        }
    }

    #[test]
    fn approx_instance_valid() {
        let i = approx_instance(2, 10, 8, 3);
        assert_eq!(i.max_counts(), vec![10, 10]);
    }
}

//! Why discrete-first matters — the rounding blow-up from the paper's
//! related-work discussion.
//!
//! The fractional relaxation (Lin et al., Bansal et al.) allows
//! non-integral server counts. The paper observes that naively rounding
//! a fractional schedule *up* can make the switching cost arbitrarily
//! large: a fractional schedule oscillating between `1` and `1+δ` pays
//! switching `T·δ·β`, but its ceiling oscillates between 1 and 2 and
//! pays `≈ T·β/2 — a blow-up factor of `Θ(1/δ)`.
//!
//! This experiment constructs exactly that family, prices fractional
//! schedules with the natural continuous extension of the cost (d = 1,
//! linear costs, so `g_t(x) = idle·x + rate·λ_t` for feasible loads) and
//! tabulates the blow-up, then shows the discrete DP sidesteps the
//! problem entirely (its cost is within a constant of the fractional
//! optimum's lower bound).

use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve_cost_only, DpOptions};

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

/// Cost of a *fractional* schedule under d = 1 linear costs
/// (`idle + rate·z` per server): operating `Σ idle·x_t + rate·λ_t`,
/// switching `β·Σ (x_t − x_{t−1})^+`, starting from 0.
fn fractional_cost(xs: &[f64], loads: &[f64], idle: f64, rate: f64, beta: f64) -> f64 {
    let mut cost = 0.0;
    let mut prev = 0.0_f64;
    for (&x, &l) in xs.iter().zip(loads) {
        debug_assert!(x >= l, "fractional schedule must cover the load");
        cost += idle * x + rate * l + beta * (x - prev).max(0.0);
        prev = x;
    }
    cost
}

/// Run the rounding blow-up experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "exp_rounding_blowup",
        "Related work: rounding a fractional schedule blows up switching cost",
    );
    let horizon = if cfg.quick { 40 } else { 200 };
    let (idle, rate, beta) = (1.0, 0.5, 10.0);
    report.kv("family", "loads oscillate 1 ↔ 1+δ; fractional OPT tracks exactly");
    report.kv("T", horizon);
    report.kv("β", beta);
    report.blank();

    let mut table = TextTable::new([
        "δ",
        "fractional cost",
        "ceil-rounded cost",
        "blow-up",
        "discrete DP cost",
    ]);
    for &delta in &[0.5, 0.2, 0.1, 0.05, 0.01] {
        // Loads alternate between 1 and 1+δ; capacity 1 per server.
        let loads: Vec<f64> =
            (0..horizon).map(|t| if t % 2 == 0 { 1.0 } else { 1.0 + delta }).collect();
        // The load-tracking fractional schedule (optimal for small δ:
        // idle savings β·δ per cycle dominate? — it is *a* natural
        // fractional schedule; we need it only as the rounding input).
        let frac: Vec<f64> = loads.clone();
        let c_frac = fractional_cost(&frac, &loads, idle, rate, beta);
        // Naive rounding: ceil every count.
        let rounded: Vec<f64> = frac.iter().map(|x| x.ceil()).collect();
        let c_rounded = fractional_cost(&rounded, &loads, idle, rate, beta);

        // The discrete DP on the same instance (m = 2 suffices).
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, beta, 1.0, CostModel::linear(idle, rate)))
            .loads(loads)
            .build()
            .expect("valid instance");
        let oracle = Dispatcher::new();
        let c_dp =
            solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });

        table.row([
            format!("{delta}"),
            f(c_frac),
            f(c_rounded),
            format!("{:.2}×", c_rounded / c_frac),
            f(c_dp),
        ]);
        assert!(c_dp <= c_rounded + 1e-9, "the discrete optimum can never lose to naive rounding");
    }
    report.table(&table);
    report.blank();
    report.line("As δ → 0 the fractional tracker's cost approaches the unavoidable");
    report.line("baseline while its ceiling pays β every other slot — an unbounded");
    report.line("blow-up. The discrete DP (last column) simply keeps 2 servers on and");
    report.line("pays neither; this is why the paper optimizes integrally from the start");
    report.line("instead of rounding the fractional relaxation.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blowup_grows_as_delta_shrinks() {
        let horizon = 40;
        let (idle, rate, beta) = (1.0, 0.5, 10.0);
        let mut last = 0.0;
        for &delta in &[0.5, 0.1, 0.01] {
            let loads: Vec<f64> =
                (0..horizon).map(|t| if t % 2 == 0 { 1.0 } else { 1.0 + delta }).collect();
            let frac = loads.clone();
            let rounded: Vec<f64> = frac.iter().map(|x| x.ceil()).collect();
            let blowup = fractional_cost(&rounded, &loads, idle, rate, beta)
                / fractional_cost(&frac, &loads, idle, rate, beta);
            assert!(blowup > last, "blow-up must grow as δ shrinks");
            last = blowup;
        }
        assert!(last > 3.0, "blow-up should be substantial at δ = 0.01, got {last}");
    }

    #[test]
    fn report_runs() {
        let r = run(&ExperimentConfig { quick: true, seed: 0 });
        assert!(r.render().contains("blow-up"));
    }
}

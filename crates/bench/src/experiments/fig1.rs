//! Figure 1 — Algorithm A's power-up/-down mechanism for one server type
//! with `t̄_j = 5`.
//!
//! The paper's figure shows, for a single type, the prefix-optimum series
//! `x̂^t_{t,j}` (upper plot) and the resulting Algorithm-A counts
//! `x^A_{t,j}` (lower plot): every increase of the upper series powers a
//! server that then lives exactly 5 slots. The exact upper-series values
//! are not tabulated in the paper, so this experiment replays a series
//! with the same visual structure through the real update rule (the
//! pseudocode of Algorithm 1) and additionally verifies the two
//! invariants the figure illustrates: domination (`x^A ≥ x̂`) and exact
//! `t̄`-slot lifetimes.

use crate::report::{Report, TextTable};
use crate::ExperimentConfig;

/// The deterministic Algorithm-1 replay for a single type: given the
/// prefix-optimum series and `t̄`, produce the algorithm's counts and the
/// power-up log.
#[must_use]
pub fn replay_algorithm_a(xhat: &[u32], tbar: usize) -> (Vec<u32>, Vec<u32>) {
    let mut x = 0u32;
    let mut w = vec![0u32; xhat.len()];
    let mut out = Vec::with_capacity(xhat.len());
    for t in 0..xhat.len() {
        if t >= tbar {
            x -= w[t - tbar];
        }
        if x <= xhat[t] {
            w[t] = xhat[t] - x;
            x = xhat[t];
        }
        out.push(x);
    }
    (out, w)
}

/// Run the Figure 1 reproduction.
#[must_use]
pub fn run(_cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("fig1_algo_a_trace", "Figure 1: Algorithm A trace (t̄ = 5)");
    let tbar = 5usize;
    // Upper-plot series with the figure's structure: an early power-up at
    // t=1, rises and falls, a second wave, then decay to zero.
    let xhat: Vec<u32> = vec![1, 2, 1, 2, 3, 1, 0, 2, 2, 1, 0, 1, 0, 0];
    let (xa, w) = replay_algorithm_a(&xhat, tbar);

    let mut table =
        TextTable::new(["t", "x̂^t_t (prefix opt)", "x^A_t (algorithm)", "powered up w_t"]);
    for t in 0..xhat.len() {
        table.row([
            (t + 1).to_string(), // paper is 1-based
            xhat[t].to_string(),
            xa[t].to_string(),
            w[t].to_string(),
        ]);
    }
    report.table(&table);
    report.blank();

    // Invariant 1: domination.
    let dominated = xhat.iter().zip(&xa).all(|(&h, &a)| a >= h);
    report.kv(
        "invariant x^A ≥ x̂ (Lemma 1 prerequisite)",
        if dominated { "holds" } else { "VIOLATED" },
    );
    assert!(dominated);

    // Invariant 2: every powered server retires exactly t̄ slots later.
    let total_up: u32 = w.iter().sum();
    let mut retired: u32 = 0;
    for t in 0..xhat.len() {
        let prev = if t == 0 { 0 } else { xa[t - 1] };
        let expired = if t >= tbar { w[t - tbar] } else { 0 };
        // Net change = powered − expired.
        assert_eq!(i64::from(xa[t]) - i64::from(prev), i64::from(w[t]) - i64::from(expired));
        retired += expired;
    }
    report.kv("servers powered up", total_up);
    report.kv("servers retired within horizon", retired);
    report.kv("runtime of every server (slots)", tbar);
    report.line("Every power-up in the upper series creates a block of exactly t̄ = 5 slots");
    report.line("in the lower series, matching Figure 1's colored-block visualization.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_hand_simulation() {
        // xhat: spike of 2, then zero; t̄=3 → servers live slots 0..2.
        let (xa, w) = replay_algorithm_a(&[2, 0, 0, 0, 0], 3);
        assert_eq!(xa, vec![2, 2, 2, 0, 0]);
        assert_eq!(w, vec![2, 0, 0, 0, 0]);
    }

    #[test]
    fn renewed_demand_does_not_extend_lifetimes() {
        // At t=2 the prefix optimum needs 1 server and one is already
        // running, so no new power-up happens (w_2 = 0) and the original
        // server still retires at t=3 — "regardless of whether or not it
        // was used".
        let (xa, w) = replay_algorithm_a(&[1, 0, 1, 0, 0, 0, 0], 3);
        assert_eq!(w, vec![1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(xa, vec![1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn report_runs() {
        let r = run(&ExperimentConfig::default());
        let s = r.render();
        assert!(s.contains("holds"));
    }
}

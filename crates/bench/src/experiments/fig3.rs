//! Figure 3 — Algorithm B's trace, reproduced from the paper's exact
//! numbers.
//!
//! The figure tabulates, for one server type with `β_j = 6`:
//!
//! ```text
//! x̂^t_t = 1 2 1 3 0 0 1 2 0 0 0 0
//! l_t    = 3 1 4 1 2 1 1 2 3 5 1 3
//! t̄_t    = 3 2 4 4 3 3 2 1 2 …
//! W_t    = ∅ ∅ ∅ ∅ {1,2} ∅ ∅ {3} {4,5} {6,7,8} ∅ {9}
//! ```
//!
//! This experiment recomputes `t̄_{t,j}` and `W_t` from their definitions,
//! replays the published `x̂` series through the real `BCore` machinery,
//! and asserts the recomputed values match the figure exactly.

use rsz_core::{Config, CostModel, CostSpec, Instance, ServerType};
use rsz_online::algo_a::AOptions;
use rsz_online::algo_b::BCore;

use crate::report::{Report, TextTable};
use crate::ExperimentConfig;

/// Paper data: idle costs `l_t` (1-based slots 1..12).
pub const IDLE: [f64; 12] = [3.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0, 2.0, 3.0, 5.0, 1.0, 3.0];
/// Paper data: prefix-optimum series `x̂^t_t`.
pub const XHAT: [u32; 12] = [1, 2, 1, 3, 0, 0, 1, 2, 0, 0, 0, 0];
/// Paper data: switching cost.
pub const BETA: f64 = 6.0;

/// `t̄_{t,j} = max{ t̄ ∈ [T−t] : Σ_{u=t+1}^{t+t̄} l_u ≤ β }` (1-based `t`).
#[must_use]
pub fn tbar_at(t1: usize) -> Option<usize> {
    let mut acc = 0.0;
    let mut best: usize = 0;
    for u in t1 + 1..=IDLE.len() {
        acc += IDLE[u - 1];
        if acc <= BETA {
            best = u - t1;
        } else {
            return Some(best);
        }
    }
    None // runs off the horizon: t̄ not yet determined (figure's "…")
}

/// `W_t` per definition: slots `u` whose servers shut down at `t`.
#[must_use]
pub fn w_set(t1: usize) -> Vec<usize> {
    (1..t1)
        .filter(|&u| {
            let sum_to = |end: usize| -> f64 { (u + 1..=end).map(|v| IDLE[v - 1]).sum() };
            sum_to(t1 - 1) <= BETA && BETA < sum_to(t1)
        })
        .collect()
}

/// Run the Figure 3 reproduction.
#[must_use]
pub fn run(_cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("fig3_algo_b_trace", "Figure 3: Algorithm B trace (β = 6)");

    // Instance carrying the figure's idle-cost series; loads are zero (the
    // figure drives x̂ directly).
    let inst = Instance::builder()
        .server_type(ServerType::with_spec(
            "a",
            3,
            BETA,
            1.0,
            CostSpec::scaled(CostModel::constant(1.0), IDLE.to_vec()),
        ))
        .loads(vec![0.0; 12])
        .build()
        .expect("figure instance is valid");

    // Replay the published x̂ series through the real power-down machinery.
    let mut core = BCore::new(&inst, AOptions::default());
    let mut xb = Vec::with_capacity(12);
    #[allow(clippy::needless_range_loop)] // t indexes the paper's XHAT table
    for t in 0..12 {
        let x = core.step_with_target(&inst, t, &Config::new(vec![XHAT[t]]), 1.0);
        xb.push(x.count(0));
    }

    // Paper's expected values.
    let expected_tbar: [Option<usize>; 12] = [
        Some(3),
        Some(2),
        Some(4),
        Some(4),
        Some(3),
        Some(3),
        Some(2),
        Some(1),
        Some(2),
        None,
        None,
        None,
    ];
    let expected_w: [&[usize]; 12] =
        [&[], &[], &[], &[], &[1, 2], &[], &[], &[3], &[4, 5], &[6, 7, 8], &[], &[9]];

    let mut table = TextTable::new(["t", "x̂^t_t", "l_t", "t̄_{t}", "W_t", "x^B_t"]);
    for t1 in 1..=12 {
        let tb = tbar_at(t1);
        let w = w_set(t1);
        assert_eq!(tb, expected_tbar[t1 - 1], "t̄ mismatch at t={t1}");
        assert_eq!(w.as_slice(), expected_w[t1 - 1], "W mismatch at t={t1}");
        table.row([
            t1.to_string(),
            XHAT[t1 - 1].to_string(),
            format!("{}", IDLE[t1 - 1]),
            tb.map_or("…".into(), |v| v.to_string()),
            if w.is_empty() { "∅".to_string() } else { format!("{w:?}") },
            xb[t1 - 1].to_string(),
        ]);
    }
    report.table(&table);
    report.blank();
    report.line("Recomputed t̄_{t,j} and W_t match the paper's Figure 3 exactly.");

    // The replayed x^B from the real machinery (derivable by hand from
    // the W_t sets and the x̂ series).
    assert_eq!(xb, vec![1, 2, 2, 3, 1, 1, 1, 2, 1, 0, 0, 0]);
    report.kv("x^B_t (replayed)", format!("{xb:?}"));
    report.line("e.g. at t=5 the batches powered at slots 1 and 2 shut down (W_5 = {1,2}),");
    report.line("dropping x^B from 3 to 1, exactly as the figure's arrows indicate.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_reproduced() {
        // run() contains the asserts; reaching the end is the test.
        let r = run(&ExperimentConfig::default());
        assert!(r.render().contains("match the paper"));
    }

    #[test]
    fn tbar_definition_spot_checks() {
        // Paper example: t̄_2 = 2 because l3+l4 = 5 ≤ 6 but +l5 = 7 > 6.
        assert_eq!(tbar_at(2), Some(2));
        assert_eq!(tbar_at(8), Some(1));
    }

    #[test]
    fn w5_is_one_two() {
        assert_eq!(w_set(5), vec![1, 2]);
        assert_eq!(w_set(10), vec![6, 7, 8]);
    }
}

//! Figure 2 — blocks `A_{j,i}` and special time slots `τ_{j,k}`.
//!
//! Runs Algorithm A on a spiky workload, extracts the power-up log, and
//! computes the block decomposition that drives the proof of Lemma 7:
//! special slots are constructed backwards with spacing ≥ `t̄_j`, the
//! index sets `B_{j,k}` partition the blocks, and every block contains
//! exactly one special slot.

use rsz_core::CostModel;
use rsz_core::{Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::blocks::decompose;
use rsz_online::runner::run as run_online;
use rsz_workloads::adversarial;

use crate::report::{Report, TextTable};
use crate::ExperimentConfig;

/// Run the Figure 2 reproduction.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("fig2_blocks", "Figure 2: blocks and special time slots");
    let horizon = if cfg.quick { 24 } else { 48 };
    // One type, β = 4, idle 1 → t̄ = 4; spiky arrivals force repeated
    // power-ups (overlapping blocks), as in the figure.
    let inst = Instance::builder()
        .server_type(ServerType::new("a", 3, 4.0, 1.0, CostModel::linear(1.0, 0.3)))
        .loads(
            adversarial::ski_rental_probe(horizon, 2.0, 2)
                .plus(&adversarial::jitter(horizon, 1.0, 0.5, cfg.seed))
                .capped(3.0)
                .into_values(),
        )
        .build()
        .expect("probe instance is feasible");
    let oracle = Dispatcher::new();
    // The block decomposition needs the whole power-up history, which
    // Algorithm A only retains on request (the controller itself keeps a
    // ring of `max t̄` rows).
    let mut algo =
        AlgorithmA::new(&inst, oracle, AOptions { keep_power_up_log: true, ..AOptions::default() });
    let outcome = run_online(&inst, &mut algo, &oracle);
    outcome.schedule.check_feasible(&inst).expect("Lemma 1");

    let tbar = algo.runtime(0).expect("positive idle cost");
    let w: Vec<u32> =
        algo.power_up_log().expect("full log opted in").iter().map(|row| row[0]).collect();
    let dec = decompose(&w, tbar);

    report.kv("horizon", horizon);
    report.kv("t̄ (ski-rental runtime)", tbar);
    report.kv("number of blocks n_j", dec.blocks.len());
    report.kv("number of special slots n'_j", dec.special_slots.len());
    report.blank();

    let mut table = TextTable::new(["block i", "interval A_{j,i}", "contains τ"]);
    for (i, b) in dec.blocks.iter().enumerate() {
        let tau = dec
            .special_slots
            .iter()
            .find(|&&t| b.contains(t))
            .map_or("-".to_string(), |t| t.to_string());
        table.row([format!("{}", i + 1), format!("[{}, {}]", b.start, b.end), tau]);
    }
    report.table(&table);
    report.blank();

    let mut tau_table = TextTable::new(["k", "τ_{j,k}", "index set B_{j,k}"]);
    for (k, (&tau, set)) in dec.special_slots.iter().zip(&dec.index_sets).enumerate() {
        tau_table.row([
            format!("{}", k + 1),
            tau.to_string(),
            format!("{:?}", set.iter().map(|i| i + 1).collect::<Vec<_>>()),
        ]);
    }
    report.table(&tau_table);
    report.blank();

    let partition = dec.is_partition();
    let spacing = dec.spacing_at_least(tbar);
    report.kv(
        "index sets partition all blocks (Lemma 7 core)",
        if partition { "holds" } else { "VIOLATED" },
    );
    report.kv("consecutive τ spacing ≥ t̄", if spacing { "holds" } else { "VIOLATED" });
    assert!(partition && spacing);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_invariants_hold() {
        let r = run(&ExperimentConfig { quick: true, seed: 7 });
        let s = r.render();
        assert!(s.contains("holds"));
        assert!(!s.contains("VIOLATED"));
    }
}

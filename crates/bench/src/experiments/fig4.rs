//! Figure 4 — the graph representation `G(I)` for `d = 2`, `T = 2`,
//! `m = (2, 1)`.
//!
//! Builds an instance with the figure's dimensions, solves it three ways
//! (explicit graph shortest path, DP with distance transforms, exhaustive
//! enumeration) and checks all three agree; prints the graph size
//! formula `2·T·Π(m_j+1)` and the optimal path as a schedule. The loads
//! are chosen so the shortest path visits `x_1 = (2,0) → x_2 = (1,1)`-
//! style mixed configurations, as the figure's green path does.

use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::{brute, graph, GridMode};

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

/// Run the Figure 4 reproduction.
#[must_use]
pub fn run(_cfg: &ExperimentConfig) -> Report {
    let mut report =
        Report::new("fig4_graph", "Figure 4: graph representation (d=2, T=2, m=(2,1))");
    // Type 1: two cheap-to-switch slow servers; type 2: one fast server.
    // Load 2.5 then 2.0: slot 1 needs all of type 1 plus the fast server
    // is attractive; slot 2 can drop a slow server.
    let inst = Instance::builder()
        .server_type(ServerType::new("type1", 2, 1.0, 1.0, CostModel::linear(0.2, 1.0)))
        .server_type(ServerType::new("type2", 1, 1.5, 2.0, CostModel::linear(0.3, 0.4)))
        .loads(vec![2.5, 2.0])
        .build()
        .expect("figure instance is valid");
    let oracle = Dispatcher::new();

    let g = graph::solve(&inst, &oracle, GridMode::Full);
    let dp = dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
    let bf = brute::solve(&inst, &oracle);

    report.kv("vertices 2·T·Π(m_j+1)", format!("{} (= 2·2·3·2)", g.vertices));
    assert_eq!(g.vertices, 24);
    report.kv("graph shortest-path cost", f(g.cost));
    report.kv("DP (distance transform) cost", f(dp.cost));
    report.kv("brute-force enumeration cost", f(bf.cost));
    assert!((g.cost - dp.cost).abs() < 1e-9);
    assert!((g.cost - bf.cost).abs() < 1e-9);
    report.blank();

    let mut table = TextTable::new(["t", "shortest-path configuration x_t"]);
    for (t, cfg) in g.schedule.iter() {
        table.row([(t + 1).to_string(), cfg.to_string()]);
    }
    report.table(&table);
    report.blank();
    report.line("All three solvers return the same optimum: the path through the");
    report.line("(d+1)-dimensional grid graph of Figure 4 is an optimal schedule.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_solvers_agree() {
        let r = run(&ExperimentConfig::default());
        assert!(r.render().contains("same optimum"));
    }
}

//! Theorem 8 / Corollary 9 — empirical competitive ratio of Algorithm A.
//!
//! Sweeps adversarial workload families and seeds for `d ∈ {1, …}` and
//! reports `C(X^A)/C(OPT)` against the proven bound `2d+1` (and `2d` for
//! load-independent costs). The paper's matching lower-bound instance
//! (from the CIAC'21 companion) is not specified here, so the observed
//! maxima are *lower* bounds on the worst case — what the experiment
//! certifies is that the proven *upper* bound is never violated and how
//! much slack typical adversarial inputs leave.

use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::runner::run as run_online;

use crate::experiments::families::{self, FAMILIES};
use crate::report::{f, Report, TextTable};
use crate::stats::summarize;
use crate::sweep::parallel_map;
use crate::ExperimentConfig;

/// Run the Theorem 8 / Corollary 9 ratio experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_ratio_a", "Theorem 8 / Corollary 9: Algorithm A ratios");
    let (d_max, seeds, horizon) = if cfg.quick { (2, 3, 16) } else { (3, 10, 40) };
    report.kv(
        "sweep",
        format!("d ≤ {d_max}, {seeds} seeds × {} families, T = {horizon}", FAMILIES.len()),
    );
    report.blank();

    for constant_costs in [false, true] {
        let label = if constant_costs {
            "load-independent costs (Corollary 9, bound 2d)"
        } else {
            "load-dependent costs (Theorem 8, bound 2d+1)"
        };
        report.line(label.to_string());
        let mut table =
            TextTable::new(["d", "bound", "max ratio", "mean ratio", "worst family", "samples"]);
        for d in 1..=d_max {
            let bound = if constant_costs { 2.0 * d as f64 } else { 2.0 * d as f64 + 1.0 };
            // One trial per (family, seed); fan out across threads.
            let trials: Vec<(families::Family, u64)> = FAMILIES
                .iter()
                .flat_map(|&family| {
                    (0..seeds).map(move |s| (family, cfg.seed ^ (s as u64) << 8 ^ (d as u64) << 16))
                })
                .collect();
            let results = parallel_map(trials, |&(family, seed)| {
                let inst = families::time_independent(d, family, horizon, seed, constant_costs);
                let oracle = Dispatcher::new();
                let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
                let online = run_online(&inst, &mut algo, &oracle);
                online.schedule.check_feasible(&inst).expect("Lemma 1");
                let opt =
                    dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
                let ratio = online.ratio_vs(opt.cost);
                assert!(
                    ratio <= bound + 1e-6,
                    "bound violated: d={d} {} seed={seed}: ratio {ratio} > {bound}",
                    family.label()
                );
                (ratio, family.label())
            });
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let worst =
                results
                    .iter()
                    .cloned()
                    .fold((0.0_f64, "-"), |acc, r| if r.0 > acc.0 { r } else { acc });
            let sum = summarize(&ratios);
            table.row([
                d.to_string(),
                f(bound),
                f(sum.max),
                f(sum.mean),
                worst.1.to_string(),
                sum.n.to_string(),
            ]);
        }
        report.table(&table);
        report.blank();
    }
    report.line("Every observed ratio is below its proven bound; adversarial families");
    report.line("(ski-probe/sawtooth) dominate the worst cases, as the analysis predicts.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_quick_mode() {
        let r = run(&ExperimentConfig { quick: true, seed: 0xA });
        assert!(r.render().contains("below its proven bound"));
    }
}

//! Theorem 13 — empirical competitive ratio of Algorithm B under
//! time-dependent operating costs.
//!
//! Instances combine adversarial load families with diurnal and spiky
//! electricity-price profiles; the per-instance bound is
//! `2d + 1 + c(I)` with `c(I) = Σ_j max_t l_{t,j}/β_j` computed exactly.

use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_online::algo_a::AOptions;
use rsz_online::algo_b::{c_constant, AlgorithmB};
use rsz_online::runner::run as run_online;

use crate::experiments::families::{self, FAMILIES};
use crate::report::{f, Report, TextTable};
use crate::stats::summarize;
use crate::sweep::parallel_map;
use crate::ExperimentConfig;

/// Run the Theorem 13 ratio experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report =
        Report::new("exp_ratio_b", "Theorem 13: Algorithm B ratios (time-dependent costs)");
    let (d_max, seeds, horizon) = if cfg.quick { (2, 2, 16) } else { (2, 8, 32) };
    report.kv(
        "sweep",
        format!(
            "d ≤ {d_max}, {seeds} seeds × {} families × 2 price shapes, T = {horizon}",
            FAMILIES.len()
        ),
    );
    report.blank();

    let mut table = TextTable::new([
        "d",
        "prices",
        "c(I)",
        "bound 2d+1+c",
        "max ratio",
        "mean ratio",
        "samples",
    ]);
    for d in 1..=d_max {
        for spiky in [false, true] {
            let trials: Vec<(families::Family, u64)> = FAMILIES
                .iter()
                .flat_map(|&family| {
                    (0..seeds).map(move |s| {
                        (family, (s as u64) << 4 ^ (d as u64) << 12 ^ u64::from(spiky))
                    })
                })
                .map(|(family, salt)| (family, cfg.seed ^ salt))
                .collect();
            let results = parallel_map(trials, |&(family, seed)| {
                let inst = families::time_dependent(d, family, horizon, seed, spiky);
                let oracle = Dispatcher::new();
                let c = c_constant(&inst);
                let bound = 2.0 * d as f64 + 1.0 + c;
                let mut algo = AlgorithmB::new(&inst, oracle, AOptions::default());
                let online = run_online(&inst, &mut algo, &oracle);
                online.schedule.check_feasible(&inst).expect("Lemma 10");
                let opt =
                    dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
                let ratio = online.ratio_vs(opt.cost);
                assert!(
                    ratio <= bound + 1e-6,
                    "Theorem 13 violated: d={d} {} seed={seed}: {ratio} > {bound}",
                    family.label()
                );
                (ratio, c)
            });
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let c_max = results.iter().map(|r| r.1).fold(0.0_f64, f64::max);
            let sum = summarize(&ratios);
            table.row([
                d.to_string(),
                if spiky { "spiky".into() } else { "diurnal".to_string() },
                f(c_max),
                f(2.0 * d as f64 + 1.0 + c_max),
                f(sum.max),
                f(sum.mean),
                sum.n.to_string(),
            ]);
        }
    }
    report.table(&table);
    report.blank();
    report.line("All ratios respect 2d+1+c(I); spikier prices inflate c(I) and with it");
    report.line("the guarantee — the gap Algorithm C closes via sub-slot refinement.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_quick_mode() {
        let r = run(&ExperimentConfig { quick: true, seed: 0xB });
        assert!(r.render().contains("respect 2d+1+c(I)"));
    }
}

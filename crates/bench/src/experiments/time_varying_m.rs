//! Theorem 22 — time-varying data-center sizes `m_{t,j}`.
//!
//! Uses the expansion scenario (the fleet of new-generation servers grows
//! in two waves while load ramps up) and checks that (a) the exact DP
//! with per-slot grids and the paper's pruned graph both return feasible
//! schedules that respect every per-slot fleet bound, and (b) the γ-grid
//! approximation stays within its guarantee relative to the exact
//! per-slot optimum.

use rsz_core::objective::evaluate;
use rsz_dispatch::Dispatcher;
use rsz_offline::approx::approximate;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::{graph, GridMode};
use rsz_workloads::scenario;

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

/// Run the Theorem 22 experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_time_varying_m", "Theorem 22: time-varying fleet sizes");
    let len = if cfg.quick { 18 } else { 36 };
    let inst = scenario::expansion(len);
    let oracle = Dispatcher::new();

    let exact = dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
    let apx = approximate(&inst, &oracle, 0.5, false);
    let g = graph::solve(&inst, &oracle, GridMode::Full);

    exact.schedule.check_feasible(&inst).expect("exact feasible");
    apx.result.schedule.check_feasible(&inst).expect("approx feasible");
    g.schedule.check_feasible(&inst).expect("graph feasible");

    // Per-slot fleet bounds hold by feasibility; show the expansion.
    let phases = [0usize, len / 3, 2 * len / 3, len - 1];
    let mut table = TextTable::new(["t", "m_t (legacy,new)", "exact x_t", "approx x_t"]);
    for &t in &phases {
        table.row([
            (t + 1).to_string(),
            format!("({}, {})", inst.server_count(t, 0), inst.server_count(t, 1)),
            exact.schedule.config(t).to_string(),
            apx.result.schedule.config(t).to_string(),
        ]);
    }
    report.table(&table);
    report.blank();

    let exact_bd = evaluate(&inst, &exact.schedule, &oracle);
    report.kv("exact DP cost", f(exact.cost));
    report.kv("  (re-evaluated from schedule)", f(exact_bd.total()));
    assert!((exact.cost - exact_bd.total()).abs() < 1e-9);
    report.kv("graph (paper construction) cost", f(g.cost));
    report.kv("(1+ε) approx cost (ε = 0.5)", f(apx.result.cost));
    assert!(
        apx.result.cost <= 1.5 * exact.cost + 1e-9,
        "Theorem 22 guarantee violated: {} > 1.5·{}",
        apx.result.cost,
        exact.cost
    );
    // The pruned graph charges transitions through grid detours when the
    // per-slot grids differ, so it may exceed the DP's true-metric
    // optimum but never undercuts it.
    assert!(g.cost >= exact.cost - 1e-9);
    report.blank();
    report.line("Both solvers respect every per-slot fleet bound m_{t,j}; the");
    report.line("approximation stays within its (1+ε) guarantee of the exact optimum.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_varying_solvers_agree() {
        let r = run(&ExperimentConfig { quick: true, seed: 0 });
        assert!(r.render().contains("per-slot fleet bound"));
    }
}

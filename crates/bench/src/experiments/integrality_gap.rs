//! Integrality gap — how much does insisting on whole servers cost?
//!
//! Prior work (Lin et al., Bansal et al.) solves the *fractional*
//! relaxation; this paper argues for solving the discrete problem
//! directly. The quantitative question in between: how far is the
//! discrete optimum above the fractional one? This experiment measures
//! `discrete OPT / fractional OPT` where the fractional optimum is
//! approached from above by `K`-fold server subdivision
//! (`rsz_offline::relax`), and reports the convergence in `K` along
//! with the worst observed gap per fleet size — the gap shrinks as
//! fleets grow (integrality matters most for small `m`), which is also
//! why naive rounding is most dangerous exactly where fleets are small.

use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve_cost_only, DpOptions};
use rsz_offline::relax::fractional_lower_bound;

use crate::experiments::families::approx_instance;
use crate::report::{f, Report, TextTable};
use crate::stats::summarize;
use crate::sweep::parallel_map;
use crate::ExperimentConfig;

/// Run the integrality-gap experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "exp_integrality_gap",
        "Integrality gap: discrete OPT vs fractional relaxation",
    );
    let (seeds, horizon) = if cfg.quick { (3u64, 8) } else { (8u64, 16) };
    let ks: &[u32] = if cfg.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    report.kv("sweep", format!("{seeds} seeds, T = {horizon}, K ∈ {ks:?}"));
    report.blank();

    // Convergence table on one representative instance.
    let demo = approx_instance(1, 3, horizon, cfg.seed);
    let oracle = Dispatcher::new();
    let opts = DpOptions { parallel: false, ..Default::default() };
    let mut conv = TextTable::new(["K (granularity 1/K)", "bound", "gap vs K"]);
    let discrete = solve_cost_only(&demo, &oracle, opts);
    let mut last = discrete;
    for &k in ks {
        let lb = fractional_lower_bound(&demo, &oracle, k, opts);
        assert!(lb <= last + 1e-9, "bound must decrease in K");
        last = lb;
        conv.row([k.to_string(), f(lb), format!("{:.4}×", discrete / lb)]);
    }
    report.line("Convergence on one m = 3 instance (discrete OPT = bound at K = 1):");
    report.table(&conv);
    report.blank();

    // Gap vs fleet size.
    let k_ref = *ks.last().expect("non-empty");
    let mut table = TextTable::new(["m", "max gap", "mean gap", "samples"]);
    for m in [2u32, 4, 8] {
        let trials: Vec<u64> = (0..seeds).map(|s| cfg.seed ^ s << 7 ^ u64::from(m) << 32).collect();
        let gaps = parallel_map(trials, |&seed| {
            let inst = approx_instance(1, m, horizon, seed);
            let oracle = Dispatcher::new();
            let discrete = solve_cost_only(&inst, &oracle, opts);
            let frac = fractional_lower_bound(&inst, &oracle, k_ref, opts);
            assert!(frac <= discrete + 1e-9);
            discrete / frac
        });
        let s = summarize(&gaps);
        table.row([
            m.to_string(),
            format!("{:.4}×", s.max),
            format!("{:.4}×", s.mean),
            s.n.to_string(),
        ]);
    }
    report.table(&table);
    report.blank();
    report.line("The gap decays quickly with fleet size: a handful of servers already");
    report.line("brings the discrete optimum within a few percent of the fractional");
    report.line("bound — but at m = 2 the gap is real, which is exactly the regime where");
    report.line("rounding a fractional solution thrashes (see exp_rounding_blowup).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_report_runs() {
        let r = run(&ExperimentConfig { quick: true, seed: 0x6A9 });
        let s = r.render();
        assert!(s.contains("Convergence"));
        assert!(s.contains("max gap"));
    }
}

//! Searching for worst-case inputs — probing the gap between the
//! observed ratios and the proven `2d+1` upper / `2d` lower bounds.
//!
//! The paper's matching lower-bound construction (CIAC'21) is not
//! specified in this paper, so this experiment *searches*: random-restart
//! hill climbing over load traces (mutating one slot at a time) to
//! maximize Algorithm A's empirical competitive ratio. The search
//! certifies two things: (a) the bound survives adversarial optimization
//! pressure, and (b) hard instances exist well above the typical-case
//! ratios of `exp_ratio_a` — consistent with a `2d` worst case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve_cost_only, DpOptions};
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::runner::run as run_online;

use crate::report::{f, Report, TextTable};
use crate::sweep::parallel_map;
use crate::ExperimentConfig;

/// Evaluate Algorithm A's ratio on one candidate load trace.
fn ratio_for(d: usize, betas: &[f64], idles: &[f64], loads: &[f64]) -> f64 {
    let types: Vec<ServerType> = (0..d)
        .map(|j| ServerType::new(format!("t{j}"), 2, betas[j], 1.0, CostModel::constant(idles[j])))
        .collect();
    let inst = Instance::builder()
        .server_types(types)
        .loads(loads.to_vec())
        .build()
        .expect("search keeps loads within capacity");
    let oracle = Dispatcher::new();
    let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
    let online = run_online(&inst, &mut algo, &oracle);
    let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
    if opt == 0.0 {
        1.0
    } else {
        online.cost() / opt
    }
}

/// Hill-climb the load trace to maximize the ratio. Restarts run in
/// parallel (each restart is an independent seeded climb).
fn climb(d: usize, horizon: usize, restarts: usize, steps: usize, seed: u64) -> (f64, Vec<f64>) {
    let cap = 2.0 * d as f64; // 2 servers of capacity 1 per type
    let betas: Vec<f64> = (0..d).map(|j| 2.0 + j as f64).collect();
    let idles: Vec<f64> = (0..d).map(|j| 1.0 + 0.5 * j as f64).collect();
    let restart_seeds: Vec<u64> = (0..restarts as u64).map(|r| seed ^ r << 24).collect();
    let climbs = parallel_map(restart_seeds, |&rseed| {
        let mut rng = StdRng::seed_from_u64(rseed);
        // Start from a spiky random trace (spikes stress ski-rental).
        let mut loads: Vec<f64> = (0..horizon)
            .map(|_| if rng.gen_bool(0.4) { rng.gen_range(0.0..cap) } else { 0.0 })
            .collect();
        let mut cur = ratio_for(d, &betas, &idles, &loads);
        for _ in 0..steps {
            let t = rng.gen_range(0..horizon);
            let old = loads[t];
            loads[t] = if rng.gen_bool(0.5) { 0.0 } else { rng.gen_range(0.0..cap) };
            let cand = ratio_for(d, &betas, &idles, &loads);
            if cand > cur {
                cur = cand;
            } else {
                loads[t] = old;
            }
        }
        (cur, loads)
    });
    climbs
        .into_iter()
        .fold((0.0_f64, vec![0.0; horizon]), |acc, c| if c.0 > acc.0 { c } else { acc })
}

/// Run the worst-case search experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "exp_worstcase_search",
        "Lower-bound probe: hill-climbing loads against Algorithm A",
    );
    let (horizon, restarts, steps) = if cfg.quick { (10, 2, 30) } else { (14, 6, 150) };
    report.kv("search", format!("T = {horizon}, {restarts} restarts × {steps} mutations"));
    report.blank();

    let mut table = TextTable::new(["d", "best ratio found", "lower bound 2d", "upper bound 2d+1"]);
    for d in 1..=2usize {
        let (best, loads) = climb(d, horizon, restarts, steps, cfg.seed ^ (d as u64) << 5);
        let lower = 2.0 * d as f64;
        let upper = 2.0 * d as f64 + 1.0;
        assert!(best <= upper + 1e-6, "found a bound violation: d={d} ratio {best}");
        table.row([d.to_string(), f(best), f(lower), f(upper)]);
        report.line(format!(
            "d={d}: hardest trace found: {:?}",
            loads.iter().map(|l| (l * 100.0).round() / 100.0).collect::<Vec<_>>()
        ));
    }
    report.blank();
    report.table(&table);
    report.blank();
    report.line("The search drives ratios well above the random-sweep averages but never");
    report.line("past 2d+1 — consistent with the 2d lower bound of the CIAC'21 companion");
    report.line("and the near-tightness of Theorem 8. (Load-independent costs are used so");
    report.line("Corollary 9's 2d regime is the binding constraint.)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_respects_upper_bound() {
        let r = run(&ExperimentConfig { quick: true, seed: 99 });
        assert!(r.render().contains("best ratio found"));
    }

    #[test]
    fn single_spike_ratio_is_meaningful() {
        // d=1, one spike: A keeps the server ⌈β/l⌉ slots, OPT exactly 1;
        // ratio = (β + t̄·l + load term) / (β + l + ...)
        let ratio = ratio_for(1, &[2.0], &[1.0], &[1.0, 0.0, 0.0, 0.0]);
        assert!(ratio > 1.0 && ratio <= 3.0, "ratio {ratio}");
    }
}

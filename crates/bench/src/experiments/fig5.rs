//! Figure 5 — the corridor schedule `X'` for `γ = 2`, `m_j = 10`.
//!
//! Reproduces the figure's setting: the allowed states are
//! `M^γ = {0, 1, 2, 4, 8, 10}` (dashed lines in the figure), the optimal
//! schedule `X*` (red) moves freely, and the witness `X'` (green) stays
//! between `X*` and `min(m, (2γ−1)·X*)` (blue dotted), changing only to
//! preserve the invariant. The experiment prints all three lines per
//! slot, verifies the invariant (Equation 19), and compares costs
//! against the Theorem 16 bound `(2γ−1)·C(X*) = 3·C(X*)` — including the
//! cost of the *actual* γ-grid DP schedule, which can only be better
//! than the witness.

use rsz_core::objective::evaluate;
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::grid::gamma_levels;
use rsz_offline::rounding::{corridor_invariant_holds, corridor_schedule};
use rsz_offline::GridMode;

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

/// Run the Figure 5 reproduction.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let gamma = 2.0;
    let mut report =
        Report::new("fig5_gamma_rounding", "Figure 5: corridor schedule X' (γ = 2, m = 10)");
    let levels = gamma_levels(10, gamma);
    report.kv("allowed states M^γ", format!("{levels:?}"));
    assert_eq!(levels, vec![0, 1, 2, 4, 8, 10]);

    // A wavy load so X* sweeps the full range 0..10 like the figure.
    let len = if cfg.quick { 12 } else { 17 };
    let loads: Vec<f64> = (0..len)
        .map(|t| {
            let phase = t as f64 / len as f64 * std::f64::consts::TAU;
            (5.0 + 5.0 * phase.sin()).clamp(0.0, 10.0)
        })
        .collect();
    let inst = Instance::builder()
        .server_type(ServerType::new("a", 10, 2.0, 1.0, CostModel::linear(0.4, 1.0)))
        .loads(loads)
        .build()
        .expect("figure instance is valid");
    let oracle = Dispatcher::new();

    let opt = dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
    let witness = corridor_schedule(&inst, &opt.schedule, gamma);
    let dp_gamma = dp_solve(
        &inst,
        &oracle,
        DpOptions { grid: GridMode::Gamma(gamma), parallel: false, ..DpOptions::default() },
    );

    let mut table = TextTable::new(["t", "x*_t (red)", "(2γ−1)·x* (blue)", "x'_t (green)"]);
    for (t, xstar) in opt.schedule.iter() {
        let hi = (3.0 * f64::from(xstar.count(0))).min(10.0);
        table.row([
            (t + 1).to_string(),
            xstar.count(0).to_string(),
            format!("{hi:.0}"),
            witness.count(t, 0).to_string(),
        ]);
    }
    report.table(&table);
    report.blank();

    let invariant = corridor_invariant_holds(&inst, &opt.schedule, &witness, gamma);
    report.kv(
        "corridor invariant x* ≤ x' ≤ (2γ−1)x* (Eq. 19)",
        if invariant { "holds" } else { "VIOLATED" },
    );
    assert!(invariant);
    witness.check_feasible(&inst).expect("witness feasible");

    let w_cost = evaluate(&inst, &witness, &oracle).total();
    let bound = (2.0 * gamma - 1.0) * opt.cost;
    report.kv("C(X*) optimal", f(opt.cost));
    report.kv("C(X') witness", f(w_cost));
    report.kv("C(X^γ) γ-grid DP", f(dp_gamma.cost));
    report.kv("Theorem 16 bound (2γ−1)·C(X*)", f(bound));
    assert!(w_cost <= bound + 1e-9, "witness violates Theorem 16");
    assert!(dp_gamma.cost <= w_cost + 1e-9, "DP must beat its own witness");
    report.blank();
    report.line("C(X^γ) ≤ C(X') ≤ 3·C(X*): the γ-grid DP is at least as good as the");
    report.line("constructive witness, exactly as the proof of Theorem 16 argues.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_invariants_hold() {
        let r = run(&ExperimentConfig { quick: true, seed: 0 });
        let s = r.render();
        assert!(s.contains("[0, 1, 2, 4, 8, 10]"));
        assert!(!s.contains("VIOLATED"));
    }
}

//! Theorem 21/22 — runtime and grid-size scaling of the
//! `(1+ε)`-approximation.
//!
//! The theorem claims `O(T · ε^{-d} · Π_j log m_j)`. The experiment
//! measures wall-clock time and per-slot grid cells along four axes —
//! fleet size `m`, accuracy `ε`, horizon `T`, and dimension `d` — and
//! reports how the measurements track the formula (grid cells against
//! `log m`, runtime roughly linear in `T` and in cells).

use rsz_dispatch::Dispatcher;
use rsz_offline::approx::approximate;
use rsz_offline::dp::{solve_cost_only, DpOptions};
use rsz_offline::grid::gamma_levels;

use crate::experiments::families::approx_instance;
use crate::report::{f, Report, TextTable};
use crate::stats::{fmt_duration, timed};
use crate::ExperimentConfig;

/// Run the Theorem 21 scaling experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_runtime_scaling", "Theorem 21: runtime / grid-size scaling");
    let seed = cfg.seed;

    // Axis 1: fleet size m (d = 1, ε = 0.5).
    let ms: &[u32] = if cfg.quick { &[100, 1_000, 10_000] } else { &[100, 1_000, 10_000, 100_000] };
    let t_ax1 = if cfg.quick { 24 } else { 50 };
    report.line(format!("Axis 1: fleet size m (d = 1, ε = 0.5, T = {t_ax1})"));
    let mut t1 = TextTable::new(["m", "γ-grid levels", "log2(m)", "approx time", "exact time"]);
    for &m in ms {
        let inst = approx_instance(1, m, t_ax1, seed);
        let oracle = Dispatcher::new();
        let (approx, d_apx) = timed(|| approximate(&inst, &oracle, 0.5, false));
        let exact_time = if m <= 1_000 {
            let (_, d_ex) = timed(|| {
                solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() })
            });
            fmt_duration(d_ex)
        } else {
            "(skipped)".to_string()
        };
        t1.row([
            m.to_string(),
            approx.grid_cells.to_string(),
            f(f64::from(m).log2()),
            fmt_duration(d_apx),
            exact_time,
        ]);
    }
    report.table(&t1);
    report.blank();

    // Axis 2: accuracy ε (d = 1, m = 10⁴).
    let eps_list: &[f64] = if cfg.quick { &[2.0, 1.0, 0.5] } else { &[2.0, 1.0, 0.5, 0.2, 0.1] };
    let m_ax2 = 10_000u32;
    report.line(format!("Axis 2: accuracy ε (d = 1, m = {m_ax2}, T = {t_ax1})"));
    let mut t2 = TextTable::new(["ε", "γ", "grid levels", "time"]);
    for &eps in eps_list {
        let inst = approx_instance(1, m_ax2, t_ax1, seed ^ 1);
        let oracle = Dispatcher::new();
        let (approx, dur) = timed(|| approximate(&inst, &oracle, eps, false));
        t2.row([
            format!("{eps}"),
            format!("{}", 1.0 + eps / 2.0),
            approx.grid_cells.to_string(),
            fmt_duration(dur),
        ]);
    }
    report.table(&t2);
    report.blank();

    // Axis 3: horizon T (d = 1, m = 1000, ε = 0.5) — expect linear.
    let ts: &[usize] = if cfg.quick { &[25, 50, 100] } else { &[25, 50, 100, 200, 400] };
    report.line("Axis 3: horizon T (d = 1, m = 1000, ε = 0.5)");
    let mut t3 = TextTable::new(["T", "time", "time/T"]);
    for &t in ts {
        let inst = approx_instance(1, 1_000, t, seed ^ 2);
        let oracle = Dispatcher::new();
        let (_, dur) = timed(|| approximate(&inst, &oracle, 0.5, false));
        t3.row([
            t.to_string(),
            fmt_duration(dur),
            format!("{:.1}µs", dur.as_secs_f64() * 1e6 / t as f64),
        ]);
    }
    report.table(&t3);
    report.blank();

    // Axis 4: dimension d (m = 30 per type, ε = 0.5) — cells multiply.
    let ds: &[usize] = if cfg.quick { &[1, 2] } else { &[1, 2, 3] };
    let t_ax4 = if cfg.quick { 12 } else { 30 };
    report.line(format!("Axis 4: dimension d (m = 30 each, ε = 0.5, T = {t_ax4})"));
    let mut t4 = TextTable::new(["d", "grid cells/slot", "levels^d", "time"]);
    let levels_per_dim = gamma_levels(30, 1.25).len();
    for &d in ds {
        let inst = approx_instance(d, 30, t_ax4, seed ^ 3);
        let oracle = Dispatcher::new();
        let (approx, dur) = timed(|| approximate(&inst, &oracle, 0.5, false));
        t4.row([
            d.to_string(),
            approx.grid_cells.to_string(),
            levels_per_dim.pow(d as u32).to_string(),
            fmt_duration(dur),
        ]);
    }
    report.table(&t4);
    report.blank();
    report.line("Grid levels grow logarithmically in m (compare columns 2 and 3 of Axis 1),");
    report.line("runtime is linear in T (Axis 3) and multiplies per dimension (Axis 4) —");
    report.line("the O(T·ε^{-d}·Π log m_j) shape of Theorem 21.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_report_runs() {
        let r = run(&ExperimentConfig { quick: true, seed: 1 });
        assert!(r.render().contains("Axis 1"));
    }
}

//! Ablation — the prefix-DP backend inside Algorithm A.
//!
//! Algorithm A recomputes a prefix-optimal schedule every slot. On large
//! fleets the full grid is the dominant cost, and DESIGN.md calls out the
//! option of running the *online* algorithm's inner solver on a γ-grid:
//! the targets `x̂^t_t` become (2γ−1)-approximate prefix optima, trading
//! guarantee for speed. This experiment quantifies that trade on a
//! two-type fleet: cost ratio vs the clairvoyant optimum and wall-clock
//! per decision, for the exact backend and two γ values.

use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::GridMode;
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::runner::run as run_online;
use rsz_workloads::{fleet, stochastic};

use crate::report::{f, Report, TextTable};
use crate::stats::{fmt_duration, timed};
use crate::ExperimentConfig;

/// Run the prefix-backend ablation.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_prefix_backend", "Ablation: prefix backend of Algorithm A");
    let (m1, m2, horizon) = if cfg.quick { (24u32, 16u32, 24usize) } else { (60, 40, 60) };

    let mut types = fleet::old_new(m1, m2);
    // old_new uses small switching costs; scale up so provisioning
    // decisions are non-trivial at this fleet size.
    for ty in &mut types {
        ty.switching_cost *= 3.0;
    }
    let cap = fleet::total_capacity(&types);
    let trace = stochastic::mmpp(horizon, 0.15 * cap, 0.75 * cap, 0.08, 0.3, 1.0, cfg.seed);
    let inst = rsz_core::Instance::builder()
        .server_types(types)
        .loads(trace.capped(cap).into_values())
        .build()
        .expect("ablation instance is feasible");
    let oracle = Dispatcher::new();

    let opt = dp_solve(&inst, &oracle, DpOptions { parallel: true, ..Default::default() });
    report.kv("fleet", format!("legacy m={m1}, current m={m2}, T={horizon}"));
    report.kv("full grid cells/slot", ((m1 + 1) * (m2 + 1)).to_string());
    report.kv("OPT (clairvoyant)", f(opt.cost));
    report.blank();

    let backends = [
        ("full grid", GridMode::Full),
        ("γ = 1.5", GridMode::Gamma(1.5)),
        ("γ = 2.0", GridMode::Gamma(2.0)),
    ];
    let mut table =
        TextTable::new(["backend", "grid cells/slot", "cost", "ratio vs OPT", "total time"]);
    for (label, grid) in backends {
        let cells: usize =
            (0..inst.num_types()).map(|j| grid.levels(inst.server_count(0, j)).len()).product();
        let (outcome, dur) = timed(|| {
            let mut algo = AlgorithmA::new(
                &inst,
                oracle,
                AOptions { grid, parallel: false, ..AOptions::default() },
            );
            run_online(&inst, &mut algo, &oracle)
        });
        outcome.schedule.check_feasible(&inst).expect("feasible");
        table.row([
            label.to_string(),
            cells.to_string(),
            f(outcome.cost()),
            f(outcome.ratio_vs(opt.cost)),
            fmt_duration(dur),
        ]);
    }
    report.table(&table);
    report.blank();
    report.line("γ-grid backends cut the per-decision work by an order of magnitude while");
    report.line("giving up only a modest amount of cost — the practical configuration for");
    report.line("fleets where Π(m_j+1) is out of reach. (The 2d+1 proof assumes the exact");
    report.line("backend; the γ variant's targets are (2γ−1)-approximate prefix optima.)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs() {
        let r = run(&ExperimentConfig { quick: true, seed: 0xAB });
        assert!(r.render().contains("backend"));
    }
}

//! Theorem 16 — quality of the γ-grid approximation.
//!
//! For a sweep of `γ` (equivalently `ε = 2γ−2`), solves random instances
//! both exactly and on the reduced grid `M^γ` and reports the realized
//! approximation ratio against the proven `2γ−1` bound, along with the
//! grid compression `|M^γ|/|M|`.

use rsz_dispatch::Dispatcher;
use rsz_offline::approx::approximate_with_mode;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::grid::gamma_levels;
use rsz_offline::GridMode;

use crate::experiments::families::approx_instance;
use crate::report::{f, Report, TextTable};
use crate::stats::summarize;
use crate::ExperimentConfig;

/// Run the Theorem 16 approximation experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_approx_ratio", "Theorem 16: (2γ−1)-approximation quality");
    let (seeds, horizon, m1, m2): (u64, usize, u32, u32) =
        if cfg.quick { (3, 10, 16, 8) } else { (10, 20, 30, 12) };
    let gammas = [1.1, 1.25, 1.5, 2.0, 3.0];
    report
        .kv("sweep", format!("{seeds} seeds × d ∈ {{1,2}}, T = {horizon}, m = {m1} / ({m2},{m2})"));
    report.blank();

    let mut table = TextTable::new([
        "γ",
        "bound 2γ−1",
        "max ratio",
        "mean ratio",
        "grid levels (m=1024)",
        "samples",
    ]);
    for gamma in gammas {
        let bound = 2.0 * gamma - 1.0;
        let mut ratios = Vec::new();
        for d in 1..=2usize {
            let m = if d == 1 { m1 } else { m2 };
            for s in 0..seeds {
                let seed = cfg.seed ^ s << 3 ^ (d as u64) << 20;
                let inst = approx_instance(d, m, horizon, seed);
                let oracle = Dispatcher::new();
                let exact =
                    dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
                let approx = approximate_with_mode(
                    &inst,
                    &oracle,
                    GridMode::Gamma(gamma),
                    DpOptions { parallel: false, ..DpOptions::default() },
                );
                approx.result.schedule.check_feasible(&inst).expect("feasible");
                let ratio = approx.result.cost / exact.cost;
                assert!(ratio >= 1.0 - 1e-9, "approximation cannot beat the exact optimum");
                assert!(
                    ratio <= bound + 1e-6,
                    "Theorem 16 violated: γ={gamma} d={d} seed={seed}: {ratio} > {bound}"
                );
                ratios.push(ratio);
            }
        }
        let sum = summarize(&ratios);
        table.row([
            format!("{gamma}"),
            f(bound),
            f(sum.max),
            f(sum.mean),
            gamma_levels(1024, gamma).len().to_string(),
            sum.n.to_string(),
        ]);
    }
    report.table(&table);
    report.blank();
    report.line("Realized ratios sit far below the worst-case 2γ−1 bound (typical for");
    report.line("grid restrictions); even γ = 3 (a 5-approximation on paper) loses only");
    report.line("a few percent on these workloads while shrinking the grid to O(log m).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_quick_mode() {
        let r = run(&ExperimentConfig { quick: true, seed: 0xD });
        assert!(r.render().contains("2γ−1"));
    }
}

//! Theorem 15 — Algorithm C pushes the ratio to `2d+1+ε`.
//!
//! Sweeps `ε` on time-dependent instances and reports the realized
//! refinement constant `c(Ĩ)` (which the theorem bounds by `ε`), the
//! sub-slot counts `ñ_t` the refinement chose, and the empirical ratio
//! against the `2d+1+ε` bound.

use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::run as run_online;

use crate::experiments::families::{self, Family};
use crate::report::{f, Report, TextTable};
use crate::stats::summarize;
use crate::ExperimentConfig;

/// Run the Theorem 15 ratio experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_ratio_c", "Theorem 15: Algorithm C ratios (2d+1+ε)");
    let (seeds, horizon, epsilons): (u64, usize, &[f64]) =
        if cfg.quick { (2, 16, &[1.0, 0.5]) } else { (6, 28, &[1.0, 0.5, 0.25]) };
    let d = 2usize;
    let fams = [Family::Sawtooth, Family::Jitter];
    report.kv("sweep", format!("d = {d}, {seeds} seeds × {} families, T = {horizon}", fams.len()));
    report.blank();

    let mut table = TextTable::new([
        "ε",
        "bound 2d+1+ε",
        "max ratio",
        "mean ratio",
        "max c(Ĩ)",
        "max ñ_t",
        "samples",
    ]);
    for &eps in epsilons {
        let bound = 2.0 * d as f64 + 1.0 + eps;
        let mut ratios = Vec::new();
        let mut realized_c_max = 0.0_f64;
        let mut subslots_max = 0usize;
        for family in fams {
            for s in 0..seeds {
                let seed = cfg.seed ^ s << 6 ^ (eps.to_bits() >> 50);
                let inst = families::time_dependent(d, family, horizon, seed, true);
                let oracle = Dispatcher::new();
                let mut algo =
                    AlgorithmC::new(&inst, oracle, COptions { epsilon: eps, ..Default::default() });
                let online = run_online(&inst, &mut algo, &oracle);
                online.schedule.check_feasible(&inst).expect("feasible");
                realized_c_max = realized_c_max.max(algo.realized_c());
                subslots_max =
                    subslots_max.max(algo.subslot_log().iter().copied().max().unwrap_or(1));
                let opt =
                    dp_solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
                let ratio = online.ratio_vs(opt.cost);
                assert!(
                    ratio <= bound + 1e-6,
                    "Theorem 15 violated: ε={eps} {} seed={seed}: {ratio} > {bound}",
                    family.label()
                );
                assert!(
                    algo.realized_c() <= eps + 1e-9,
                    "refinement failed: c(Ĩ) = {} > ε = {eps}",
                    algo.realized_c()
                );
                ratios.push(ratio);
            }
        }
        let sum = summarize(&ratios);
        table.row([
            format!("{eps}"),
            f(bound),
            f(sum.max),
            f(sum.mean),
            f(realized_c_max),
            subslots_max.to_string(),
            sum.n.to_string(),
        ]);
    }
    report.table(&table);
    report.blank();
    report.line("c(Ĩ) ≤ ε holds for every run (no sub-slot cap was hit) and all ratios");
    report.line("respect 2d+1+ε; smaller ε buys a tighter guarantee at the cost of more");
    report.line("sub-slots (ñ_t grows like d/ε · max_j l/β).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_quick_mode() {
        let r = run(&ExperimentConfig { quick: true, seed: 0xC });
        assert!(r.render().contains("respect 2d+1+ε"));
    }
}

//! Motivation experiment — the paper's algorithms against the policies a
//! data-center operator would otherwise run.
//!
//! Two scenarios:
//!
//! 1. **Diurnal CPU+GPU fleet** (time-independent costs): Algorithm A
//!    vs all-on, purely reactive, myopic-with-switching, reactive with
//!    ski-rental timeouts, the best static provisioning, and the
//!    clairvoyant optimum.
//! 2. **Electricity market** (time-dependent costs, homogeneous fleet):
//!    Algorithms B and C vs the same baselines plus homogeneous LCP.
//!
//! Reported: cost, ratio to OPT, and energy savings vs always-on.

use rsz_core::Instance;
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve as dp_solve, DpOptions};
use rsz_offline::GridMode;
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_b::AlgorithmB;
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::baselines::{best_static, AllOn, Myopic, ReactiveTimeout};
use rsz_online::lcp::LazyCapacityProvisioning;
use rsz_online::runner::{run as run_online, OnlineAlgorithm};
use rsz_workloads::scenario;

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

fn run_suite(
    report: &mut Report,
    inst: &Instance,
    oracle: &Dispatcher,
    algos: Vec<Box<dyn OnlineAlgorithm>>,
) {
    let opt = dp_solve(inst, oracle, DpOptions { parallel: false, ..Default::default() });
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut all_on_cost = None;
    for mut algo in algos {
        let outcome = run_online(inst, algo.as_mut(), oracle);
        outcome
            .schedule
            .check_feasible(inst)
            .unwrap_or_else(|e| panic!("{} produced an infeasible schedule: {e}", outcome.name));
        if outcome.name == "all-on" {
            all_on_cost = Some(outcome.cost());
        }
        let cost = outcome.cost();
        rows.push((outcome.name, cost));
    }
    if let Some((cfg, cost)) = best_static(inst, oracle, GridMode::Full) {
        rows.push((format!("static {cfg}"), cost));
    }
    rows.push(("OPT (clairvoyant)".into(), opt.cost));
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));

    let all_on = all_on_cost.unwrap_or(f64::NAN);
    let mut table = TextTable::new(["policy", "cost", "ratio vs OPT", "savings vs all-on"]);
    for (name, cost) in &rows {
        table.row([
            name.clone(),
            f(*cost),
            f(cost / opt.cost),
            format!("{:.1}%", (1.0 - cost / all_on) * 100.0),
        ]);
    }
    report.table(&table);
}

/// Run the baseline-comparison experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("exp_baselines", "Motivation: paper algorithms vs baselines");
    let oracle = Dispatcher::new();

    // Scenario 1: diurnal CPU+GPU week (time-independent costs).
    let days = if cfg.quick { 2 } else { 5 };
    let inst = scenario::diurnal_cpu_gpu(6, 2, days, 24, cfg.seed);
    report.line(format!(
        "Scenario 1: diurnal CPU+GPU fleet, {days} days × 24 slots (seed {})",
        cfg.seed
    ));
    let algos: Vec<Box<dyn OnlineAlgorithm>> = vec![
        Box::new(AlgorithmA::new(&inst, oracle, AOptions::default())),
        Box::new(AlgorithmB::new(&inst, oracle, AOptions::default())),
        Box::new(AllOn),
        Box::new(Myopic::new(oracle, false)),
        Box::new(Myopic::new(oracle, true)),
        Box::new(ReactiveTimeout::with_ski_rental_timeouts(oracle, &inst)),
    ];
    run_suite(&mut report, &inst, &oracle, algos);
    report.blank();

    // Scenario 2: electricity market (time-dependent, homogeneous).
    let horizon = if cfg.quick { 48 } else { 120 };
    let inst2 = scenario::electricity_market(8, horizon, 24, cfg.seed ^ 7);
    report.line(format!(
        "Scenario 2: electricity market (time-dependent prices), T = {horizon}, m = 8"
    ));
    let algos2: Vec<Box<dyn OnlineAlgorithm>> = vec![
        Box::new(AlgorithmB::new(&inst2, oracle, AOptions::default())),
        Box::new(AlgorithmC::new(&inst2, oracle, COptions { epsilon: 0.5, ..Default::default() })),
        Box::new(LazyCapacityProvisioning::new(&inst2, oracle)),
        Box::new(AllOn),
        Box::new(Myopic::new(oracle, false)),
        Box::new(ReactiveTimeout::with_ski_rental_timeouts(oracle, &inst2)),
    ];
    run_suite(&mut report, &inst2, &oracle, algos2);
    report.blank();
    report.line("The guaranteed algorithms (A/B/C, LCP) land within a small factor of the");
    report.line("clairvoyant optimum and beat both extremes the introduction warns about:");
    report.line("always-on (wasted idle power) and purely reactive (switching thrash).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_suite_runs() {
        let r = run(&ExperimentConfig { quick: true, seed: 0x5EED });
        let s = r.render();
        assert!(s.contains("Scenario 1"));
        assert!(s.contains("Scenario 2"));
        assert!(s.contains("OPT"));
    }
}

//! Section 1 — the `Ω(2^d/d)` lower bound for general convex function
//! chasing, the paper's justification for restricting operating costs to
//! the dispatch form of equation (1).
//!
//! Plays the hypercube adversary against three escape policies and
//! tabulates the realized competitive ratio next to the `2^d/d` curve:
//! the ratio grows exponentially in `d` no matter how the online player
//! escapes, while the offline player pays at most `d`.

use rsz_workloads::chasing::{play, EscapePolicy};

use crate::report::{f, Report, TextTable};
use crate::ExperimentConfig;

/// Run the chasing lower-bound experiment.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut report =
        Report::new("fig_chasing_lb", "Section 1: general convex chasing is Ω(2^d/d)-hard");
    let d_max = if cfg.quick { 8 } else { 14 };
    let mut table = TextTable::new([
        "d",
        "T = 2^d−1",
        "online (down-first)",
        "online (round-robin)",
        "offline",
        "worst ratio",
        "2^d/d",
    ]);
    let mut prev_ratio = 0.0;
    for d in 1..=d_max {
        let a = play(d, EscapePolicy::PreferPowerDown);
        let b = play(d, EscapePolicy::RoundRobin);
        let c = play(d, EscapePolicy::RandomBit(cfg.seed));
        let offline = a.offline_cost.max(b.offline_cost).max(c.offline_cost);
        let worst = a.ratio().max(b.ratio()).max(c.ratio());
        table.row([
            d.to_string(),
            a.horizon.to_string(),
            f(a.online_cost),
            f(b.online_cost),
            f(offline),
            f(worst),
            f(f64::powi(2.0, d as i32) / d as f64),
        ]);
        if d >= 4 {
            assert!(worst > prev_ratio, "ratio must keep growing: d={d} {worst} ≤ {prev_ratio}");
        }
        prev_ratio = worst;
    }
    report.table(&table);
    report.blank();
    report.line("The realized ratio tracks 2^d/d: no online algorithm can chase general");
    report.line("convex functions over {0,1}^d competitively. The paper's equation-(1)");
    report.line("cost structure is what makes the 2d+1 guarantees of Sections 2–3 possible.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_growth_observed() {
        let r = run(&ExperimentConfig { quick: true, seed: 3 });
        assert!(r.render().contains("2^d/d"));
    }
}

//! `dp_pipeline` — end-to-end offline-solve benchmark of the
//! slot-batched pricing pipeline (warm-started KKT row sweeps +
//! time-independent slot de-duplication + checkpointed backtracking)
//! against the PR-2 cached baseline (legacy per-slot DP over a
//! [`CachedDispatcher`]).
//!
//! Scenarios: the reference tiled-diurnal workload (d = 2,
//! m = (40, 40), T = 2000), a bursty MMPP trace with few exact load
//! repeats, a time-dependent electricity-price workload (no slot
//! sharing anywhere), and a d = 3 fleet. Every scenario gates on cost
//! parity ≤ 1e-9 and schedule equality between the pipeline and the
//! baseline; the ≥ 2× speedup gate applies to the reference workload in
//! full mode only (`--quick` shrinks horizons for the CI smoke, where
//! wall-clock is too noisy to gate).
//!
//! Results land in `results/dp_pipeline.json` and, as the trajectory
//! record the CI uploads, `BENCH_dp.json` at the workspace root.

use std::fmt::Write as _;
use std::time::Instant;

use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::dp::{solve, solve_with_stats, DpOptions};
use rsz_offline::pipeline::RecoveryStats;
use rsz_workloads::{patterns, stochastic};

struct Scenario {
    name: &'static str,
    instance: Instance,
    /// Only the reference scenario carries the speedup gate.
    gated: bool,
}

fn tiled_diurnal(horizon: usize, base: f64, amplitude: f64) -> Vec<f64> {
    // One exact day, tiled: λ values repeat bit-for-bit across days,
    // which is what lets both the g_t cache and the pricing pool reuse
    // slots.
    let day = patterns::diurnal(24, base, amplitude, 24, 0.75);
    day.values().iter().copied().cycle().take(horizon).collect()
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let reference_t = if quick { 240 } else { 2000 };
    let (m_ref, base, amp) = if quick { (16, 3.0, 20.0) } else { (40, 6.0, 55.0) };
    let reference = Instance::builder()
        .server_type(ServerType::new("cpu", m_ref, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::new("gpu", m_ref, 4.0, 1.0, CostModel::power(1.0, 0.5, 2.0)))
        .loads(tiled_diurnal(reference_t, base, amp))
        .build()
        .expect("reference instance feasible");

    let bursty_t = if quick { 96 } else { 600 };
    let bursty_m = if quick { 10 } else { 24 };
    let cap = 2.0 * f64::from(bursty_m);
    let bursty = Instance::builder()
        .server_type(ServerType::new("old", bursty_m, 1.5, 1.0, CostModel::linear(0.8, 1.2)))
        .server_type(ServerType::new("new", bursty_m, 3.0, 1.0, CostModel::power(0.6, 0.4, 2.0)))
        .loads(
            stochastic::mmpp(bursty_t, 0.1 * cap, 0.6 * cap, 0.06, 0.25, 1.0, 7)
                .capped(0.9 * cap)
                .into_values(),
        )
        .build()
        .expect("bursty instance feasible");

    let td_t = if quick { 96 } else { 480 };
    let td_m = if quick { 10 } else { 20 };
    let prices: Vec<f64> = (0..td_t).map(|t| 0.6 + 0.4 * ((t % 24) as f64 / 23.0)).collect();
    let td_cap = 2.0 * f64::from(td_m);
    let time_dependent = Instance::builder()
        .server_type(ServerType::new("flat", td_m, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::with_spec(
            "priced",
            td_m,
            3.0,
            1.0,
            CostSpec::scaled(CostModel::power(0.8, 0.5, 2.0), prices),
        ))
        .loads(tiled_diurnal(td_t, 0.1 * td_cap, 0.55 * td_cap))
        .build()
        .expect("time-dependent instance feasible");

    let d3_t = if quick { 72 } else { 400 };
    let d3_m = if quick { 6 } else { 12 };
    let d3_cap = 3.0 * f64::from(d3_m);
    let three_types = Instance::builder()
        .server_type(ServerType::new("small", d3_m, 1.0, 1.0, CostModel::linear(0.4, 1.0)))
        .server_type(ServerType::new("mid", d3_m, 2.0, 1.0, CostModel::power(0.8, 0.5, 2.0)))
        .server_type(ServerType::new("big", d3_m, 4.0, 1.0, CostModel::quadratic(1.0, 0.5, 0.3)))
        .loads(tiled_diurnal(d3_t, 0.1 * d3_cap, 0.5 * d3_cap))
        .build()
        .expect("d=3 instance feasible");

    vec![
        Scenario { name: "diurnal_reference", instance: reference, gated: true },
        Scenario { name: "bursty_mmpp", instance: bursty, gated: false },
        Scenario { name: "time_dependent_costs", instance: time_dependent, gated: false },
        Scenario { name: "three_types", instance: three_types, gated: false },
    ]
}

struct Timed {
    cost: f64,
    schedule: rsz_core::Schedule,
    secs: f64,
}

fn time_best<F: FnMut() -> (f64, rsz_core::Schedule)>(iterations: usize, mut run: F) -> Timed {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iterations {
        let start = Instant::now();
        let (cost, schedule) = run();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some((cost, schedule));
    }
    let (cost, schedule) = out.expect("at least one iteration");
    Timed { cost, schedule, secs: best }
}

struct Row {
    name: &'static str,
    d: usize,
    horizon: usize,
    baseline_ms: f64,
    pipeline_ms: f64,
    speedup: f64,
    cost_gap_rel: f64,
    schedules_equal: bool,
    stats: RecoveryStats,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iterations = if quick { 1 } else { 3 };

    let all = scenarios(quick);
    let mut rows: Vec<Row> = Vec::new();
    for sc in &all {
        let inst = &sc.instance;
        // The baseline pins RecoveryMode::Materialized: that is exactly
        // the PR-2 code path (one forward pass over all tables, no
        // checkpoint replay), so the comparison does not credit the
        // pipeline for replay work the old solver never performed.
        let legacy_opts = DpOptions {
            parallel: false,
            recovery: rsz_offline::RecoveryMode::Materialized,
            ..DpOptions::default()
        };
        let pipeline_opts = DpOptions::pipelined();

        // Warm-up (page in code paths), then timed runs.
        let _ = solve(inst, &Dispatcher::new(), legacy_opts);

        // PR-2 baseline: legacy per-slot DP over a fresh g_t cache per
        // iteration (the measured win there was intra-solve reuse).
        let baseline = time_best(iterations, || {
            let cache = CachedDispatcher::new(inst);
            let res = solve(inst, &cache, legacy_opts);
            (res.cost, res.schedule)
        });

        // This PR: slot-batched pipeline over the plain dispatcher
        // (warm sweeps + pricing pool; no hash-map in the hot path).
        let mut stats = None;
        let pipeline = time_best(iterations, || {
            let (res, st) = solve_with_stats(inst, &Dispatcher::new(), pipeline_opts);
            stats = Some(st);
            (res.cost, res.schedule)
        });
        let stats = stats.expect("pipeline ran");

        let speedup = baseline.secs / pipeline.secs;
        let cost_gap_rel = (baseline.cost - pipeline.cost).abs() / baseline.cost.abs().max(1.0);
        let schedules_equal = baseline.schedule == pipeline.schedule;
        println!(
            "bench: dp_pipeline/{:<22} {:>9.2} ms -> {:>9.2} ms  ({speedup:>5.2}x, gap {cost_gap_rel:.2e}, pool {}, peak {} tables)",
            sc.name,
            baseline.secs * 1e3,
            pipeline.secs * 1e3,
            stats.pooled_pricing_tables,
            stats.peak_live_tables,
        );
        rows.push(Row {
            name: sc.name,
            d: inst.num_types(),
            horizon: inst.horizon(),
            baseline_ms: baseline.secs * 1e3,
            pipeline_ms: pipeline.secs * 1e3,
            speedup,
            cost_gap_rel,
            schedules_equal,
            stats,
        });

        // Correctness gates (always enforced).
        assert!(
            cost_gap_rel <= 1e-9,
            "{}: pipeline/baseline cost gap {cost_gap_rel:e} above 1e-9",
            sc.name
        );
        assert!(schedules_equal, "{}: pipeline recovered a different schedule", sc.name);
        // Performance gates: reference workload ≥ 2×, and the pure
        // time-dependent scenario must never lose to the cached
        // baseline (RecoveryMode::Auto materializes the non-poolable
        // corner instead of paying the replay) — full mode only.
        if sc.gated && !quick {
            assert!(
                speedup >= 2.0,
                "{}: pipeline speedup {speedup:.2}x below the 2x gate",
                sc.name
            );
        }
        if sc.name == "time_dependent_costs" && !quick {
            assert!(
                speedup >= 1.0,
                "{}: pipeline regressed below the cached baseline ({speedup:.2}x)",
                sc.name
            );
        }
    }

    // Kernel-layer isolation on the gated instance: steady-state
    // engine-mode stepping (pool-warm, zero oracle calls per step) under
    // the lanes kernels vs the scalar twins — the transform + fold +
    // argmin work this bench's solves bottom out in, without the pricing
    // dilution. Asserts bit-identity between the modes as it times them.
    let gated_inst = &all.iter().find(|s| s.gated).expect("one gated scenario").instance;
    let (warm, steps) = (24, if quick { 48 } else { 96 });
    let kt = rsz_bench::kernelbench::measure(gated_inst, warm, steps, iterations);
    let kernel_speedup = kt.speedup();
    println!(
        "bench: dp_pipeline/kernels{:>16.2} ms -> {:>9.2} ms  ({kernel_speedup:>5.2}x scalar/simd, {steps} steps)",
        kt.scalar_ms, kt.simd_ms,
    );
    if !quick {
        assert!(
            kernel_speedup >= 2.0,
            "kernel layer speedup {kernel_speedup:.2}x below the 2x gate"
        );
    }

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            runs,
            "    {{\n      \"scenario\": \"{}\",\n      \"d\": {},\n      \"horizon\": {},\n      \"baseline_cached_ms\": {:.3},\n      \"pipeline_ms\": {:.3},\n      \"speedup\": {:.3},\n      \"cost_gap_rel\": {:.3e},\n      \"schedules_equal\": {},\n      \"segment_len\": {},\n      \"checkpoints\": {},\n      \"peak_live_tables\": {},\n      \"pooled_pricing_tables\": {}\n    }}{}",
            r.name,
            r.d,
            r.horizon,
            r.baseline_ms,
            r.pipeline_ms,
            r.speedup,
            r.cost_gap_rel,
            r.schedules_equal,
            r.stats.segment_len,
            r.stats.checkpoints,
            r.stats.peak_live_tables,
            r.stats.pooled_pricing_tables,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let reference = rows.iter().find(|r| r.name == "diurnal_reference").expect("reference ran");
    let json = format!(
        "{{\n  \"bench\": \"dp_pipeline\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"reference_speedup\": {:.3},\n  \"kernel_scalar_ms\": {:.3},\n  \"kernel_simd_ms\": {:.3},\n  \"kernel_speedup\": {:.3},\n  \"runs\": [\n{runs}  ]\n}}\n",
        reference.speedup,
        kt.scalar_ms,
        kt.simd_ms,
        kernel_speedup,
    );

    // `cargo bench` sets the cwd to crates/bench; resolve the workspace
    // root so the JSON lands in the documented top-level locations.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    for out_path in [root.join("results").join("dp_pipeline.json"), root.join("BENCH_dp.json")] {
        let write = out_path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&out_path, &json));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", out_path.display());
        } else {
            println!("bench: dp_pipeline/json  ... {}", out_path.display());
        }
    }
}

//! Benchmarks of the DP building blocks: the power-up distance transform
//! (per-slot transition) and a full DP step including dispatch fills.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{betas, dp_step, DpOptions};
use rsz_offline::table::Table;
use rsz_offline::transform::arrival_transform;
use rsz_offline::GridMode;

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_transform");
    for &(d, m) in &[(1usize, 4096u32), (2, 63), (3, 15)] {
        let levels: Vec<Vec<u32>> = (0..d).map(|_| (0..=m).collect()).collect();
        let cells: usize = levels.iter().map(Vec::len).product();
        let betas = vec![1.5; d];
        let mut table = Table::new(levels.clone(), 0.0);
        for (i, v) in table.values_mut().iter_mut().enumerate() {
            *v = (i % 97) as f64;
        }
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::new(format!("d{d}"), cells), &cells, |b, _| {
            b.iter(|| black_box(arrival_transform(&table, &levels, &betas)))
        });
    }
    group.finish();
}

fn bench_dp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_step");
    for &(m, parallel) in &[(256u32, false), (256, true), (4096, false), (4096, true)] {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", m, 2.0, 1.0, CostModel::linear(0.4, 1.0)))
            .loads(vec![f64::from(m) / 3.0; 4])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let b = betas(&inst);
        let opts = DpOptions { grid: GridMode::Full, parallel, ..DpOptions::default() };
        let prev = Table::origin(1);
        let first = dp_step(&prev, &inst, &oracle, 0, &b, opts);
        group.bench_with_input(
            BenchmarkId::new(if parallel { "parallel" } else { "sequential" }, m),
            &m,
            |bch, _| bch.iter(|| black_box(dp_step(&first, &inst, &oracle, 1, &b, opts))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transform, bench_dp_step);
criterion_main!(benches);

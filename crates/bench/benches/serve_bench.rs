//! `serve_bench` — the daemon under multi-tenant load: what serving
//! costs on top of the bare controllers, and what recovery costs after
//! an unceremonious death.
//!
//! Scenarios (N = 1000 tenants, `--quick`: 100):
//!
//! * **fanout** — register N tenants over a handful of shared
//!   `(fleet, grid)` pool keys, stream every tenant's trace round-robin
//!   through [`Daemon::handle`]: tick throughput, per-decision p50/p99,
//!   and the cross-tenant pool-hit rate from `/metrics`. Gated on a
//!   non-zero hit rate — N tenants on 4 pool keys must share pricing.
//! * **replay** — retransmit every tenant's first seq: duplicate-seq
//!   p99 (answered from committed history, no solve).
//! * **recovery** — drop the daemon (kill -9 model) and restart over
//!   the same state dir: recovery-replay wall-clock and per-tenant
//!   cost. Gated on all N tenants recovering and a sampled tenant
//!   replaying bit-identically.
//! * **failover** — a synced replica loses its primary: wall-clock
//!   from the death to a promoted replica that has re-served the whole
//!   stream bit-identically (lease expiry + promotion + full
//!   retransmit), p50/p99 over repeated trials. Gated on zero
//!   accepted-tick loss in every trial.
//! * **divergence** — flip one committed bit in each of M replica
//!   tenants and sync: every flip must trip a fingerprint cross-check.
//!   Reports detection counters; gated on M-for-M detection.
//!
//! Results land in `results/serve.json` and, as the trajectory record
//! the CI uploads, `BENCH_serve.json`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rsz_online::LatencyProfile;
use rsz_serve::json::{self, Json};
use rsz_serve::{Daemon, ReplicaOptions, Replicator, Role, ServeOptions};

/// Pool keys the tenant population collides on: four fleets, one grid.
const FLEETS: [&str; 4] = ["cpu-gpu:2,1", "cpu-gpu:4,2", "old-new:2,2", "homogeneous:4"];

/// Per-tenant trace, peak 3.0 — inside every fleet's capacity. Phase
/// varies per tenant so pool hits are cross-tenant, not degenerate.
fn loads(tenant: usize, horizon: usize) -> Vec<f64> {
    (0..horizon)
        .map(|t| {
            let phase = (t + tenant % 5) as f64 / 4.0 * std::f64::consts::TAU;
            1.5 + 1.25 * phase.sin() + 0.25 * ((t + tenant) % 2) as f64
        })
        .collect()
}

fn tick_line(tenant: &str, seq: usize, load: f64) -> String {
    format!(r#"{{"op":"tick","tenant":"{tenant}","seq":{seq},"load":{load}}}"#)
}

fn decided(reply: &str) -> Vec<u64> {
    let v = json::parse(reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "not a decision: {reply}");
    match v.get("config") {
        Some(Json::Arr(items)) => items.iter().map(|i| i.as_u64().unwrap()).collect(),
        other => panic!("bad config {other:?} in {reply}"),
    }
}

struct Row {
    name: String,
    fields: Vec<(String, String)>,
}

fn num(v: f64) -> String {
    format!("{v:.3}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tenants = if quick { 100 } else { 1000 };
    let horizon = 6;
    let dir: PathBuf = std::env::temp_dir().join(format!("rsz-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options =
        || ServeOptions { state_dir: dir.clone(), snapshot_every: 4, ..ServeOptions::default() };
    let mut rows: Vec<Row> = Vec::new();

    // --- fanout: N tenants, round-robin ticks ---
    let daemon = Daemon::new(options()).expect("state dir");
    let clock = Instant::now();
    for i in 0..tenants {
        let reply = daemon.handle(&format!(
            r#"{{"op":"register","tenant":"t{i}","fleet":"{}","algo":"b","engine":true}}"#,
            FLEETS[i % FLEETS.len()],
        ));
        assert!(reply.contains("\"ok\":true"), "register t{i}: {reply}");
    }
    let register_secs = clock.elapsed().as_secs_f64();

    let mut samples = Vec::with_capacity(tenants * horizon);
    let clock = Instant::now();
    for seq in 0..horizon {
        for i in 0..tenants {
            let line = tick_line(&format!("t{i}"), seq, loads(i, horizon)[seq]);
            let tick = Instant::now();
            let reply = daemon.handle(&line);
            samples.push(tick.elapsed().as_secs_f64());
            debug_assert!(reply.contains("\"ok\":true"), "{reply}");
        }
    }
    let fanout_secs = clock.elapsed().as_secs_f64();
    let decisions = (tenants * horizon) as f64;
    let profile = LatencyProfile::new(samples);

    let metrics = json::parse(&daemon.handle("GET /metrics")).expect("metrics parse");
    let hit_rate = metrics.get("pool_hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
    assert!(
        hit_rate > 0.0,
        "{tenants} tenants over {} pool keys must share pricing (hit rate {hit_rate})",
        FLEETS.len()
    );
    rows.push(Row {
        name: "fanout".into(),
        fields: vec![
            ("tenants".into(), tenants.to_string()),
            ("register_ms".into(), num(register_secs * 1e3)),
            ("ticks_per_sec".into(), num(decisions / fanout_secs.max(1e-12))),
            ("tick_p50_us".into(), num(profile.quantile(0.5) * 1e6)),
            ("tick_p99_us".into(), num(profile.quantile(0.99) * 1e6)),
            ("pool_hit_rate".into(), num(hit_rate)),
        ],
    });

    // --- replay: duplicate seqs answer from committed history ---
    let mut replay_samples = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let line = tick_line(&format!("t{i}"), 0, loads(i, horizon)[0]);
        let tick = Instant::now();
        let reply = daemon.handle(&line);
        replay_samples.push(tick.elapsed().as_secs_f64());
        assert!(reply.contains("\"replayed\":true"), "t{i} seq 0 should replay: {reply}");
    }
    let replays = LatencyProfile::new(replay_samples);
    rows.push(Row {
        name: "replay".into(),
        fields: vec![
            ("replay_p50_us".into(), num(replays.quantile(0.5) * 1e6)),
            ("replay_p99_us".into(), num(replays.quantile(0.99) * 1e6)),
        ],
    });

    // Parity probe for the recovery gate, then kill -9.
    let probe = loads(0, horizon);
    let expect: Vec<Vec<u64>> = (0..horizon)
        .map(|seq| decided(&daemon.handle(&tick_line("t0", seq, probe[seq]))))
        .collect();
    drop(daemon);

    // --- recovery: restart over the surviving state dir ---
    let clock = Instant::now();
    let daemon = Daemon::new(options()).expect("recovery");
    let recovery_secs = clock.elapsed().as_secs_f64();
    let recovered = daemon.counters.recovered.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(recovered as usize, tenants, "every tenant must recover");
    for (seq, want) in expect.iter().enumerate() {
        let got = decided(&daemon.handle(&tick_line("t0", seq, probe[seq])));
        assert_eq!(&got, want, "recovery diverged at seq {seq}");
    }
    rows.push(Row {
        name: "recovery".into(),
        fields: vec![
            ("recovered".into(), recovered.to_string()),
            ("recovery_ms".into(), num(recovery_secs * 1e3)),
            ("per_tenant_us".into(), num(recovery_secs / tenants as f64 * 1e6)),
        ],
    });
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    // --- failover: primary death → promoted, caught-up replica ---
    let trials = if quick { 10 } else { 100 };
    let fo_horizon = 6;
    let pdir = std::env::temp_dir().join(format!("rsz-serve-bench-fo-p-{}", std::process::id()));
    let rdir = std::env::temp_dir().join(format!("rsz-serve-bench-fo-r-{}", std::process::id()));
    let pair_options = |d: &PathBuf| ServeOptions {
        state_dir: d.clone(),
        snapshot_every: 4,
        fingerprint_every: 2,
        ..ServeOptions::default()
    };
    let mut failover_samples = Vec::with_capacity(trials);
    for trial in 0..trials {
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
        let primary = Arc::new(Daemon::new(pair_options(&pdir)).expect("primary dir"));
        let replica = Arc::new(Daemon::new(pair_options(&rdir)).expect("replica dir"));
        replica.set_role(Role::Replica);
        let mut replicator = Replicator::new(
            Arc::clone(&replica),
            ReplicaOptions { replica_id: "bench".into(), lease_failures: 3 },
        );
        let reply = primary.handle(
            r#"{"op":"register","tenant":"t","fleet":"cpu-gpu:2,1","algo":"b","engine":true}"#,
        );
        assert!(reply.contains("\"ok\":true"), "trial {trial}: {reply}");
        let trace = loads(trial, fo_horizon);
        let expect: Vec<Vec<u64>> = (0..fo_horizon)
            .map(|seq| {
                let d = decided(&primary.handle(&tick_line("t", seq, trace[seq])));
                replicator
                    .sync_once(&mut |line| Ok::<String, String>(primary.handle(line)))
                    .expect("clean sync");
                d
            })
            .collect();
        drop(primary); // kill -9

        let clock = Instant::now();
        while !replicator.maybe_promote() {
            let _ = replicator.sync_once(&mut |_| Err::<String, String>("dead".into()));
        }
        for (seq, want) in expect.iter().enumerate() {
            let got = decided(&replica.handle(&tick_line("t", seq, trace[seq])));
            assert_eq!(&got, want, "trial {trial}: failover diverged at seq {seq}");
        }
        failover_samples.push(clock.elapsed().as_secs_f64());
        let have = replica.replication_have();
        assert_eq!(
            have.first().map(|(_, n)| *n),
            Some(fo_horizon as u64),
            "trial {trial}: accepted ticks lost across failover"
        );
    }
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
    let failovers = LatencyProfile::new(failover_samples);
    rows.push(Row {
        name: "failover".into(),
        fields: vec![
            ("trials".into(), trials.to_string()),
            ("failover_p50_us".into(), num(failovers.quantile(0.5) * 1e6)),
            ("failover_p99_us".into(), num(failovers.quantile(0.99) * 1e6)),
        ],
    });

    // --- divergence: M flipped replica tenants, M detections ---
    let flipped = if quick { 20 } else { 100 };
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
    let primary = Arc::new(Daemon::new(pair_options(&pdir)).expect("primary dir"));
    let replica = Arc::new(
        Daemon::new(ServeOptions { allow_fault_hooks: true, ..pair_options(&rdir) })
            .expect("replica dir"),
    );
    replica.set_role(Role::Replica);
    let mut replicator = Replicator::new(Arc::clone(&replica), ReplicaOptions::default());
    for i in 0..flipped {
        let reply = primary.handle(&format!(
            r#"{{"op":"register","tenant":"d{i}","fleet":"cpu-gpu:2,1","algo":"b","engine":true}}"#
        ));
        assert!(reply.contains("\"ok\":true"), "register d{i}: {reply}");
    }
    for seq in 0..4 {
        for i in 0..flipped {
            primary.handle(&tick_line(&format!("d{i}"), seq, loads(i, 6)[seq]));
        }
    }
    replicator
        .sync_once(&mut |line| Ok::<String, String>(primary.handle(line)))
        .expect("pre-flip sync");
    for i in 0..flipped {
        assert!(replica.inject_divergence(&format!("d{i}")), "fault hook d{i}");
    }
    for seq in 4..6 {
        for i in 0..flipped {
            primary.handle(&tick_line(&format!("d{i}"), seq, loads(i, 6)[seq]));
        }
    }
    let clock = Instant::now();
    let report = replicator
        .sync_once(&mut |line| Ok::<String, String>(primary.handle(line)))
        .expect("post-flip sync applies, with per-tenant errors");
    let detect_secs = clock.elapsed().as_secs_f64();
    let detected =
        replica.counters.fingerprint_mismatches.load(std::sync::atomic::Ordering::Relaxed);
    let fp_checks = replica.counters.fingerprint_checks.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        detected as usize,
        flipped,
        "every flipped tenant must trip a fingerprint check ({:?})",
        report.errors.len()
    );
    rows.push(Row {
        name: "divergence".into(),
        fields: vec![
            ("divergence_tenants".into(), flipped.to_string()),
            ("divergence_detected".into(), detected.to_string()),
            ("fingerprint_checks".into(), fp_checks.to_string()),
            ("detect_ms".into(), num(detect_secs * 1e3)),
        ],
    });
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);

    // Console summary.
    for r in &rows {
        let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k} {v}")).collect();
        println!("bench: serve/{:<20} ... {}", r.name, fields.join(" | "));
    }

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let mut fields = String::new();
        for (j, (k, v)) in r.fields.iter().enumerate() {
            let _ = write!(
                fields,
                "      \"{k}\": {v}{}",
                if j + 1 < r.fields.len() { ",\n" } else { "\n" }
            );
        }
        let _ = write!(
            runs,
            "    {{\n      \"scenario\": \"{}\",\n{fields}    }}{}",
            r.name,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let json_out = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"tenants\": {tenants},\n  \"pool_hit_rate\": {},\n  \"runs\": [\n{runs}  ]\n}}\n",
        num(hit_rate),
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    for out_path in [root.join("results").join("serve.json"), root.join("BENCH_serve.json")] {
        let write = out_path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&out_path, &json_out));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", out_path.display());
        } else {
            println!("bench: serve/json           ... {}", out_path.display());
        }
    }
}

//! `dp_refine` — end-to-end benchmark of the coarse-to-fine corridor
//! solver (`rsz_offline::refine`) against the PR-3 slot-batched
//! pipeline.
//!
//! Both sides run the same pipeline pricing machinery; the refined side
//! additionally solves a cheap `Γ(γ₀)` coarse pass, lifts the coarse
//! trajectory to per-slot fine-grid bands, and runs the DP on band
//! cells only (expansion fixpoint guarding exactness). The win is
//! structural — per-slot work drops from grid volume to band volume —
//! and grows with fleet size and dimension, so the gated scenario is
//! the d = 3 large-fleet one (m = (64, 64, 64)), where the full grid
//! has 65³ ≈ 275 k cells per slot.
//!
//! Scenarios: tiled-diurnal d = 3 large fleet (gated ≥ 3×), a bursty
//! MMPP d = 3 trace with few exact load repeats, and a time-varying
//! electricity-price d = 2 workload (no slot sharing anywhere — every
//! slot prices fresh, so banding is the only lever). Every scenario
//! gates cost parity ≤ 1e-9 and schedule equality between the refined
//! and the unrestricted pipeline solve; the wall-clock gate applies in
//! full (non `--quick`) mode only.
//!
//! Results land in `results/dp_refine.json` and, as the trajectory
//! record the CI uploads, `BENCH_refine.json` at the workspace root.

use std::fmt::Write as _;
use std::time::Instant;

use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve, DpOptions};
use rsz_offline::refine::{solve_refined, RefineOptions, RefineStats};
use rsz_workloads::{patterns, stochastic};

struct Scenario {
    name: &'static str,
    instance: Instance,
    /// Only the d = 3 large-fleet scenario carries the speedup gate.
    gated: bool,
}

fn tiled_diurnal(horizon: usize, base: f64, amplitude: f64) -> Vec<f64> {
    let day = patterns::diurnal(24, base, amplitude, 24, 0.75);
    day.values().iter().copied().cycle().take(horizon).collect()
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let (large_m, large_t) = if quick { (24, 24) } else { (64, 64) };
    let cap = 6.0 * f64::from(large_m); // three types, capacities 1/2/3
    let d3_large = Instance::builder()
        .server_type(ServerType::new("small", large_m, 2.0, 1.0, CostModel::linear(0.4, 1.0)))
        .server_type(ServerType::new("mid", large_m, 3.0, 2.0, CostModel::power(0.8, 0.5, 2.0)))
        .server_type(ServerType::new("big", large_m, 5.0, 3.0, CostModel::quadratic(1.0, 0.5, 0.2)))
        .loads(tiled_diurnal(large_t, 0.08 * cap, 0.6 * cap))
        .build()
        .expect("d=3 large-fleet instance feasible");

    let (bursty_m, bursty_t) = if quick { (12, 24) } else { (32, 48) };
    let bcap = 6.0 * f64::from(bursty_m);
    let d3_bursty = Instance::builder()
        .server_type(ServerType::new("small", bursty_m, 1.5, 1.0, CostModel::linear(0.6, 1.1)))
        .server_type(ServerType::new("mid", bursty_m, 3.0, 2.0, CostModel::power(0.7, 0.4, 2.0)))
        .server_type(ServerType::new("big", bursty_m, 4.5, 3.0, CostModel::linear(1.2, 0.7)))
        .loads(
            stochastic::mmpp(bursty_t, 0.08 * bcap, 0.5 * bcap, 0.06, 0.25, 1.0, 11)
                .capped(0.85 * bcap)
                .into_values(),
        )
        .build()
        .expect("d=3 bursty instance feasible");

    let (td_m, td_t) = if quick { (24, 48) } else { (64, 96) };
    let tcap = 3.0 * f64::from(td_m);
    let prices: Vec<f64> = (0..td_t).map(|t| 0.6 + 0.4 * ((t % 24) as f64 / 23.0)).collect();
    let d2_time_varying = Instance::builder()
        .server_type(ServerType::new("flat", td_m, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::with_spec(
            "priced",
            td_m,
            3.0,
            2.0,
            CostSpec::scaled(CostModel::power(0.8, 0.5, 2.0), prices),
        ))
        .loads(tiled_diurnal(td_t, 0.1 * tcap, 0.55 * tcap))
        .build()
        .expect("time-varying instance feasible");

    vec![
        Scenario { name: "d3_large_fleet_diurnal", instance: d3_large, gated: true },
        Scenario { name: "d3_bursty_mmpp", instance: d3_bursty, gated: false },
        Scenario { name: "d2_time_varying_costs", instance: d2_time_varying, gated: false },
    ]
}

struct Timed {
    cost: f64,
    schedule: rsz_core::Schedule,
    secs: f64,
}

fn time_best<F: FnMut() -> (f64, rsz_core::Schedule)>(iterations: usize, mut run: F) -> Timed {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iterations {
        let start = Instant::now();
        let (cost, schedule) = run();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some((cost, schedule));
    }
    let (cost, schedule) = out.expect("at least one iteration");
    Timed { cost, schedule, secs: best }
}

struct Row {
    name: &'static str,
    d: usize,
    horizon: usize,
    pipeline_ms: f64,
    refine_ms: f64,
    speedup: f64,
    cost_gap_rel: f64,
    schedules_equal: bool,
    stats: RefineStats,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iterations = if quick { 1 } else { 3 };

    let all = scenarios(quick);
    let mut rows: Vec<Row> = Vec::new();
    for sc in &all {
        let inst = &sc.instance;
        // Baseline: the PR-3 slot-batched pipeline, unrestricted grid.
        let pipeline_opts = DpOptions::pipelined();
        // This PR: the same pipeline under the corridor solver.
        let refine_opts =
            DpOptions { refine: Some(RefineOptions::exact()), ..DpOptions::pipelined() };

        // Warm-up (page in code paths), then timed runs.
        let _ = solve(inst, &Dispatcher::new(), DpOptions::pipelined());

        let baseline = time_best(iterations, || {
            let res = solve(inst, &Dispatcher::new(), pipeline_opts);
            (res.cost, res.schedule)
        });

        let mut stats = None;
        let refined = time_best(iterations, || {
            let (res, st) = solve_refined(inst, &Dispatcher::new(), refine_opts);
            stats = Some(st);
            (res.cost, res.schedule)
        });
        let stats = stats.expect("refined solve ran");

        let speedup = baseline.secs / refined.secs;
        let cost_gap_rel = (baseline.cost - refined.cost).abs() / baseline.cost.abs().max(1.0);
        let schedules_equal = baseline.schedule == refined.schedule;
        println!(
            "bench: dp_refine/{:<24} {:>9.2} ms -> {:>9.2} ms  ({speedup:>5.2}x, gap {cost_gap_rel:.2e}, bands {:.1}%, {} rounds)",
            sc.name,
            baseline.secs * 1e3,
            refined.secs * 1e3,
            100.0 * stats.band_fraction(),
            stats.rounds,
        );
        rows.push(Row {
            name: sc.name,
            d: inst.num_types(),
            horizon: inst.horizon(),
            pipeline_ms: baseline.secs * 1e3,
            refine_ms: refined.secs * 1e3,
            speedup,
            cost_gap_rel,
            schedules_equal,
            stats,
        });

        // Correctness gates (always enforced).
        assert!(
            cost_gap_rel <= 1e-9,
            "{}: refined/pipeline cost gap {cost_gap_rel:e} above 1e-9",
            sc.name
        );
        assert!(schedules_equal, "{}: corridor refinement changed the schedule", sc.name);
        // Performance gate: d = 3 large fleet, full mode only.
        if sc.gated && !quick {
            assert!(
                speedup >= 3.0,
                "{}: corridor speedup {speedup:.2}x below the 3x gate",
                sc.name
            );
        }
    }

    // Kernel-layer isolation on the gated d = 3 instance: steady-state
    // engine-mode stepping (pool-warm, zero oracle calls per step) under
    // the lanes kernels vs the scalar twins. Whole refined solves are
    // pricing-dominated, so this is where the ≥ 2× kernel gate lives;
    // bit-identity between the modes is asserted as part of the timing.
    let gated_inst = &all.iter().find(|s| s.gated).expect("one gated scenario").instance;
    let (warm, steps) = if quick { (12, 12) } else { (24, 24) };
    let kt = rsz_bench::kernelbench::measure(gated_inst, warm, steps, if quick { 1 } else { 2 });
    let kernel_speedup = kt.speedup();
    println!(
        "bench: dp_refine/kernels{:>18.2} ms -> {:>9.2} ms  ({kernel_speedup:>5.2}x scalar/simd, {steps} steps)",
        kt.scalar_ms, kt.simd_ms,
    );
    if !quick {
        assert!(
            kernel_speedup >= 2.0,
            "kernel layer speedup {kernel_speedup:.2}x below the 2x gate"
        );
    }

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            runs,
            "    {{\n      \"scenario\": \"{}\",\n      \"d\": {},\n      \"horizon\": {},\n      \"pipeline_ms\": {:.3},\n      \"refine_ms\": {:.3},\n      \"speedup\": {:.3},\n      \"cost_gap_rel\": {:.3e},\n      \"schedules_equal\": {},\n      \"rounds\": {},\n      \"expansions\": {},\n      \"fell_back\": {},\n      \"band_cells\": {},\n      \"fine_cells\": {},\n      \"band_fraction\": {:.4},\n      \"pricings\": {},\n      \"pool_hits\": {},\n      \"slice_hits\": {}\n    }}{}",
            r.name,
            r.d,
            r.horizon,
            r.pipeline_ms,
            r.refine_ms,
            r.speedup,
            r.cost_gap_rel,
            r.schedules_equal,
            r.stats.rounds,
            r.stats.expansions,
            r.stats.fell_back,
            r.stats.band_cells,
            r.stats.fine_cells,
            r.stats.band_fraction(),
            r.stats.engine.pricings,
            r.stats.engine.pool_hits,
            r.stats.engine.slice_hits,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let reference = rows.iter().find(|r| r.name == "d3_large_fleet_diurnal").expect("gated ran");
    let json = format!(
        "{{\n  \"bench\": \"dp_refine\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"d3_speedup\": {:.3},\n  \"kernel_scalar_ms\": {:.3},\n  \"kernel_simd_ms\": {:.3},\n  \"kernel_speedup\": {:.3},\n  \"runs\": [\n{runs}  ]\n}}\n",
        reference.speedup,
        kt.scalar_ms,
        kt.simd_ms,
        kernel_speedup,
    );

    // `cargo bench` sets the cwd to crates/bench; resolve the workspace
    // root so the JSON lands in the documented top-level locations.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    for out_path in [root.join("results").join("dp_refine.json"), root.join("BENCH_refine.json")] {
        let write = out_path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&out_path, &json));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", out_path.display());
        } else {
            println!("bench: dp_refine/json  ... {}", out_path.display());
        }
    }
}

//! `kernel_micro` — throughput microbenchmark of the kernel layer.
//!
//! Times the three hot-loop kernels (`suffix_min_inplace`, `axpy_fold`,
//! `argmin_scan`) in both their forms — the `*_lanes` 4-wide
//! implementations and the `*_scalar` pre-refactor reference twins — on
//! contiguous lines of length 64 (one short table line), 1024 (a large
//! table's innermost row block) and 65536 (a whole d = 3 table slab),
//! reporting elements per second. Inputs are all-finite for the timed
//! loops (the kernels' fast path and the solver's common case); the
//! bit-identity of the twins on `+∞`-mixed data is asserted untimed
//! here and exhaustively in `crates/offline/tests/kernel_parity.rs`.
//!
//! Results land in `results/kernels.json`. `--quick` shrinks the rep
//! counts for the CI smoke step; no wall-clock gates either way (the
//! solver-level ≥ 2× kernel gate lives in `dp_pipeline` / `dp_refine`,
//! where it is measured inside real solves).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use rsz_offline::kernels::{
    argmin_scan_lanes, argmin_scan_scalar, axpy_fold_lanes, axpy_fold_scalar, min_scan_lanes,
    min_scan_scalar, suffix_min_inplace_lanes, suffix_min_inplace_scalar,
};

const LENS: [usize; 3] = [64, 1024, 65536];

/// Deterministic pseudo-random cost line (no `rand` needed here).
fn line(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 * 0.01
        })
        .collect()
}

/// Best-of-3 wall-clock of `reps` calls to `f`.
fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    kernel: &'static str,
    len: usize,
    scalar_eps: f64,
    lanes_eps: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Total elements per measurement — enough to dwarf timer noise in
    // full mode, small enough for a CI smoke in quick mode.
    let target: usize = if quick { 1 << 21 } else { 1 << 25 };

    // Untimed twin parity on +∞-mixed data (the full property suite
    // lives in kernel_parity.rs; this is a cheap self-check so a broken
    // build cannot record bogus throughput numbers).
    for len in LENS {
        let mut v = line(len, 7);
        for i in (3..len).step_by(17) {
            v[i] = f64::INFINITY;
        }
        let mut a = v.clone();
        let mut b = v.clone();
        suffix_min_inplace_scalar(&mut a);
        suffix_min_inplace_lanes(&mut b);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()), "suffix parity {len}");
        assert_eq!(min_scan_scalar(&v).to_bits(), min_scan_lanes(&v).to_bits(), "min parity {len}");
        assert_eq!(
            argmin_scan_scalar(&v, |i| (i % 5) as u64),
            argmin_scan_lanes(&v, |i| (i % 5) as u64),
            "argmin parity {len}"
        );
    }

    let mut rows: Vec<Row> = Vec::new();
    for len in LENS {
        let reps = (target / len).max(1);

        // Suffix minima: idempotent in place, so one buffer serves every
        // rep with identical per-rep work.
        let mut buf = line(len, 1);
        suffix_min_inplace_scalar(&mut buf);
        let scalar_s = time_reps(reps, || suffix_min_inplace_scalar(black_box(&mut buf)));
        let lanes_s = time_reps(reps, || suffix_min_inplace_lanes(black_box(&mut buf)));
        rows.push(Row {
            kernel: "suffix_min",
            len,
            scalar_eps: len as f64 * reps as f64 / scalar_s,
            lanes_eps: len as f64 * reps as f64 / lanes_s,
        });

        // Pricing fold: all-finite accumulator and slot values keep every
        // rep on the same path; scale 1e-9 keeps sums far from overflow.
        let g = line(len, 2);
        let mut v = line(len, 3);
        let scalar_s = time_reps(reps, || axpy_fold_scalar(black_box(&mut v), &g, 1e-9));
        let mut v = line(len, 3);
        let lanes_s = time_reps(reps, || axpy_fold_lanes(black_box(&mut v), &g, 1e-9));
        rows.push(Row {
            kernel: "axpy_fold",
            len,
            scalar_eps: len as f64 * reps as f64 / scalar_s,
            lanes_eps: len as f64 * reps as f64 / lanes_s,
        });

        // Windowed argmin (read-only): totals favor high indices so the
        // candidate sweep does real tie-break work every rep.
        let v = line(len, 4);
        let scalar_s = time_reps(reps, || {
            black_box(argmin_scan_scalar(black_box(&v), |i| (len - i) as u64));
        });
        let lanes_s = time_reps(reps, || {
            black_box(argmin_scan_lanes(black_box(&v), |i| (len - i) as u64));
        });
        rows.push(Row {
            kernel: "argmin",
            len,
            scalar_eps: len as f64 * reps as f64 / scalar_s,
            lanes_eps: len as f64 * reps as f64 / lanes_s,
        });
    }

    for r in &rows {
        println!(
            "bench: kernel_micro/{:<11} len {:>6}  {:>8.1} Melem/s -> {:>8.1} Melem/s  ({:>5.2}x)",
            r.kernel,
            r.len,
            r.scalar_eps / 1e6,
            r.lanes_eps / 1e6,
            r.lanes_eps / r.scalar_eps,
        );
    }

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            runs,
            "    {{\n      \"kernel\": \"{}\",\n      \"len\": {},\n      \"scalar_elems_per_s\": {:.0},\n      \"lanes_elems_per_s\": {:.0},\n      \"speedup\": {:.3}\n    }}{}",
            r.kernel,
            r.len,
            r.scalar_eps,
            r.lanes_eps,
            r.lanes_eps / r.scalar_eps,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"kernel_micro\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"runs\": [\n{runs}  ]\n}}\n",
    );

    // `cargo bench` sets the cwd to crates/bench; resolve the workspace
    // root so the JSON lands in the documented top-level location.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    let out_path = root.join("results").join("kernels.json");
    let write = out_path
        .parent()
        .map_or(Ok(()), std::fs::create_dir_all)
        .and_then(|()| std::fs::write(&out_path, &json));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    } else {
        println!("bench: kernel_micro/json  ... {}", out_path.display());
    }
}

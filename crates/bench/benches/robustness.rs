//! `robustness` — cost and latency of the fault-tolerance machinery:
//! what checkpointing, restarting, and degrading actually cost.
//!
//! Scenarios:
//!
//! * **snapshot_overhead** — Algorithm C (engine on) with
//!   snapshot-every-8 against the same run without snapshots: overhead
//!   per decision, snapshot size. Gated on bit-identical schedules.
//! * **restart_resume** — kill the run at T/2, restore from the last
//!   snapshot, finish: resumed wall-clock vs a from-scratch rerun, with
//!   schedule parity gated.
//! * **degradation_ladder** — a zero-deadline [`GracefulDegrader`]
//!   (exact → coarse → hold in three decisions) against the exact run:
//!   cost ratio of degraded service and the per-decision latency of the
//!   hold rung. Gated on every rung being exercised.
//! * **eviction_storm** — engine runs with a capacity-1 priced-slot
//!   pool against the default pool: slowdown under constant re-pricing.
//!   Gated on identical decisions.
//!
//! Results land in `results/robustness.json` and, as the trajectory
//! record the CI uploads, `BENCH_robust.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::GridMode;
use rsz_online::algo_a::AOptions;
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::degrade::{DegradeOptions, GracefulDegrader};
use rsz_online::runner::run;
use rsz_online::{restore_run, run_checkpointed, save_run};
use rsz_workloads::patterns;

fn workload(quick: bool) -> Instance {
    let horizon = if quick { 48 } else { 192 };
    let m = 8;
    let prices: Vec<f64> = (0..horizon)
        .map(|t| 1.0 + 0.6 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin().abs())
        .collect();
    let cap = 2.0 * f64::from(m);
    let day = patterns::diurnal(24, 0.1 * cap, 0.55 * cap, 24, 0.75);
    let loads: Vec<f64> = day.values().iter().copied().cycle().take(horizon).collect();
    Instance::builder()
        .server_type(ServerType::with_spec(
            "cpu",
            m,
            6.0,
            1.0,
            CostSpec::scaled(CostModel::linear(1.5, 1.0), prices.clone()),
        ))
        .server_type(ServerType::with_spec(
            "gpu",
            m,
            8.0,
            1.0,
            CostSpec::scaled(CostModel::power(1.2, 0.5, 2.0), prices),
        ))
        .loads(loads)
        .build()
        .expect("robustness workload feasible")
}

fn algo(inst: &Instance, base: AOptions) -> AlgorithmC<Dispatcher> {
    AlgorithmC::new(inst, Dispatcher::new(), COptions { epsilon: 0.25, base, ..Default::default() })
}

struct Row {
    name: String,
    fields: Vec<(String, String)>,
}

fn num(v: f64) -> String {
    format!("{v:.3}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let inst = workload(quick);
    let oracle = Dispatcher::new();
    let horizon = inst.horizon();
    let mut rows: Vec<Row> = Vec::new();

    // Baseline: uninterrupted engine run.
    let mut base_algo = algo(&inst, AOptions::engined());
    let clock = Instant::now();
    let baseline = run(&inst, &mut base_algo, &oracle);
    let baseline_secs = clock.elapsed().as_secs_f64();

    // --- snapshot_overhead ---
    let mut snaps: Vec<Vec<u8>> = Vec::new();
    let mut snap_algo = algo(&inst, AOptions::engined());
    let clock = Instant::now();
    let (snapped, _) =
        run_checkpointed(&inst, &mut snap_algo, &oracle, None, Some(8), |b| snaps.push(b.to_vec()))
            .expect("checkpointed run");
    let snapped_secs = clock.elapsed().as_secs_f64();
    assert_eq!(snapped.schedule, baseline.schedule, "snapshotting changed the schedule");
    assert!(!snaps.is_empty(), "snapshot-every-8 must emit snapshots");
    let snap_bytes = snaps.last().map_or(0, Vec::len);
    let overhead_pct = 100.0 * (snapped_secs - baseline_secs).max(0.0) / baseline_secs.max(1e-12);
    rows.push(Row {
        name: "snapshot_overhead".into(),
        fields: vec![
            ("baseline_ms".into(), num(baseline_secs * 1e3)),
            ("snapshotting_ms".into(), num(snapped_secs * 1e3)),
            ("overhead_pct".into(), num(overhead_pct)),
            ("snapshots".into(), snaps.len().to_string()),
            ("snapshot_bytes".into(), snap_bytes.to_string()),
        ],
    });

    // --- restart_resume: restore from the mid-horizon snapshot ---
    let mid = snaps[snaps.len() / 2].clone();
    let mut resumed_algo = algo(&inst, AOptions::engined());
    let clock = Instant::now();
    let committed =
        restore_run(&mut resumed_algo, &inst, &mid).expect("mid-horizon snapshot restores");
    let mut schedule = committed;
    let restored_at = schedule.len();
    for t in restored_at..horizon {
        schedule.push(rsz_online::runner::OnlineAlgorithm::decide(&mut resumed_algo, &inst, t));
    }
    let resume_secs = clock.elapsed().as_secs_f64();
    assert_eq!(schedule, baseline.schedule, "resumed schedule diverged");
    rows.push(Row {
        name: "restart_resume".into(),
        fields: vec![
            ("restored_slots".into(), restored_at.to_string()),
            ("resumed_slots".into(), (horizon - restored_at).to_string()),
            ("resume_ms".into(), num(resume_secs * 1e3)),
            ("rerun_ms".into(), num(baseline_secs * 1e3)),
            ("restart_win".into(), num(baseline_secs / resume_secs.max(1e-12))),
        ],
    });

    // --- degradation_ladder: zero deadline walks every rung ---
    let ladder_opts = DegradeOptions { deadline: Some(Duration::ZERO), ..Default::default() };
    let mut degrader = GracefulDegrader::new(
        algo(&inst, AOptions::default()),
        |i: &Instance, g: GridMode| algo(i, AOptions { grid: g, ..AOptions::default() }),
        ladder_opts,
    );
    let clock = Instant::now();
    let degraded = run(&inst, &mut degrader, &oracle);
    let degraded_secs = clock.elapsed().as_secs_f64();
    degraded.schedule.check_feasible(&inst).expect("held schedule feasible");
    let stats = degrader.stats();
    assert_eq!(stats.exact, 1, "zero deadline grants exactly one exact decision");
    assert_eq!(stats.coarse, 1, "one coarse decision before the hold rung");
    assert_eq!(stats.hold, horizon as u64 - 2, "hold is terminal");
    let hold_cost_ratio = degraded.cost() / baseline.cost();
    rows.push(Row {
        name: "degradation_ladder".into(),
        fields: vec![
            ("exact".into(), stats.exact.to_string()),
            ("coarse".into(), stats.coarse.to_string()),
            ("hold".into(), stats.hold.to_string()),
            ("saturated".into(), stats.saturated.len().to_string()),
            ("ladder_ms".into(), num(degraded_secs * 1e3)),
            ("hold_cost_ratio".into(), num(hold_cost_ratio)),
        ],
    });

    // --- eviction_storm: capacity-1 pool vs the default pool ---
    let mut storm_algo = algo(&inst, AOptions { pool_capacity: Some(1), ..AOptions::engined() });
    let clock = Instant::now();
    let stormy = run(&inst, &mut storm_algo, &oracle);
    let storm_secs = clock.elapsed().as_secs_f64();
    assert_eq!(stormy.schedule, baseline.schedule, "eviction storm changed decisions");
    rows.push(Row {
        name: "eviction_storm".into(),
        fields: vec![
            ("calm_ms".into(), num(baseline_secs * 1e3)),
            ("storm_ms".into(), num(storm_secs * 1e3)),
            ("slowdown".into(), num(storm_secs / baseline_secs.max(1e-12))),
        ],
    });

    // Console summary.
    for r in &rows {
        let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k} {v}")).collect();
        println!("bench: robustness/{:<20} ... {}", r.name, fields.join(" | "));
    }

    // One mid-run snapshot must also round-trip through disk bytes.
    let probe = save_run(&base_algo, &inst, &baseline.schedule);
    assert!(!probe.is_empty());

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let mut fields = String::new();
        for (j, (k, v)) in r.fields.iter().enumerate() {
            let _ = write!(
                fields,
                "      \"{k}\": {v}{}",
                if j + 1 < r.fields.len() { ",\n" } else { "\n" }
            );
        }
        let _ = write!(
            runs,
            "    {{\n      \"scenario\": \"{}\",\n{fields}    }}{}",
            r.name,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"robustness\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"horizon\": {horizon},\n  \"snapshot_bytes\": {snap_bytes},\n  \"hold_cost_ratio\": {},\n  \"runs\": [\n{runs}  ]\n}}\n",
        num(hold_cost_ratio),
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    for out_path in [root.join("results").join("robustness.json"), root.join("BENCH_robust.json")] {
        let write = out_path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&out_path, &json));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", out_path.display());
        } else {
            println!("bench: robustness/json       ... {}", out_path.display());
        }
    }
}

//! `online_engine` — whole-run benchmark of the online decision engine
//! (allocation-free prefix stepping + dense priced-slot reuse + sub-slot
//! replay) against the PR-3 online path (per-cell pricing through the
//! same oracles, fresh tables per step).
//!
//! Scenarios:
//!
//! * **Algorithm C, time-varying costs** (the reference): electricity
//!   prices make every slot's `g_t` unique, and the idle/switching ratio
//!   pushes the sub-slot refinement to `ñ_t ≈ 8` — exactly where the
//!   engine's per-slot pool collapses `ñ_t` full-grid pricings into one.
//!   Gated at ≥ 3× in *every* mode (the speedup is structural, not
//!   wall-clock-noise-sized).
//! * **Algorithm A, tiled diurnal** (d = 2, time-independent): recurring
//!   λ values make later days pure pool hits. Gated at ≥ 1.5× in full
//!   mode.
//! * **Algorithm C, d = 3 diurnal** (time-independent): engine behaviour
//!   on a wider fleet, ungated.
//!
//! Every scenario gates on *identical schedules* between engine-on and
//! engine-off, and on Algorithm C pricing each original slot exactly
//! once. Results land in `results/online_engine.json` and, as the
//! trajectory record the CI uploads, `BENCH_online.json`.

use std::fmt::Write as _;
use std::time::Instant;

use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::{run_instrumented, LatencyProfile, OnlineAlgorithm, OnlineRun};
use rsz_workloads::patterns;

fn tiled_diurnal(horizon: usize, base: f64, amplitude: f64) -> Vec<f64> {
    // One exact day, tiled: λ values repeat bit-for-bit across days,
    // which is what lets the priced-slot pool answer later days.
    let day = patterns::diurnal(24, base, amplitude, 24, 0.75);
    day.values().iter().copied().cycle().take(horizon).collect()
}

/// The reference Algorithm C workload: time-dependent prices (so the
/// pool partitions by slot and only the sub-slot replay can win) with
/// idle costs sized for `ñ_t ≈ (d/ε)·l/β ≈ 8` at ε = 0.25.
fn c_reference(quick: bool) -> Instance {
    let horizon = if quick { 48 } else { 192 };
    let m = 8;
    let prices: Vec<f64> = (0..horizon)
        .map(|t| 1.0 + 0.8 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin().abs())
        .collect();
    let cap = 2.0 * f64::from(m);
    Instance::builder()
        .server_type(ServerType::with_spec(
            "cpu",
            m,
            6.0,
            1.0,
            CostSpec::scaled(CostModel::linear(1.5, 1.0), prices.clone()),
        ))
        .server_type(ServerType::with_spec(
            "gpu",
            m,
            8.0,
            1.0,
            CostSpec::scaled(CostModel::power(1.2, 0.5, 2.0), prices),
        ))
        .loads(tiled_diurnal(horizon, 0.1 * cap, 0.55 * cap))
        .build()
        .expect("reference instance feasible")
}

fn a_diurnal(quick: bool) -> Instance {
    let horizon = if quick { 96 } else { 360 };
    let m = if quick { 10 } else { 16 };
    let cap = 2.0 * f64::from(m);
    Instance::builder()
        .server_type(ServerType::new("cpu", m, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::new("gpu", m, 4.0, 1.0, CostModel::power(1.0, 0.5, 2.0)))
        .loads(tiled_diurnal(horizon, 0.1 * cap, 0.6 * cap))
        .build()
        .expect("diurnal instance feasible")
}

fn c_d3_diurnal(quick: bool) -> Instance {
    let horizon = if quick { 48 } else { 120 };
    let m = 6;
    let cap = 3.0 * f64::from(m);
    Instance::builder()
        .server_type(ServerType::new("small", m, 3.0, 1.0, CostModel::linear(0.8, 1.0)))
        .server_type(ServerType::new("mid", m, 4.0, 1.0, CostModel::power(0.8, 0.5, 2.0)))
        .server_type(ServerType::new("big", m, 6.0, 1.0, CostModel::quadratic(1.0, 0.5, 0.3)))
        .loads(tiled_diurnal(horizon, 0.1 * cap, 0.5 * cap))
        .build()
        .expect("d=3 instance feasible")
}

struct Timed {
    run: OnlineRun,
    profile: LatencyProfile,
    secs: f64,
}

/// Time `build`'s controller over `iterations` whole runs, keeping the
/// best wall clock (fresh controller per iteration — online state must
/// not leak across runs). The controller of the *last* iteration is
/// handed to `inspect` so callers can pull engine counters off the
/// concrete type; the run/profile also come from that iteration (every
/// iteration is deterministic, only the clock varies).
fn time_runs<A: OnlineAlgorithm>(
    instance: &Instance,
    iterations: usize,
    mut build: impl FnMut() -> A,
    mut inspect: impl FnMut(&A),
) -> Timed {
    let oracle = Dispatcher::new();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iterations {
        let mut algo = build();
        let start = Instant::now();
        let (run, profile) = run_instrumented(instance, &mut algo, &oracle);
        best = best.min(start.elapsed().as_secs_f64());
        inspect(&algo);
        out = Some((run, profile));
    }
    let (run, profile) = out.expect("at least one iteration");
    Timed { run, profile, secs: best }
}

struct Row {
    name: &'static str,
    d: usize,
    horizon: usize,
    baseline_ms: f64,
    engine_ms: f64,
    speedup: f64,
    schedules_equal: bool,
    engine_p50_us: f64,
    engine_p99_us: f64,
    baseline_p50_us: f64,
    pricings: u64,
    pool_hits: u64,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Best-of-3 in quick mode too: the quick workloads are tiny
    // (~100 ms total) and the ≥3× gate below must not be failable by a
    // single scheduler stall on a shared CI runner.
    let iterations = 3;

    let mut rows: Vec<Row> = Vec::new();

    // --- Algorithm C, time-varying reference (gated ≥ 3×, all modes) ---
    {
        let inst = c_reference(quick);
        let opts = COptions { epsilon: 0.25, ..Default::default() };
        let baseline = time_runs(
            &inst,
            iterations,
            || AlgorithmC::new(&inst, Dispatcher::new(), opts),
            |_| (),
        );
        let engine_opts = COptions { base: AOptions::engined(), ..opts };
        let mut stats = None;
        let engine = time_runs(
            &inst,
            iterations,
            || AlgorithmC::new(&inst, Dispatcher::new(), engine_opts),
            |c| stats = c.engine_stats(),
        );
        let stats = stats.expect("engine on");
        assert_eq!(
            stats.pricings,
            inst.horizon() as u64,
            "Algorithm C must price each original slot exactly once"
        );
        assert!(stats.pool_hits > 0, "sub-slot replay must hit the pool");
        rows.push(report(
            "algo_c_time_varying",
            &inst,
            &baseline,
            &engine,
            stats.pricings,
            stats.pool_hits,
        ));
    }

    // --- Algorithm A, tiled diurnal (gated ≥ 1.5×, full mode) ---
    {
        let inst = a_diurnal(quick);
        let baseline = time_runs(
            &inst,
            iterations,
            || AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default()),
            |_| (),
        );
        let mut stats = None;
        let engine = time_runs(
            &inst,
            iterations,
            || AlgorithmA::new(&inst, Dispatcher::new(), AOptions::engined()),
            |a| stats = a.engine_stats(),
        );
        let stats = stats.expect("engine on");
        assert!(
            stats.pool_hits > stats.pricings,
            "tiled days must be answered from the pool: {stats:?}"
        );
        rows.push(report(
            "algo_a_diurnal",
            &inst,
            &baseline,
            &engine,
            stats.pricings,
            stats.pool_hits,
        ));
    }

    // --- Algorithm C, d = 3 time-independent (ungated) ---
    {
        let inst = c_d3_diurnal(quick);
        let opts = COptions { epsilon: 0.5, ..Default::default() };
        let baseline = time_runs(
            &inst,
            iterations,
            || AlgorithmC::new(&inst, Dispatcher::new(), opts),
            |_| (),
        );
        let engine_opts = COptions { base: AOptions::engined(), ..opts };
        let mut stats = None;
        let engine = time_runs(
            &inst,
            iterations,
            || AlgorithmC::new(&inst, Dispatcher::new(), engine_opts),
            |c| stats = c.engine_stats(),
        );
        let stats = stats.expect("engine on");
        rows.push(report(
            "algo_c_d3_diurnal",
            &inst,
            &baseline,
            &engine,
            stats.pricings,
            stats.pool_hits,
        ));
    }

    // Gates: identical schedules always; reference speedups per mode.
    for r in &rows {
        assert!(r.schedules_equal, "{}: engine changed the schedule", r.name);
    }
    let c_ref = rows.iter().find(|r| r.name == "algo_c_time_varying").expect("reference ran");
    assert!(
        c_ref.speedup >= 3.0,
        "algo_c_time_varying: engine speedup {:.2}x below the 3x gate",
        c_ref.speedup
    );
    let a_ref = rows.iter().find(|r| r.name == "algo_a_diurnal").expect("diurnal ran");
    if !quick {
        assert!(
            a_ref.speedup >= 1.5,
            "algo_a_diurnal: engine speedup {:.2}x below the 1.5x gate",
            a_ref.speedup
        );
    }

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            runs,
            "    {{\n      \"scenario\": \"{}\",\n      \"d\": {},\n      \"horizon\": {},\n      \"baseline_ms\": {:.3},\n      \"engine_ms\": {:.3},\n      \"speedup\": {:.3},\n      \"schedules_equal\": {},\n      \"baseline_p50_us\": {:.2},\n      \"engine_p50_us\": {:.2},\n      \"engine_p99_us\": {:.2},\n      \"pricings\": {},\n      \"pool_hits\": {}\n    }}{}",
            r.name,
            r.d,
            r.horizon,
            r.baseline_ms,
            r.engine_ms,
            r.speedup,
            r.schedules_equal,
            r.baseline_p50_us,
            r.engine_p50_us,
            r.engine_p99_us,
            r.pricings,
            r.pool_hits,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"online_engine\",\n  \"quick\": {quick},\n  \"timestamp\": {timestamp},\n  \"c_reference_speedup\": {:.3},\n  \"a_diurnal_speedup\": {:.3},\n  \"runs\": [\n{runs}  ]\n}}\n",
        c_ref.speedup, a_ref.speedup,
    );

    // `cargo bench` sets the cwd to crates/bench; resolve the workspace
    // root so the JSON lands in the documented top-level locations.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf();
    for out_path in
        [root.join("results").join("online_engine.json"), root.join("BENCH_online.json")]
    {
        let write = out_path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&out_path, &json));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", out_path.display());
        } else {
            println!("bench: online_engine/json  ... {}", out_path.display());
        }
    }
}

fn report(
    name: &'static str,
    inst: &Instance,
    baseline: &Timed,
    engine: &Timed,
    pricings: u64,
    pool_hits: u64,
) -> Row {
    let speedup = baseline.secs / engine.secs;
    let schedules_equal = baseline.run.schedule == engine.run.schedule;
    let (bp50, ..) = baseline.profile.summary_us();
    let (ep50, _, ep99, _, _) = engine.profile.summary_us();
    println!(
        "bench: online_engine/{name:<22} {:>9.2} ms -> {:>9.2} ms  ({speedup:>5.2}x, p50 {bp50:.0} -> {ep50:.0} µs, {pricings} pricings / {pool_hits} hits)",
        baseline.secs * 1e3,
        engine.secs * 1e3,
    );
    Row {
        name,
        d: inst.num_types(),
        horizon: inst.horizon(),
        baseline_ms: baseline.secs * 1e3,
        engine_ms: engine.secs * 1e3,
        speedup,
        schedules_equal,
        engine_p50_us: ep50,
        engine_p99_us: ep99,
        baseline_p50_us: bp50,
        pricings,
        pool_hits,
    }
}

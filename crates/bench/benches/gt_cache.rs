//! `gt_cache` — measures the `g_t` memoization layer end to end.
//!
//! Solves one time-independent diurnal instance (d = 2, m = (20, 20),
//! T = 200 by default) with the offline DP twice — plain [`Dispatcher`]
//! vs a fresh [`CachedDispatcher`] — and reports wall-clock speedup,
//! cache hit rate and the cost agreement, both to stdout and as JSON
//! into `results/gt_cache.json` (the BENCH record the CI smoke and the
//! README's performance section quote).
//!
//! The trace tiles one exactly-repeating 24-slot diurnal period: the
//! cache keys `g` on the *bits* of λ, and it is the exact recurrence of
//! load levels — the defining feature of diurnal traffic — that turns
//! `T × |grid|` dispatch solves into `period × |grid|`.
//!
//! Run with `--quick` (CI smoke) for a shortened horizon and a single
//! timed iteration; the ≥ 3× speedup gate is only enforced on the full
//! configuration, the correctness gates always.

use std::time::Instant;

use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::dp::{solve, DpOptions};
use rsz_workloads::patterns;

struct BenchConfig {
    horizon: usize,
    iterations: usize,
    quick: bool,
}

fn diurnal_instance(horizon: usize) -> Instance {
    // One exact day, tiled: λ values repeat bit-for-bit across days.
    let day = patterns::diurnal(24, 3.0, 25.0, 24, 0.75);
    let loads: Vec<f64> = day.values().iter().copied().cycle().take(horizon).collect();
    Instance::builder()
        .server_type(ServerType::new("cpu", 20, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::new("gpu", 20, 4.0, 1.0, CostModel::power(1.0, 0.5, 2.0)))
        .loads(loads)
        .build()
        .expect("bench instance is feasible")
}

fn time_solves<F: FnMut() -> f64>(iterations: usize, mut run: F) -> (f64, f64) {
    let mut cost = f64::NAN;
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let start = Instant::now();
        cost = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (cost, best)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Quick keeps ≥ 6 tiled days so the >80% hit-rate gate stays
    // meaningful (expected rate is 1 − 24/T).
    let config = BenchConfig {
        horizon: if quick { 144 } else { 200 },
        iterations: if quick { 1 } else { 3 },
        quick,
    };

    let inst = diurnal_instance(config.horizon);
    let opts = DpOptions { parallel: false, ..Default::default() };
    let plain = Dispatcher::new();

    // Warm-up solve (page in code and allocator state), then timed runs.
    let _ = solve(&inst, &plain, opts);
    let (cost_off, secs_off) = time_solves(config.iterations, || solve(&inst, &plain, opts).cost);

    // A fresh cache per iteration: the measured win is intra-solve reuse
    // (slot-sharing across the tiled diurnal days), not a pre-warmed map.
    let mut stats = None;
    let (cost_on, secs_on) = time_solves(config.iterations, || {
        let cache = CachedDispatcher::new(&inst);
        let cost = solve(&inst, &cache, opts).cost;
        stats = Some(cache.stats());
        cost
    });
    let stats = stats.expect("at least one cached iteration");

    let speedup = secs_off / secs_on;
    let hit_rate = stats.hit_rate();
    let cost_gap = (cost_off - cost_on).abs();

    println!("bench: gt_cache/off      ... {:>10.3} ms (cost {cost_off:.6})", secs_off * 1e3);
    println!("bench: gt_cache/on       ... {:>10.3} ms (cost {cost_on:.6})", secs_on * 1e3);
    println!(
        "bench: gt_cache/speedup  ... {speedup:>10.2}x (hit rate {:.1}%, {} hits / {} misses, {} entries)",
        hit_rate * 100.0,
        stats.hits,
        stats.misses,
        stats.entries
    );

    let json = format!(
        "{{\n  \"bench\": \"gt_cache\",\n  \"quick\": {},\n  \"instance\": {{ \"d\": 2, \"m\": [20, 20], \"horizon\": {} }},\n  \"cache_off_ms\": {:.3},\n  \"cache_on_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"hits\": {},\n  \"misses\": {},\n  \"entries\": {},\n  \"hit_rate\": {:.4},\n  \"cost_off\": {:.9},\n  \"cost_on\": {:.9},\n  \"cost_gap\": {:.3e}\n}}\n",
        config.quick,
        config.horizon,
        secs_off * 1e3,
        secs_on * 1e3,
        speedup,
        stats.hits,
        stats.misses,
        stats.entries,
        hit_rate,
        cost_off,
        cost_on,
        cost_gap,
    );
    // `cargo bench` sets the cwd to crates/bench; resolve the workspace
    // root so the JSON lands in the documented top-level results/.
    let results_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results");
    let out_path = results_dir.join("gt_cache.json");
    if let Err(e) =
        std::fs::create_dir_all(&results_dir).and_then(|()| std::fs::write(&out_path, &json))
    {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    } else {
        println!("bench: gt_cache/json     ... {}", out_path.display());
    }

    // Correctness gates (always enforced).
    assert!(
        cost_gap <= 1e-9 * cost_off.abs().max(1.0),
        "cached and uncached DP costs diverge: {cost_off} vs {cost_on}"
    );
    assert!(hit_rate > 0.8, "cache hit rate {:.1}% below the 80% gate", hit_rate * 100.0);
    // Performance gate (full configuration only; CI smoke machines are
    // too noisy to gate on wall-clock).
    if !config.quick {
        assert!(speedup >= 3.0, "cache speedup {speedup:.2}x below the 3x gate");
    }
}

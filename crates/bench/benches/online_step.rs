//! Per-decision latency of the online algorithms — what a cluster
//! controller would pay every slot.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::GridMode;
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_b::AlgorithmB;
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::OnlineAlgorithm;

fn instance(m: u32, horizon: usize, time_dependent: bool) -> Instance {
    let price: Vec<f64> = (0..horizon)
        .map(|t| 1.0 + 0.5 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
        .collect();
    let cost = if time_dependent {
        CostSpec::scaled(CostModel::linear(0.4, 1.0), price)
    } else {
        CostSpec::Uniform(CostModel::linear(0.4, 1.0))
    };
    let loads: Vec<f64> =
        (0..horizon).map(|t| f64::from(m) * (0.3 + 0.25 * ((t * 7) % 13) as f64 / 13.0)).collect();
    Instance::builder()
        .server_type(ServerType::with_spec("a", m, 2.0, 1.0, cost))
        .loads(loads)
        .build()
        .unwrap()
}

/// A `d = 3` heterogeneous fleet, for the wider-grid latency trend.
fn instance_d3(m: u32, horizon: usize, time_dependent: bool) -> Instance {
    let price: Vec<f64> = (0..horizon)
        .map(|t| 1.0 + 0.5 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
        .collect();
    let spec = |model: CostModel| {
        if time_dependent {
            CostSpec::scaled(model, price.clone())
        } else {
            CostSpec::Uniform(model)
        }
    };
    let cap = 3.0 * f64::from(m);
    let loads: Vec<f64> =
        (0..horizon).map(|t| cap * (0.2 + 0.2 * ((t * 7) % 13) as f64 / 13.0)).collect();
    Instance::builder()
        .server_type(ServerType::with_spec("small", m, 2.0, 1.0, spec(CostModel::linear(0.4, 1.0))))
        .server_type(ServerType::with_spec(
            "mid",
            m,
            3.0,
            1.0,
            spec(CostModel::power(0.8, 0.5, 2.0)),
        ))
        .server_type(ServerType::with_spec("big", m, 5.0, 1.0, spec(CostModel::linear(1.0, 0.6))))
        .loads(loads)
        .build()
        .unwrap()
}

fn drive(algo: &mut dyn OnlineAlgorithm, inst: &Instance) -> u64 {
    let mut acc = 0u64;
    for t in 0..inst.horizon() {
        acc = acc.wrapping_add(u64::from(algo.decide(inst, t).count(0)));
    }
    acc
}

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_whole_run");
    group.sample_size(10);
    let horizon = 48;
    for &m in &[64u32, 512] {
        let ti = instance(m, horizon, false);
        let td = instance(m, horizon, true);
        let oracle = Dispatcher::new();
        group.bench_with_input(BenchmarkId::new("algo_a_full", m), &m, |b, _| {
            b.iter(|| {
                let mut a = AlgorithmA::new(&ti, oracle, AOptions::default());
                black_box(drive(&mut a, &ti))
            })
        });
        group.bench_with_input(BenchmarkId::new("algo_a_gamma", m), &m, |b, _| {
            b.iter(|| {
                let mut a = AlgorithmA::new(
                    &ti,
                    oracle,
                    AOptions { grid: GridMode::Gamma(1.5), parallel: false, ..AOptions::default() },
                );
                black_box(drive(&mut a, &ti))
            })
        });
        group.bench_with_input(BenchmarkId::new("algo_b", m), &m, |b, _| {
            b.iter(|| {
                let mut a = AlgorithmB::new(&td, oracle, AOptions::default());
                black_box(drive(&mut a, &td))
            })
        });
        // Two refinement widths: ε drives ñ_t, so the per-decision cost
        // trend across ε is the sub-slot replay's headline number.
        for eps in [0.25, 0.5] {
            group.bench_with_input(BenchmarkId::new(format!("algo_c_eps_{eps}"), m), &m, |b, _| {
                b.iter(|| {
                    let mut a = AlgorithmC::new(
                        &td,
                        oracle,
                        COptions { epsilon: eps, ..Default::default() },
                    );
                    black_box(drive(&mut a, &td))
                })
            });
        }
    }
    // d = 3: the grid is |m|³ cells, so per-decision latency is dominated
    // by pricing — the regime the engine's priced-slot pool targets.
    for &m in &[4u32, 8] {
        let ti3 = instance_d3(m, horizon, false);
        let td3 = instance_d3(m, horizon, true);
        let oracle = Dispatcher::new();
        group.bench_with_input(BenchmarkId::new("algo_a_d3", m), &m, |b, _| {
            b.iter(|| {
                let mut a = AlgorithmA::new(&ti3, oracle, AOptions::default());
                black_box(drive(&mut a, &ti3))
            })
        });
        for eps in [0.25, 0.5] {
            group.bench_with_input(
                BenchmarkId::new(format!("algo_c_d3_eps_{eps}"), m),
                &m,
                |b, _| {
                    b.iter(|| {
                        let mut a = AlgorithmC::new(
                            &td3,
                            oracle,
                            COptions { epsilon: eps, ..Default::default() },
                        );
                        black_box(drive(&mut a, &td3))
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("algo_c_d3_engine_eps_0.25", m), &m, |b, _| {
            b.iter(|| {
                let mut a = AlgorithmC::new(
                    &td3,
                    oracle,
                    COptions { epsilon: 0.25, base: AOptions::engined(), ..Default::default() },
                );
                black_box(drive(&mut a, &td3))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);

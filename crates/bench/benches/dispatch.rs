//! Micro-benchmarks of the dispatch solvers computing `g_t(x)` — the
//! innermost loop of every DP and online step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;

fn affine_instance(d: usize) -> Instance {
    let types: Vec<ServerType> = (0..d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                8,
                1.0,
                1.0 + j as f64,
                CostModel::linear(0.5, 0.5 + j as f64),
            )
        })
        .collect();
    Instance::builder().server_types(types).loads(vec![0.0]).build().unwrap()
}

fn convex_instance(d: usize) -> Instance {
    let types: Vec<ServerType> = (0..d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                8,
                1.0,
                1.0 + j as f64,
                CostModel::power(0.5, 0.4, 2.0 + 0.5 * j as f64),
            )
        })
        .collect();
    Instance::builder().server_types(types).loads(vec![0.0]).build().unwrap()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_g");
    for d in [1usize, 2, 4] {
        let affine = affine_instance(d);
        let convex = convex_instance(d);
        let x: Vec<u32> = vec![4; d];
        let cap: f64 = (0..d).map(|j| 4.0 * (1.0 + j as f64)).sum();
        let lambda = 0.6 * cap;
        let solver = Dispatcher::new();
        group.bench_with_input(BenchmarkId::new("affine_greedy", d), &d, |b, _| {
            b.iter(|| black_box(solver.g_value(&affine, 0, &x, lambda, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("convex_kkt", d), &d, |b, _| {
            b.iter(|| black_box(solver.g_value(&convex, 0, &x, lambda, 1.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);

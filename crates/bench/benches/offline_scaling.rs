//! Benchmarks of complete offline solves: exact full-grid DP vs the
//! (1+ε)-approximation across fleet sizes — the Theorem 21 claim as a
//! continuously tracked benchmark.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::approximate;
use rsz_offline::dp::{solve_cost_only, DpOptions};

fn instance(m: u32, horizon: usize) -> Instance {
    let loads: Vec<f64> = (0..horizon)
        .map(|t| {
            let phase = t as f64 / 24.0 * std::f64::consts::TAU;
            f64::from(m) * (0.3 + 0.3 * phase.sin()).max(0.0)
        })
        .collect();
    Instance::builder()
        .server_type(ServerType::new("a", m, 2.0, 1.0, CostModel::linear(0.4, 1.0)))
        .loads(loads)
        .build()
        .unwrap()
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_solve");
    group.sample_size(10);
    let horizon = 48;
    for &m in &[64u32, 512, 4096] {
        let inst = instance(m, horizon);
        let oracle = Dispatcher::new();
        if m <= 512 {
            group.bench_with_input(BenchmarkId::new("exact_full_grid", m), &m, |b, _| {
                b.iter(|| {
                    black_box(solve_cost_only(
                        &inst,
                        &oracle,
                        DpOptions { parallel: false, ..Default::default() },
                    ))
                })
            });
        }
        for eps in [1.0, 0.25] {
            group.bench_with_input(BenchmarkId::new(format!("approx_eps_{eps}"), m), &m, |b, _| {
                b.iter(|| black_box(approximate(&inst, &oracle, eps, false).result.cost))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_approx);
criterion_main!(benches);

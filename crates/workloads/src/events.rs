//! Capacity events — mid-horizon mutations of a running instance.
//!
//! The paper's model fixes the fleet (`m_j`), the costs and the trace up
//! front; a real data center loses machines, sees electricity prices
//! spike, takes flash crowds and drops telemetry. This module expresses
//! those as a declarative [`CapacityEvent`] stream and compiles
//! `(instance, events)` into a **new** instance the solvers can run
//! unchanged — the time-varying machinery of Section 4.3
//! (`counts_over_time`, [`rsz_core::CostSpec::Scaled`]) absorbs every
//! event class.
//!
//! Feasibility is preserved by construction: where an event pushes the
//! arriving load above the post-event fleet capacity, the load is
//! clamped to capacity and the overflow is returned as a structured
//! [`SaturationReport`] — the caller decides whether that is shed
//! traffic or an SLO breach, and the solvers never see an instance
//! `Instance::build` would reject.

use rsz_core::{CostSpec, Instance, InstanceError, ServerType};

/// Policy for filling a telemetry gap ([`CapacityEvent::TraceGap`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapPolicy {
    /// Repeat the last observed load (0 when the gap opens the trace).
    HoldLast,
    /// Linear interpolation between the loads bracketing the gap
    /// (falls back to hold-last at the horizon edges).
    Interpolate,
}

/// One mutation of the running instance.
#[derive(Clone, Copy, Debug)]
pub enum CapacityEvent {
    /// `count` machines of type `j` fail at slot `t` and stay down for
    /// the rest of the horizon (until a [`CapacityEvent::MachineReturn`]).
    MachineFailure {
        /// First affected slot.
        t: usize,
        /// Server-type index.
        j: usize,
        /// Machines lost (saturating at zero).
        count: u32,
    },
    /// `count` machines of type `j` come back at slot `t` (capped at the
    /// type's original fleet size — repair, not procurement).
    MachineReturn {
        /// First affected slot.
        t: usize,
        /// Server-type index.
        j: usize,
        /// Machines restored.
        count: u32,
    },
    /// Operating costs of every type scale by `factor` over
    /// `[t, t+duration)` — an electricity-price shock.
    PriceShock {
        /// First affected slot.
        t: usize,
        /// Number of affected slots.
        duration: usize,
        /// Multiplier applied to operating costs (> 0, finite).
        factor: f64,
    },
    /// Loads scale by `factor` over `[t, t+duration)` — a flash crowd
    /// (or, with `factor < 1`, an outage upstream).
    FlashCrowd {
        /// First affected slot.
        t: usize,
        /// Number of affected slots.
        duration: usize,
        /// Multiplier applied to loads (≥ 0, finite).
        factor: f64,
    },
    /// Telemetry lost over `[t, t+duration)`: the recorded loads there
    /// are discarded and refilled under `policy`.
    TraceGap {
        /// First affected slot.
        t: usize,
        /// Number of affected slots.
        duration: usize,
        /// How to fill the gap.
        policy: GapPolicy,
    },
}

/// A slot whose post-event load exceeded the post-event fleet capacity
/// and was clamped down to it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationReport {
    /// Slot index.
    pub t: usize,
    /// Load the events produced before clamping.
    pub demanded: f64,
    /// Fleet capacity at the slot — the load actually kept.
    pub capacity: f64,
}

impl SaturationReport {
    /// Volume shed by the clamp.
    #[must_use]
    pub fn shed(&self) -> f64 {
        self.demanded - self.capacity
    }
}

/// The compiled event stream: a solver-ready instance plus the
/// saturation ledger.
#[derive(Clone, Debug)]
pub struct EventOutcome {
    /// The post-event instance (always passes `Instance::build`).
    pub instance: Instance,
    /// Slots where load had to be clamped to capacity, in slot order.
    pub saturated: Vec<SaturationReport>,
}

/// A mis-specified event stream.
#[derive(Clone, Debug, PartialEq)]
pub enum EventError {
    /// An event references a slot or type outside the instance.
    OutOfRange {
        /// Index of the offending event in the stream.
        event: usize,
    },
    /// A multiplier is non-finite, negative, or (for prices) zero.
    BadFactor {
        /// Index of the offending event in the stream.
        event: usize,
        /// The factor supplied.
        factor: f64,
    },
    /// The mutated instance failed validation (should be unreachable —
    /// the clamp guarantees feasibility; surfaced rather than unwrapped).
    Rebuild(InstanceError),
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::OutOfRange { event } => {
                write!(f, "event {event} references a slot or server type outside the instance")
            }
            EventError::BadFactor { event, factor } => {
                write!(f, "event {event} carries an invalid factor {factor}")
            }
            EventError::Rebuild(e) => write!(f, "post-event instance failed validation: {e}"),
        }
    }
}

impl std::error::Error for EventError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EventError::Rebuild(e) => Some(e),
            _ => None,
        }
    }
}

/// Compile `events` (applied in order) over `instance` into a new
/// instance, clamping saturated slots instead of failing.
///
/// Price shocks compose multiplicatively per slot and rebuild each
/// type's cost spec through [`CostSpec::Scaled`]; types with fully
/// general [`CostSpec::PerSlot`] costs keep them unshocked (there is no
/// single base shape to scale — feed such instances per-slot costs that
/// already contain the shock).
///
/// # Errors
/// [`EventError`] on out-of-range slots/types or invalid factors; the
/// instance itself is never mutated.
pub fn apply(instance: &Instance, events: &[CapacityEvent]) -> Result<EventOutcome, EventError> {
    let tt = instance.horizon();
    let d = instance.num_types();
    let original: Vec<Vec<u32>> = (0..tt).map(|t| instance.server_counts_at(t)).collect();
    let mut counts = original.clone();
    let mut loads: Vec<f64> = instance.loads().to_vec();
    let mut price: Vec<f64> = vec![1.0; tt];

    for (idx, event) in events.iter().enumerate() {
        match *event {
            CapacityEvent::MachineFailure { t, j, count } => {
                if t >= tt || j >= d {
                    return Err(EventError::OutOfRange { event: idx });
                }
                for row in &mut counts[t..] {
                    row[j] = row[j].saturating_sub(count);
                }
            }
            CapacityEvent::MachineReturn { t, j, count } => {
                if t >= tt || j >= d {
                    return Err(EventError::OutOfRange { event: idx });
                }
                for (row, orig) in counts[t..].iter_mut().zip(&original[t..]) {
                    row[j] = (row[j].saturating_add(count)).min(orig[j]);
                }
            }
            CapacityEvent::PriceShock { t, duration, factor } => {
                if t >= tt {
                    return Err(EventError::OutOfRange { event: idx });
                }
                if !factor.is_finite() || factor <= 0.0 {
                    return Err(EventError::BadFactor { event: idx, factor });
                }
                for p in &mut price[t..(t + duration).min(tt)] {
                    *p *= factor;
                }
            }
            CapacityEvent::FlashCrowd { t, duration, factor } => {
                if t >= tt {
                    return Err(EventError::OutOfRange { event: idx });
                }
                if !factor.is_finite() || factor < 0.0 {
                    return Err(EventError::BadFactor { event: idx, factor });
                }
                for l in &mut loads[t..(t + duration).min(tt)] {
                    *l *= factor;
                }
            }
            CapacityEvent::TraceGap { t, duration, policy } => {
                if t >= tt {
                    return Err(EventError::OutOfRange { event: idx });
                }
                let end = (t + duration).min(tt);
                let before = (t > 0).then(|| loads[t - 1]);
                let after = (end < tt).then(|| loads[end]);
                for (u, slot) in loads.iter_mut().enumerate().take(end).skip(t) {
                    *slot = match (policy, before, after) {
                        (GapPolicy::HoldLast, b, _) => b.unwrap_or(0.0),
                        (GapPolicy::Interpolate, Some(b), Some(a)) => {
                            // Linear between the bracketing observations:
                            // position u is (u - t + 1) of (end - t + 1)
                            // steps from `before` to `after`.
                            let span = (end - t + 1) as f64;
                            let frac = (u - t + 1) as f64 / span;
                            b + (a - b) * frac
                        }
                        (GapPolicy::Interpolate, b, a) => b.or(a).unwrap_or(0.0),
                    };
                }
            }
        }
    }

    // Clamp saturated slots: the solvers require load ≤ fleet capacity
    // at every slot; overflow becomes a report, not a panic downstream.
    let mut saturated = Vec::new();
    for t in 0..tt {
        let capacity: f64 = (0..d).map(|j| f64::from(counts[t][j]) * instance.capacity(j)).sum();
        if loads[t] > capacity {
            saturated.push(SaturationReport { t, demanded: loads[t], capacity });
            loads[t] = capacity;
        }
    }

    let shocked = price.iter().any(|&p| p != 1.0);
    let types: Vec<ServerType> = instance
        .types()
        .iter()
        .map(|ty| {
            let cost = match (&ty.cost, shocked) {
                (spec, false) => spec.clone(),
                (CostSpec::Uniform(base), true) => CostSpec::scaled(base.clone(), price.clone()),
                (CostSpec::Scaled { base, factors }, true) => {
                    let mixed: Vec<f64> = factors.iter().zip(&price).map(|(f, p)| f * p).collect();
                    CostSpec::scaled(base.clone(), mixed)
                }
                // No single base shape to scale; documented above.
                (spec @ CostSpec::PerSlot(_), true) => spec.clone(),
            };
            ServerType::with_spec(ty.name.clone(), ty.count, ty.switching_cost, ty.capacity, cost)
        })
        .collect();

    let instance = Instance::builder()
        .server_types(types)
        .loads(loads)
        .counts_over_time(counts)
        .build()
        .map_err(EventError::Rebuild)?;
    Ok(EventOutcome { instance, saturated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::CostModel;

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("b", 2, 4.0, 2.0, CostModel::constant(1.2)))
            .loads(vec![1.0, 4.0, 0.0, 2.0, 5.0, 1.0, 0.0, 3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn failure_and_return_reshape_the_fleet() {
        let inst = instance();
        let out = apply(
            &inst,
            &[
                CapacityEvent::MachineFailure { t: 2, j: 0, count: 2 },
                CapacityEvent::MachineReturn { t: 5, j: 0, count: 5 },
            ],
        )
        .unwrap();
        assert_eq!(out.instance.server_count(1, 0), 3);
        assert_eq!(out.instance.server_count(2, 0), 1);
        assert_eq!(out.instance.server_count(4, 0), 1);
        // Returns cap at the original fleet — repair, not procurement.
        assert_eq!(out.instance.server_count(5, 0), 3);
        assert!(out.instance.validate().is_ok());
    }

    #[test]
    fn saturated_slots_are_clamped_and_reported() {
        let inst = instance();
        // Losing both type-b machines from slot 4 leaves capacity 3 for
        // the load of 5 there.
        let out = apply(&inst, &[CapacityEvent::MachineFailure { t: 4, j: 1, count: 2 }]).unwrap();
        assert_eq!(out.saturated.len(), 1);
        let report = out.saturated[0];
        assert_eq!(report.t, 4);
        assert!((report.demanded - 5.0).abs() < 1e-12);
        assert!((report.capacity - 3.0).abs() < 1e-12);
        assert!((report.shed() - 2.0).abs() < 1e-12);
        assert!((out.instance.load(4) - 3.0).abs() < 1e-12);
        assert!(out.instance.validate().is_ok());
    }

    #[test]
    fn price_shock_scales_operating_costs_in_window_only() {
        let inst = instance();
        let out =
            apply(&inst, &[CapacityEvent::PriceShock { t: 2, duration: 3, factor: 4.0 }]).unwrap();
        assert!((out.instance.idle_cost(1, 0) - inst.idle_cost(1, 0)).abs() < 1e-12);
        assert!((out.instance.idle_cost(3, 0) - 4.0 * inst.idle_cost(3, 0)).abs() < 1e-12);
        assert!((out.instance.idle_cost(5, 0) - inst.idle_cost(5, 0)).abs() < 1e-12);
        assert!(!out.instance.is_time_independent());
    }

    #[test]
    fn flash_crowd_scales_loads_and_clamps_at_capacity() {
        let inst = instance();
        // 3× on slots 3..5: slot 3 becomes 6 (fits in capacity 7), slot
        // 4 demands 15 and clamps to 7.
        let out =
            apply(&inst, &[CapacityEvent::FlashCrowd { t: 3, duration: 2, factor: 3.0 }]).unwrap();
        assert!((out.instance.load(3) - 6.0).abs() < 1e-12);
        assert!((out.instance.load(4) - 7.0).abs() < 1e-12);
        assert_eq!(out.saturated.len(), 1);
        assert!((out.saturated[0].demanded - 15.0).abs() < 1e-12);
    }

    #[test]
    fn trace_gaps_fill_by_policy() {
        let inst = instance();
        let hold = apply(
            &inst,
            &[CapacityEvent::TraceGap { t: 3, duration: 2, policy: GapPolicy::HoldLast }],
        )
        .unwrap();
        assert!((hold.instance.load(3) - 0.0).abs() < 1e-12); // holds slot 2's 0.0
        assert!((hold.instance.load(4) - 0.0).abs() < 1e-12);
        let lerp = apply(
            &inst,
            &[CapacityEvent::TraceGap { t: 3, duration: 2, policy: GapPolicy::Interpolate }],
        )
        .unwrap();
        // Between loads[2] = 0 and loads[5] = 1 in thirds: 1/3, 2/3.
        assert!((lerp.instance.load(3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((lerp.instance.load(4) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bad_events_are_rejected_structurally() {
        let inst = instance();
        match apply(&inst, &[CapacityEvent::MachineFailure { t: 99, j: 0, count: 1 }]) {
            Err(EventError::OutOfRange { event: 0 }) => {}
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        match apply(&inst, &[CapacityEvent::PriceShock { t: 0, duration: 1, factor: f64::NAN }]) {
            Err(EventError::BadFactor { event: 0, .. }) => {}
            other => panic!("expected BadFactor, got {other:?}"),
        }
        match apply(&inst, &[CapacityEvent::FlashCrowd { t: 0, duration: 1, factor: -1.0 }]) {
            Err(EventError::BadFactor { event: 0, factor }) => assert_eq!(factor, -1.0),
            other => panic!("expected BadFactor, got {other:?}"),
        }
    }

    #[test]
    fn empty_event_stream_is_identity_modulo_counts_form() {
        let inst = instance();
        let out = apply(&inst, &[]).unwrap();
        assert!(out.saturated.is_empty());
        assert_eq!(out.instance.loads(), inst.loads());
        for t in 0..inst.horizon() {
            for j in 0..inst.num_types() {
                assert_eq!(out.instance.server_count(t, j), inst.server_count(t, j));
            }
        }
    }
}

//! Deterministic workload shapes.

use std::f64::consts::TAU;

use crate::trace::Trace;

/// Constant load `level` for `len` slots.
#[must_use]
pub fn constant(len: usize, level: f64) -> Trace {
    Trace::new(vec![level; len])
}

/// Diurnal sinusoid: `base + amplitude·(1 + sin)/2` with the given period
/// (slots per day). The canonical data-center shape — low at night, high
/// at midday (Lin et al. 2013 motivate right-sizing with exactly this).
///
/// `phase` shifts the peak within the day (fraction of a period).
#[must_use]
pub fn diurnal(len: usize, base: f64, amplitude: f64, period: usize, phase: f64) -> Trace {
    assert!(period > 0, "period must be positive");
    Trace::new(
        (0..len)
            .map(|t| {
                let angle = TAU * (t as f64 / period as f64 + phase);
                base + amplitude * (1.0 + angle.sin()) / 2.0
            })
            .collect(),
    )
}

/// A work week: `days` diurnal days of which every 6th and 7th day run at
/// `weekend_factor` of the weekday level.
#[must_use]
pub fn work_week(
    days: usize,
    slots_per_day: usize,
    base: f64,
    amplitude: f64,
    weekend_factor: f64,
) -> Trace {
    let mut values = Vec::with_capacity(days * slots_per_day);
    for day in 0..days {
        let weekend = day % 7 >= 5;
        let day_trace = diurnal(slots_per_day, base, amplitude, slots_per_day, 0.75);
        for &v in day_trace.values() {
            values.push(if weekend { v * weekend_factor } else { v });
        }
    }
    Trace::new(values)
}

/// Linear ramp from `from` to `to` over `len` slots.
#[must_use]
pub fn ramp(len: usize, from: f64, to: f64) -> Trace {
    if len <= 1 {
        return Trace::new(vec![from; len]);
    }
    Trace::new((0..len).map(|t| from + (to - from) * t as f64 / (len - 1) as f64).collect())
}

/// Square wave alternating `high` for `high_len` slots and `low` for
/// `low_len` slots.
#[must_use]
pub fn square_wave(len: usize, high: f64, low: f64, high_len: usize, low_len: usize) -> Trace {
    assert!(high_len + low_len > 0, "period must be positive");
    let period = high_len + low_len;
    Trace::new((0..len).map(|t| if t % period < high_len { high } else { low }).collect())
}

/// A single spike of `height` at slot `at`, zero elsewhere.
#[must_use]
pub fn spike(len: usize, at: usize, height: f64) -> Trace {
    let mut v = vec![0.0; len];
    if at < len {
        v[at] = height;
    }
    Trace::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace() {
        let t = constant(3, 2.5);
        assert_eq!(t.values(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn diurnal_oscillates_within_band() {
        let t = diurnal(48, 1.0, 4.0, 24, 0.0);
        assert!(t.values().iter().all(|&v| (1.0..=5.0 + 1e-12).contains(&v)));
        assert!(t.peak() > 4.5, "peak {}", t.peak());
        // periodicity
        assert!((t.values()[0] - t.values()[24]).abs() < 1e-9);
    }

    #[test]
    fn work_week_dampens_weekends() {
        let t = work_week(7, 4, 1.0, 2.0, 0.25);
        assert_eq!(t.len(), 28);
        let weekday_sum: f64 = t.values()[0..4].iter().sum();
        let weekend_sum: f64 = t.values()[20..24].iter().sum();
        assert!(weekend_sum < weekday_sum);
    }

    #[test]
    fn ramp_endpoints() {
        let t = ramp(5, 1.0, 5.0);
        assert_eq!(t.values()[0], 1.0);
        assert_eq!(t.values()[4], 5.0);
    }

    #[test]
    fn square_wave_duty_cycle() {
        let t = square_wave(6, 3.0, 1.0, 2, 1);
        assert_eq!(t.values(), &[3.0, 3.0, 1.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn spike_placement() {
        let t = spike(4, 2, 7.0);
        assert_eq!(t.values(), &[0.0, 0.0, 7.0, 0.0]);
    }
}

//! # rsz-workloads — synthetic workloads, fleets and cost presets
//!
//! The paper is a theory paper and ships no traces; every experiment in
//! this reproduction therefore runs on synthetic equivalents built here
//! (substitution documented in DESIGN.md):
//!
//! * [`trace`] — the `Trace` type (a `λ_1 … λ_T` sequence) with summary
//!   statistics and shaping combinators,
//! * [`patterns`] — deterministic shapes: constant, diurnal sinusoid,
//!   weekday/weekend weeks, ramps, square waves,
//! * [`stochastic`] — noise and burst processes: Gaussian perturbation,
//!   Poisson arrivals, two-state MMPP, random walks, heavy-tailed spikes,
//! * [`adversarial`] — families tuned to stress right-sizing algorithms:
//!   sawtooth oscillations around provisioning boundaries, duty cycles
//!   matched to the ski-rental horizon `⌈β/l⌉`,
//! * [`fleet`] — heterogeneous server-type presets (CPU/GPU,
//!   old/new generations, parameterized `d`-type families),
//! * [`costs`] — operating-cost and electricity-price presets,
//! * [`scenario`] — named end-to-end instances gluing the above,
//! * [`io`] — dependency-free CSV import/export of traces and schedules,
//!   with line-numbered errors and a repair policy for invalid loads,
//! * [`events`] — capacity events (machine failures/returns, price
//!   shocks, flash crowds, trace gaps) compiled into solver-ready
//!   instances with structured saturation reports,
//! * [`faultinject`] — seeded, deterministic fault plans (poisoned
//!   traces, truncation, pool-eviction storms, snapshot corruption) for
//!   the chaos suite,
//! * [`chasing`] — the Section 1 lower-bound demo: general convex
//!   function chasing on the hypercube has competitive ratio `Ω(2^d/d)`,
//!   which is why the paper restricts to operating costs of form (1).
//!
//! All randomness flows through explicit `StdRng` seeds.

#![warn(missing_docs)]

pub mod adversarial;
pub mod chasing;
pub mod costs;
pub mod events;
pub mod faultinject;
pub mod fleet;
pub mod io;
pub mod patterns;
pub mod scenario;
pub mod stochastic;
pub mod trace;

pub use events::{apply as apply_events, CapacityEvent, EventOutcome, GapPolicy};
pub use faultinject::{daemon_plan, DaemonFaultPlan, FaultPlan, ReplFault};
pub use io::{read_trace_with, RepairPolicy, RepairReport, TraceError};
pub use trace::Trace;

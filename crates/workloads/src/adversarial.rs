//! Adversarial workload families.
//!
//! The competitive-ratio experiments need inputs that *hurt*: loads that
//! oscillate across provisioning boundaries with periods tuned to the
//! ski-rental horizon `t̄_j = ⌈β_j/l_j⌉`, so an online algorithm keeps
//! paying either idle cost or switching cost whichever way it decides.
//! The true `2d` lower-bound construction of Albers & Quedenfeld
//! (CIAC'21) is not specified in this paper; these families are the
//! closest published-behaviour equivalents and the ratio experiments
//! additionally randomize over their parameters to search for bad cases
//! (documented in EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::Trace;

/// Duty-cycle trace matched to a ski-rental horizon: load `high` for one
/// slot, then `gap` zero slots, repeated. With `gap ≈ t̄_j` the online
/// algorithm's keep-or-kill decision is maximally ambiguous.
#[must_use]
pub fn ski_rental_probe(len: usize, high: f64, gap: usize) -> Trace {
    Trace::new((0..len).map(|t| if t % (gap + 1) == 0 { high } else { 0.0 }).collect())
}

/// Sawtooth oscillation between two levels with randomized dwell times —
/// crosses the provisioning boundary between `lo_servers` and
/// `hi_servers` worth of load over and over.
#[must_use]
pub fn boundary_sawtooth(
    len: usize,
    lo: f64,
    hi: f64,
    min_dwell: usize,
    max_dwell: usize,
    seed: u64,
) -> Trace {
    assert!(min_dwell >= 1 && max_dwell >= min_dwell);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(len);
    let mut high_phase = false;
    while values.len() < len {
        let dwell = rng.gen_range(min_dwell..=max_dwell);
        let level = if high_phase { hi } else { lo };
        for _ in 0..dwell {
            if values.len() == len {
                break;
            }
            values.push(level);
        }
        high_phase = !high_phase;
    }
    Trace::new(values)
}

/// Staircase that climbs one "server's worth" at a time then collapses —
/// forces a sequence of single power-ups followed by a mass power-down,
/// the pattern behind the lower-bound instances of the homogeneous case.
#[must_use]
pub fn staircase(len: usize, step_height: f64, steps: usize, dwell: usize) -> Trace {
    assert!(steps >= 1 && dwell >= 1);
    let period = steps * dwell + dwell;
    Trace::new(
        (0..len)
            .map(|t| {
                let phase = t % period;
                let level = phase / dwell;
                if level < steps {
                    step_height * (level + 1) as f64
                } else {
                    0.0
                }
            })
            .collect(),
    )
}

/// Randomized adversary: i.i.d. uniform loads in `[0, max]` but with
/// probability `p_zero` the slot is forced to zero — jitter that defeats
/// smoothing heuristics.
#[must_use]
pub fn jitter(len: usize, max: f64, p_zero: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    Trace::new(
        (0..len)
            .map(|_| if rng.gen::<f64>() < p_zero { 0.0 } else { rng.gen_range(0.0..=max) })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ski_rental_probe_period() {
        let t = ski_rental_probe(7, 2.0, 2);
        assert_eq!(t.values(), &[2.0, 0.0, 0.0, 2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn sawtooth_alternates() {
        let t = boundary_sawtooth(20, 1.0, 3.0, 2, 2, 1);
        assert_eq!(t.len(), 20);
        assert_eq!(t.values()[0], 1.0);
        assert_eq!(t.values()[2], 3.0);
        assert_eq!(t.values()[4], 1.0);
    }

    #[test]
    fn staircase_climbs_and_drops() {
        let t = staircase(8, 1.0, 3, 1);
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn jitter_has_zeros_and_positives() {
        let t = jitter(200, 5.0, 0.3, 3);
        assert!(t.values().contains(&0.0));
        assert!(t.values().iter().any(|&v| v > 0.0));
        assert!(t.peak() <= 5.0);
    }
}

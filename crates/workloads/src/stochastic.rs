//! Stochastic workload processes. All generators take an explicit seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::Trace;

/// Add zero-mean Gaussian noise (Box–Muller) with standard deviation
/// `sigma` to a trace, clamping at zero.
#[must_use]
pub fn with_gaussian_noise(trace: &Trace, sigma: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    Trace::new(trace.values().iter().map(|&v| v + sigma * gaussian(&mut rng)).collect())
}

/// Poisson-arrival volumes: each slot draws `Poisson(rate)` jobs of size
/// `job_size` (Knuth's method; `rate` should stay moderate, ≤ ~50).
#[must_use]
pub fn poisson(len: usize, rate: f64, job_size: f64, seed: u64) -> Trace {
    assert!(rate >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    Trace::new((0..len).map(|_| f64::from(poisson_draw(&mut rng, rate)) * job_size).collect())
}

/// Two-state Markov-modulated process: a "calm" state with rate
/// `low_rate` and a "burst" state with rate `high_rate`; per-slot
/// transition probabilities `p_enter_burst` and `p_exit_burst`.
/// Classic model for flash-crowd traffic.
#[must_use]
pub fn mmpp(
    len: usize,
    low_rate: f64,
    high_rate: f64,
    p_enter_burst: f64,
    p_exit_burst: f64,
    job_size: f64,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut burst = false;
    Trace::new(
        (0..len)
            .map(|_| {
                let flip: f64 = rng.gen();
                if burst {
                    if flip < p_exit_burst {
                        burst = false;
                    }
                } else if flip < p_enter_burst {
                    burst = true;
                }
                let rate = if burst { high_rate } else { low_rate };
                f64::from(poisson_draw(&mut rng, rate)) * job_size
            })
            .collect(),
    )
}

/// Reflected random walk in `[0, max]` with uniform steps in
/// `[-step, step]`.
#[must_use]
pub fn random_walk(len: usize, start: f64, step: f64, max: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start.clamp(0.0, max);
    Trace::new(
        (0..len)
            .map(|_| {
                cur = (cur + rng.gen_range(-step..=step)).clamp(0.0, max);
                cur
            })
            .collect(),
    )
}

/// Self-similar (multifractal) traffic via a conservative binomial
/// cascade (the "b-model"): total volume `total` is split recursively,
/// each half receiving a `bias : 1−bias` share in random order. Produces
/// the bursty-at-every-timescale arrivals observed in real data-center
/// traces (`bias = 0.5` is uniform; `0.7–0.8` is typical burstiness).
///
/// # Panics
/// Panics unless `0.5 ≤ bias < 1` and `total ≥ 0`.
#[must_use]
pub fn self_similar(len: usize, total: f64, bias: f64, seed: u64) -> Trace {
    assert!((0.5..1.0).contains(&bias), "bias must be in [0.5, 1)");
    assert!(total >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Work on the next power of two, then truncate.
    let n = len.next_power_of_two().max(1);
    let mut values = vec![0.0_f64; n];
    cascade(&mut rng, &mut values, 0, n, total, bias);
    values.truncate(len);
    Trace::new(values)
}

fn cascade(rng: &mut StdRng, values: &mut [f64], start: usize, n: usize, mass: f64, bias: f64) {
    if n == 1 {
        values[start] = mass;
        return;
    }
    let half = n / 2;
    let (a, b) = if rng.gen_bool(0.5) { (bias, 1.0 - bias) } else { (1.0 - bias, bias) };
    cascade(rng, values, start, half, mass * a, bias);
    cascade(rng, values, start + half, half, mass * b, bias);
}

/// Sparse heavy spikes on a base level: each slot independently spikes
/// with probability `p_spike` to a height uniform in
/// `[base, base + spike_height]`.
#[must_use]
pub fn spiky(len: usize, base: f64, spike_height: f64, p_spike: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    Trace::new(
        (0..len)
            .map(|_| {
                if rng.gen::<f64>() < p_spike {
                    base + rng.gen_range(0.0..=spike_height)
                } else {
                    base
                }
            })
            .collect(),
    )
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller; u1 bounded away from 0.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn poisson_draw(rng: &mut StdRng, rate: f64) -> u32 {
    if rate <= 0.0 {
        return 0;
    }
    let l = (-rate).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::constant;

    #[test]
    fn deterministic_under_seed() {
        let a = poisson(16, 3.0, 1.0, 7);
        let b = poisson(16, 3.0, 1.0, 7);
        assert_eq!(a, b);
        let c = poisson(16, 3.0, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_roughly_rate() {
        let t = poisson(4000, 5.0, 1.0, 1);
        assert!((t.mean() - 5.0).abs() < 0.3, "mean {}", t.mean());
    }

    #[test]
    fn noise_keeps_values_nonnegative() {
        let t = with_gaussian_noise(&constant(500, 0.5), 2.0, 3);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mmpp_bursts_raise_peak() {
        let calm = poisson(2000, 2.0, 1.0, 5);
        let bursty = mmpp(2000, 2.0, 20.0, 0.05, 0.2, 1.0, 5);
        assert!(bursty.peak() > calm.peak());
        assert!(bursty.peak_to_mean() > calm.peak_to_mean());
    }

    #[test]
    fn random_walk_respects_bounds() {
        let t = random_walk(1000, 5.0, 2.0, 8.0, 11);
        assert!(t.values().iter().all(|&v| (0.0..=8.0).contains(&v)));
    }

    #[test]
    fn spiky_base_level() {
        let t = spiky(100, 1.0, 10.0, 0.1, 2);
        assert!(t.values().iter().all(|&v| v >= 1.0));
        assert!(t.peak() > 1.0);
    }

    #[test]
    fn self_similar_conserves_mass() {
        let t = self_similar(64, 640.0, 0.7, 9);
        let sum: f64 = t.values().iter().sum();
        assert!((sum - 640.0).abs() < 1e-9, "cascade must conserve total volume");
    }

    #[test]
    fn self_similar_bias_half_is_uniform() {
        let t = self_similar(8, 8.0, 0.5, 1);
        for &v in t.values() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn self_similar_burstiness_grows_with_bias() {
        let calm = self_similar(256, 256.0, 0.55, 4);
        let bursty = self_similar(256, 256.0, 0.85, 4);
        assert!(bursty.peak_to_mean() > calm.peak_to_mean());
    }

    #[test]
    fn self_similar_truncates_non_power_of_two() {
        let t = self_similar(100, 50.0, 0.7, 3);
        assert_eq!(t.len(), 100);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }
}

//! Plain-text (CSV) import/export for traces and schedules.
//!
//! Deliberately dependency-free: one value per line for traces
//! (`# comment` lines allowed), comma-separated per-type counts per line
//! for schedules. Enough to round-trip experiment artifacts and to feed
//! real production traces into the solvers.

use std::io::{BufRead, Write};
use std::path::Path;

use rsz_core::{Config, Schedule};

use crate::trace::Trace;

/// Write a trace as one value per line, with a header comment.
pub fn write_trace(path: &Path, trace: &Trace) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# job volume per slot; {} slots", trace.len())?;
    for v in trace.values() {
        writeln!(out, "{v}")?;
    }
    Ok(())
}

/// Read a trace written by [`write_trace`] (or any one-number-per-line
/// file; `#`-prefixed lines and blank lines are skipped).
///
/// # Errors
/// I/O errors propagate; unparsable lines produce `InvalidData`.
pub fn read_trace(path: &Path) -> std::io::Result<Trace> {
    let file = std::fs::File::open(path)?;
    let mut values = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let v: f64 = s.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        values.push(v);
    }
    Ok(Trace::new(values))
}

/// Write a schedule as CSV: one line per slot, comma-separated per-type
/// active counts.
pub fn write_schedule(path: &Path, schedule: &Schedule) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# active servers per slot; columns = server types")?;
    for (_, cfg) in schedule.iter() {
        let row: Vec<String> = cfg.counts().iter().map(u32::to_string).collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Read a schedule written by [`write_schedule`].
///
/// # Errors
/// I/O errors propagate; ragged rows or unparsable counts produce
/// `InvalidData`.
pub fn read_schedule(path: &Path) -> std::io::Result<Schedule> {
    let file = std::fs::File::open(path)?;
    let mut steps: Vec<Config> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let counts: Result<Vec<u32>, _> = s.split(',').map(|c| c.trim().parse()).collect();
        let counts = counts.map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if let Some(w) = width {
            if counts.len() != w {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected {w} columns, got {}", lineno + 1, counts.len()),
                ));
            }
        } else {
            width = Some(counts.len());
        }
        steps.push(Config::new(counts));
    }
    Ok(Schedule::new(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rsz-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn trace_round_trip() {
        let path = tmp("trace.csv");
        let t = patterns::diurnal(48, 1.0, 4.0, 24, 0.25);
        write_trace(&path, &t).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.values().iter().zip(back.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schedule_round_trip() {
        let path = tmp("sched.csv");
        let s = Schedule::from_counts(vec![vec![1, 0], vec![2, 1], vec![0, 3]]);
        write_schedule(&path, &s).unwrap();
        let back = read_schedule(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1.0\nnot-a-number\n").unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::write(&path, "1,2\n3\n").unwrap();
        assert!(read_schedule(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.5\n# mid\n2.5\n").unwrap();
        let t = read_trace(&path).unwrap();
        assert_eq!(t.values(), &[1.5, 2.5]);
        std::fs::remove_file(&path).ok();
    }
}

//! Plain-text (CSV) import/export for traces and schedules.
//!
//! Deliberately dependency-free: one value per line for traces
//! (`# comment` lines allowed), comma-separated per-type counts per line
//! for schedules. Enough to round-trip experiment artifacts and to feed
//! real production traces into the solvers.
//!
//! Trace ingestion is *hardened*: every error carries the 1-based line
//! number, and malformed load values (NaN, negative, infinite) are
//! rejected at parse — [`Trace::new`]'s silent clamp never sees them.
//! Real telemetry does produce such values, so [`read_trace_with`]
//! accepts a [`RepairPolicy`] (the CLI's `--repair` knob) that skips,
//! holds or interpolates the bad slots, returning a [`RepairReport`] of
//! every repair made.

use std::io::{BufRead, Write};
use std::path::Path;

use rsz_core::{Config, Schedule};

use crate::trace::Trace;

/// A trace-ingestion failure, pinned to its input line.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A line parsed, but the value is not a valid load (NaN, negative,
    /// or infinite) and the policy is [`RepairPolicy::Strict`].
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TraceError::BadValue { line, value } => {
                write!(f, "line {line}: {value} is not a valid load (finite, ≥ 0)")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for std::io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// What to do with a parsed-but-invalid load value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Fail with [`TraceError::BadValue`] (the default).
    Strict,
    /// Drop the slot entirely (shortens the trace).
    Skip,
    /// Replace with the previous valid load (0 at the start).
    HoldLast,
    /// Linear interpolation between the neighboring valid loads
    /// (falls back to hold-last at the edges).
    Interpolate,
}

/// One repaired slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Repair {
    /// 1-based input line of the bad value.
    pub line: usize,
    /// The value found there.
    pub found: f64,
    /// The value used instead (`None` = the slot was skipped).
    pub replacement: Option<f64>,
}

/// All repairs a lenient [`read_trace_with`] call performed.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Repairs in input order.
    pub repairs: Vec<Repair>,
}

impl RepairReport {
    /// `true` when the trace needed no repairs.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repairs.is_empty()
    }
}

/// Write a trace as one value per line, with a header comment.
pub fn write_trace(path: &Path, trace: &Trace) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# job volume per slot; {} slots", trace.len())?;
    for v in trace.values() {
        writeln!(out, "{v}")?;
    }
    Ok(())
}

/// Read a trace written by [`write_trace`] (or any one-number-per-line
/// file; `#`-prefixed lines and blank lines are skipped), strictly:
/// NaN, negative and infinite loads are rejected with their line
/// number. Use [`read_trace_with`] to repair instead of reject.
///
/// # Errors
/// I/O errors propagate; unparsable lines and invalid load values
/// produce `InvalidData` (via [`TraceError`]'s display form).
pub fn read_trace(path: &Path) -> std::io::Result<Trace> {
    let (trace, _) = read_trace_with(path, RepairPolicy::Strict)?;
    Ok(trace)
}

/// [`read_trace`] with an explicit [`RepairPolicy`] for invalid load
/// values, returning the repairs made alongside the trace.
///
/// # Errors
/// I/O and parse errors always fail (a line that isn't a number is
/// corrupt input, not telemetry noise); invalid *values* fail only
/// under [`RepairPolicy::Strict`].
pub fn read_trace_with(
    path: &Path,
    policy: RepairPolicy,
) -> Result<(Trace, RepairReport), TraceError> {
    let file = std::fs::File::open(path)?;
    // (line number, value) per data line; invalid values kept as-is for
    // the post-pass so Interpolate can see both neighbors.
    let mut entries: Vec<(usize, f64)> = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let v: f64 = s.parse().map_err(|e: std::num::ParseFloatError| TraceError::Parse {
            line: lineno + 1,
            message: e.to_string(),
        })?;
        if policy == RepairPolicy::Strict && !is_valid_load(v) {
            return Err(TraceError::BadValue { line: lineno + 1, value: v });
        }
        entries.push((lineno + 1, v));
    }

    let mut report = RepairReport::default();
    let mut values = Vec::with_capacity(entries.len());
    for (i, &(line, v)) in entries.iter().enumerate() {
        if is_valid_load(v) {
            values.push(v);
            continue;
        }
        match policy {
            RepairPolicy::Strict => unreachable!("strict mode failed above"),
            RepairPolicy::Skip => {
                report.repairs.push(Repair { line, found: v, replacement: None });
            }
            RepairPolicy::HoldLast => {
                let held = values.last().copied().unwrap_or(0.0);
                report.repairs.push(Repair { line, found: v, replacement: Some(held) });
                values.push(held);
            }
            RepairPolicy::Interpolate => {
                let before = values.last().copied();
                // Distance to and value of the next valid entry.
                let next = entries[i + 1..]
                    .iter()
                    .enumerate()
                    .find(|(_, &(_, w))| is_valid_load(w))
                    .map(|(k, &(_, w))| (k + 1, w));
                let fill = match (before, next) {
                    (Some(b), Some((gap, a))) => b + (a - b) / (gap as f64 + 1.0),
                    (Some(b), None) => b,
                    (None, Some((_, a))) => a,
                    (None, None) => 0.0,
                };
                report.repairs.push(Repair { line, found: v, replacement: Some(fill) });
                values.push(fill);
            }
        }
    }
    Ok((Trace::new(values), report))
}

/// A load value the solvers accept: finite and non-negative.
fn is_valid_load(v: f64) -> bool {
    v.is_finite() && v >= 0.0
}

/// Write a schedule as CSV: one line per slot, comma-separated per-type
/// active counts.
pub fn write_schedule(path: &Path, schedule: &Schedule) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# active servers per slot; columns = server types")?;
    for (_, cfg) in schedule.iter() {
        let row: Vec<String> = cfg.counts().iter().map(u32::to_string).collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Read a schedule written by [`write_schedule`].
///
/// # Errors
/// I/O errors propagate; ragged rows or unparsable counts produce
/// `InvalidData`.
pub fn read_schedule(path: &Path) -> std::io::Result<Schedule> {
    let file = std::fs::File::open(path)?;
    let mut steps: Vec<Config> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let counts: Result<Vec<u32>, _> = s.split(',').map(|c| c.trim().parse()).collect();
        let counts = counts.map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if let Some(w) = width {
            if counts.len() != w {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected {w} columns, got {}", lineno + 1, counts.len()),
                ));
            }
        } else {
            width = Some(counts.len());
        }
        steps.push(Config::new(counts));
    }
    Ok(Schedule::new(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rsz-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn trace_round_trip() {
        let path = tmp("trace.csv");
        let t = patterns::diurnal(48, 1.0, 4.0, 24, 0.25);
        write_trace(&path, &t).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.values().iter().zip(back.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schedule_round_trip() {
        let path = tmp("sched.csv");
        let s = Schedule::from_counts(vec![vec![1, 0], vec![2, 1], vec![0, 3]]);
        write_schedule(&path, &s).unwrap();
        let back = read_schedule(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1.0\nnot-a-number\n").unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::write(&path, "1,2\n3\n").unwrap();
        assert!(read_schedule(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strict_rejects_invalid_loads_with_line_numbers() {
        let path = tmp("poison.csv");
        std::fs::write(&path, "# header\n1.0\nnan\n2.0\n").unwrap();
        match read_trace_with(&path, RepairPolicy::Strict) {
            Err(TraceError::BadValue { line: 3, value }) => assert!(value.is_nan()),
            other => panic!("expected BadValue at line 3, got {other:?}"),
        }
        assert!(read_trace(&path).is_err(), "strict is the default path");
        std::fs::write(&path, "1.0\n-2.5\n").unwrap();
        match read_trace_with(&path, RepairPolicy::Strict) {
            Err(TraceError::BadValue { line: 2, value }) => assert_eq!(value, -2.5),
            other => panic!("expected BadValue at line 2, got {other:?}"),
        }
        std::fs::write(&path, "1.0\ninf\n").unwrap();
        assert!(read_trace(&path).is_err(), "infinite loads are invalid too");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_fail_under_every_policy() {
        let path = tmp("parse.csv");
        std::fs::write(&path, "1.0\nnot-a-number\n").unwrap();
        for policy in [
            RepairPolicy::Strict,
            RepairPolicy::Skip,
            RepairPolicy::HoldLast,
            RepairPolicy::Interpolate,
        ] {
            match read_trace_with(&path, policy) {
                Err(TraceError::Parse { line: 2, .. }) => {}
                other => panic!("{policy:?}: expected Parse at line 2, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repair_policies_fix_bad_values() {
        let path = tmp("repair.csv");
        std::fs::write(&path, "1.0\nnan\n4.0\n").unwrap();

        let (skip, report) = read_trace_with(&path, RepairPolicy::Skip).unwrap();
        assert_eq!(skip.values(), &[1.0, 4.0]);
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].line, 2);
        assert_eq!(report.repairs[0].replacement, None);

        let (hold, report) = read_trace_with(&path, RepairPolicy::HoldLast).unwrap();
        assert_eq!(hold.values(), &[1.0, 1.0, 4.0]);
        assert_eq!(report.repairs[0].replacement, Some(1.0));

        let (lerp, report) = read_trace_with(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(lerp.values(), &[1.0, 2.5, 4.0]);
        assert_eq!(report.repairs[0].replacement, Some(2.5));
        assert!(!report.is_clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interpolate_handles_runs_and_edges() {
        let path = tmp("lerp-edge.csv");
        // Run of two bad slots between 0 and 3: thirds.
        std::fs::write(&path, "0.0\n-1\nnan\n3.0\n").unwrap();
        let (t, _) = read_trace_with(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(t.values(), &[0.0, 1.0, 2.0, 3.0]);
        // Bad value opening the trace: take the next valid load.
        std::fs::write(&path, "nan\n2.0\n").unwrap();
        let (t, _) = read_trace_with(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(t.values(), &[2.0, 2.0]);
        // Bad value closing the trace: hold the last valid load.
        std::fs::write(&path, "2.0\nnan\n").unwrap();
        let (t, _) = read_trace_with(&path, RepairPolicy::Interpolate).unwrap();
        assert_eq!(t.values(), &[2.0, 2.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.5\n# mid\n2.5\n").unwrap();
        let t = read_trace(&path).unwrap();
        assert_eq!(t.values(), &[1.5, 2.5]);
        std::fs::remove_file(&path).ok();
    }
}

//! Operating-cost and electricity-price presets.

use std::f64::consts::TAU;

use rsz_core::CostModel;

/// Energy-proportional server: idle draw `idle_watts`, linear to
/// `peak_watts` at full load `zmax` — the standard model from the
/// power-proportionality literature (costs are in "energy units per
/// slot", load in job-volume units).
#[must_use]
pub fn energy_proportional(idle_watts: f64, peak_watts: f64, zmax: f64) -> CostModel {
    assert!(peak_watts >= idle_watts && zmax > 0.0);
    CostModel::linear(idle_watts, (peak_watts - idle_watts) / zmax)
}

/// Super-linear DVFS curve: `idle + coef·z^alpha` scaled so full load
/// `zmax` costs `peak_watts`. `alpha ≈ 2–3` models voltage scaling
/// (Wierman et al., INFOCOM'09).
#[must_use]
pub fn dvfs(idle_watts: f64, peak_watts: f64, zmax: f64, alpha: f64) -> CostModel {
    assert!(peak_watts >= idle_watts && zmax > 0.0 && alpha >= 1.0);
    let coef = (peak_watts - idle_watts) / zmax.powf(alpha);
    CostModel::power(idle_watts, coef, alpha)
}

/// The "idle at half peak" server the paper's introduction cites
/// (Delforge'14): idle draw is 50% of peak.
#[must_use]
pub fn half_peak_idle(peak_watts: f64, zmax: f64) -> CostModel {
    energy_proportional(peak_watts * 0.5, peak_watts, zmax)
}

/// Day/night electricity-price profile: sinusoid between `night` and
/// `day` price multipliers with the given period (slots per day). Use as
/// the factor vector of `CostSpec::scaled`.
#[must_use]
pub fn price_profile_diurnal(len: usize, night: f64, day: f64, period: usize) -> Vec<f64> {
    assert!(period > 0 && night >= 0.0 && day >= night);
    (0..len)
        .map(|t| {
            let angle = TAU * t as f64 / period as f64;
            night + (day - night) * (1.0 + angle.sin()) / 2.0
        })
        .collect()
}

/// Spot-market style price profile with occasional surge hours.
#[must_use]
pub fn price_profile_spiky(len: usize, base: f64, surge: f64, surge_every: usize) -> Vec<f64> {
    assert!(surge_every > 0);
    (0..len).map(|t| if t % surge_every == surge_every - 1 { surge } else { base }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_proportional_endpoints() {
        let m = energy_proportional(100.0, 250.0, 4.0);
        assert!((m.eval(0.0) - 100.0).abs() < 1e-12);
        assert!((m.eval(4.0) - 250.0).abs() < 1e-12);
    }

    #[test]
    fn dvfs_endpoints_and_convexity() {
        let m = dvfs(50.0, 200.0, 2.0, 2.5);
        assert!((m.eval(0.0) - 50.0).abs() < 1e-12);
        assert!((m.eval(2.0) - 200.0).abs() < 1e-9);
        // strictly convex: midpoint below average
        assert!(m.eval(1.0) < 125.0);
    }

    #[test]
    fn half_peak_idle_is_half() {
        let m = half_peak_idle(200.0, 1.0);
        assert!((m.idle() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn price_profiles_in_band() {
        let p = price_profile_diurnal(48, 0.5, 2.0, 24);
        assert!(p.iter().all(|&x| (0.5..=2.0 + 1e-12).contains(&x)));
        let s = price_profile_spiky(10, 1.0, 5.0, 5);
        assert_eq!(s[4], 5.0);
        assert_eq!(s[0], 1.0);
    }
}

//! Heterogeneous fleet presets.

use rsz_core::{CostModel, ServerType};

use crate::costs;

/// Homogeneous fleet: `m` identical servers (the Lin et al. setting the
/// paper generalizes).
#[must_use]
pub fn homogeneous(m: u32, beta: f64, zmax: f64, cost: CostModel) -> Vec<ServerType> {
    vec![ServerType::new("server", m, beta, zmax, cost)]
}

/// CPU + GPU fleet (the paper's motivating heterogeneity): many CPU
/// nodes with capacity 1, few GPU nodes with capacity 4 but higher
/// switching cost and idle draw.
#[must_use]
pub fn cpu_gpu(cpus: u32, gpus: u32) -> Vec<ServerType> {
    vec![
        ServerType::new("cpu", cpus, 3.0, 1.0, costs::energy_proportional(0.5, 1.2, 1.0)),
        ServerType::new("gpu", gpus, 12.0, 4.0, costs::dvfs(1.6, 4.0, 4.0, 2.0)),
    ]
}

/// Old + new server generations: the common expansion pattern where new
/// efficient machines join a legacy fleet that is kept in service.
#[must_use]
pub fn old_new(old: u32, new: u32) -> Vec<ServerType> {
    vec![
        ServerType::new("legacy", old, 2.0, 1.0, costs::energy_proportional(1.0, 2.0, 1.0)),
        ServerType::new("current", new, 4.0, 2.0, costs::energy_proportional(0.6, 1.6, 2.0)),
    ]
}

/// Three-tier fleet: legacy CPUs, current CPUs, GPUs.
#[must_use]
pub fn three_tier(legacy: u32, current: u32, gpus: u32) -> Vec<ServerType> {
    vec![
        ServerType::new("legacy", legacy, 2.0, 1.0, costs::energy_proportional(1.0, 2.0, 1.0)),
        ServerType::new("current", current, 4.0, 2.0, costs::energy_proportional(0.5, 1.4, 2.0)),
        ServerType::new("gpu", gpus, 10.0, 4.0, costs::dvfs(1.5, 4.0, 4.0, 2.0)),
    ]
}

/// A parameterized `d`-type family with *small* fleets, designed for the
/// ratio experiments where the exact DP must stay tractable: type `j`
/// has capacity `2^j`, switching cost growing with capacity, and
/// slightly sub-linear idle-cost scaling so no type dominates.
#[must_use]
pub fn scaling_family(d: usize, per_type: u32) -> Vec<ServerType> {
    (0..d)
        .map(|j| {
            let cap = f64::powi(2.0, j as i32);
            ServerType::new(
                format!("tier{j}"),
                per_type,
                1.5 * cap.sqrt() + j as f64,
                cap,
                CostModel::linear(0.4 * cap.powf(0.8), 0.6),
            )
        })
        .collect()
}

/// Total capacity of a fleet (all servers on).
#[must_use]
pub fn total_capacity(types: &[ServerType]) -> f64 {
    types.iter().map(ServerType::fleet_capacity).sum()
}

/// Parse a `NAME:PARAMS` fleet preset spec — the syntax shared by the
/// `rsz` CLI's `--fleet` flag and the serve daemon's tenant
/// registration: `homogeneous:M`, `cpu-gpu:C,G`, `old-new:O,N`,
/// `three-tier:L,C,G`. The spec string doubles as the daemon's pool
/// sharing key, so equal specs must (and do) produce identical fleets.
pub fn parse(spec: &str) -> Result<Vec<ServerType>, String> {
    let (name, params) = spec.split_once(':').ok_or("fleet must be NAME:PARAMS")?;
    let nums: Result<Vec<u32>, _> = params.split(',').map(str::parse).collect();
    let nums = nums.map_err(|e| format!("bad fleet parameters: {e}"))?;
    match (name, nums.as_slice()) {
        ("homogeneous", [m]) => Ok(homogeneous(*m, 3.0, 1.0, CostModel::linear(0.5, 1.0))),
        ("cpu-gpu", [c, g]) => Ok(cpu_gpu(*c, *g)),
        ("old-new", [o, n]) => Ok(old_new(*o, *n)),
        ("three-tier", [l, c, g]) => Ok(three_tier(*l, *c, *g)),
        _ => Err(format!("unknown fleet `{spec}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        assert_eq!(homogeneous(8, 1.0, 1.0, CostModel::constant(1.0)).len(), 1);
        assert_eq!(cpu_gpu(8, 2).len(), 2);
        assert_eq!(old_new(5, 5).len(), 2);
        assert_eq!(three_tier(4, 4, 2).len(), 3);
    }

    #[test]
    fn cpu_gpu_capacity() {
        let f = cpu_gpu(8, 2);
        assert!((total_capacity(&f) - (8.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn scaling_family_monotone_capacity() {
        let f = scaling_family(4, 2);
        assert_eq!(f.len(), 4);
        for w in f.windows(2) {
            assert!(w[1].capacity > w[0].capacity);
            assert!(w[1].switching_cost > w[0].switching_cost);
        }
    }

    #[test]
    fn gpu_idle_exceeds_cpu_idle() {
        let f = cpu_gpu(1, 1);
        assert!(f[1].idle_cost(0) > f[0].idle_cost(0));
    }

    #[test]
    fn parse_round_trips_the_presets() {
        assert_eq!(parse("homogeneous:8").unwrap().len(), 1);
        assert_eq!(parse("cpu-gpu:8,2").unwrap().len(), 2);
        assert_eq!(parse("old-new:5,5").unwrap().len(), 2);
        assert_eq!(parse("three-tier:4,4,2").unwrap().len(), 3);
        assert!(parse("cpu-gpu").is_err());
        assert!(parse("cpu-gpu:1").is_err());
        assert!(parse("warp-core:9").is_err());
    }
}

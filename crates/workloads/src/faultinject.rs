//! Deterministic, seeded fault injection for chaos testing.
//!
//! Every fault the chaos suite throws at the decision core is generated
//! here from an explicit `StdRng` seed, so a failing run reproduces
//! from its seed alone. Four fault classes, matching the failure model
//! (docs/ALGORITHMS.md):
//!
//! * **poisoned traces** — NaN / negative / infinite job volumes spliced
//!   into otherwise valid raw trace values (must be rejected or repaired
//!   at ingestion, never reach a solver),
//! * **truncated traces** — the feed dies mid-horizon,
//! * **eviction storms** — a pathologically small priced-slot pool
//!   capacity, forcing the engine to re-price constantly (must degrade
//!   throughput, never decisions),
//! * **corrupted snapshots** — bit flips in a serialized engine
//!   snapshot (must fail the checksum, never deserialize into garbage).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The poison values cycled into a trace, in order.
pub const POISON_VALUES: [f64; 3] = [f64::NAN, -1.0, f64::INFINITY];

/// A seeded, fully deterministic fault plan for one chaos run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// Slots to poison, paired with the raw value to splice in.
    pub poisoned: Vec<(usize, f64)>,
    /// Cut the trace to this many slots (`None` = no truncation).
    pub truncate_at: Option<usize>,
    /// Priced-slot pool retention bound for the eviction storm (tiny).
    pub pool_capacity: usize,
    /// Byte position seed for snapshot corruption (reduced modulo the
    /// snapshot length at flip time).
    pub corrupt_at: u64,
}

/// Derive the fault plan for `(seed, horizon)`. Same inputs, same plan —
/// chaos runs cite their seed and reproduce exactly.
#[must_use]
pub fn plan(seed: u64, horizon: usize) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_poison = if horizon == 0 { 0 } else { rng.gen_range(1..=horizon.min(3)) };
    let mut poisoned = Vec::with_capacity(n_poison);
    for i in 0..n_poison {
        let t = rng.gen_range(0..horizon);
        poisoned.push((t, POISON_VALUES[i % POISON_VALUES.len()]));
    }
    poisoned.sort_by_key(|&(t, _)| t);
    poisoned.dedup_by_key(|&mut (t, _)| t);
    let truncate_at = (horizon > 1).then(|| rng.gen_range(1..horizon));
    FaultPlan {
        seed,
        poisoned,
        truncate_at,
        pool_capacity: rng.gen_range(1..=2),
        corrupt_at: rng.gen(),
    }
}

impl FaultPlan {
    /// Raw trace values with the plan's poison spliced in. The output is
    /// **not** a valid load sequence — that is the point; feed it to
    /// ingestion and assert the rejection/repair path.
    #[must_use]
    pub fn poison(&self, values: &[f64]) -> Vec<f64> {
        let mut out = values.to_vec();
        for &(t, v) in &self.poisoned {
            if t < out.len() {
                out[t] = v;
            }
        }
        out
    }

    /// The trace cut at the plan's truncation point.
    #[must_use]
    pub fn truncate(&self, values: &[f64]) -> Vec<f64> {
        match self.truncate_at {
            Some(at) => values[..at.min(values.len())].to_vec(),
            None => values.to_vec(),
        }
    }

    /// Flip one bit of `bytes` at a plan-determined position, returning
    /// the byte index flipped. No-op on empty input.
    pub fn corrupt(&self, bytes: &mut [u8]) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let idx = (self.corrupt_at % bytes.len() as u64) as usize;
        let bit = (self.corrupt_at >> 32) % 8;
        bytes[idx] ^= 1 << bit;
        Some(idx)
    }
}

/// A seeded fault plan for one daemon-level chaos run — the transport
/// and storage faults `tests/serve_chaos.rs` throws at `rsz serve`:
/// connections dropped mid-line, partial JSON writes, WAL
/// truncation/bit-flips, and a snapshot file that vanished while the
/// WAL survived. Like [`FaultPlan`], everything derives from the seed.
#[derive(Clone, Debug)]
pub struct DaemonFaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// Fractional position (strictly inside `(0, 1)`) at which a request
    /// line is cut — for connection drops mid-line and partial writes.
    pub split_frac: f64,
    /// Byte position seed for WAL truncation (reduced modulo the WAL
    /// length at cut time).
    pub wal_truncate_at: u64,
    /// Byte+bit position seed for a WAL bit flip.
    pub wal_flip_at: u64,
    /// Whether the snapshot file is deleted while the WAL is kept.
    pub drop_snapshot: bool,
    /// Mixing seed for the per-sync replication fault sequence (see
    /// [`DaemonFaultPlan::repl_fault`]).
    pub repl_mix: u64,
}

/// One network fault thrown at a single replication sync round trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplFault {
    /// The sync goes through untouched.
    None,
    /// The reply is lost (the replica sees a transport error).
    Drop,
    /// The primary is unreachable entirely (request never arrives).
    Partition,
    /// The reply arrives, but late (the replica's timeout may fire).
    Delay,
    /// A *stale* reply arrives — an earlier sync's answer delivered
    /// out of order.
    Reorder,
}

/// Derive the daemon fault plan for `seed`.
#[must_use]
pub fn daemon_plan(seed: u64) -> DaemonFaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e57_e5e7_ab1e_0000);
    DaemonFaultPlan {
        seed,
        split_frac: rng.gen_range(0.1..0.9),
        wal_truncate_at: rng.gen(),
        wal_flip_at: rng.gen(),
        drop_snapshot: rng.gen_bool(0.5),
        repl_mix: rng.gen(),
    }
}

impl DaemonFaultPlan {
    /// Cut a request line at the plan's fractional position, strictly
    /// inside the line (both halves non-empty for lines of ≥ 2 bytes).
    #[must_use]
    pub fn split_line<'a>(&self, line: &'a str) -> (&'a str, &'a str) {
        if line.len() < 2 {
            return (line, "");
        }
        let mut at = ((line.len() as f64 * self.split_frac) as usize).clamp(1, line.len() - 1);
        while !line.is_char_boundary(at) {
            at += 1;
        }
        line.split_at(at)
    }

    /// Truncate a WAL image at a plan-determined byte position strictly
    /// short of its length (a torn tail, as a `kill -9` mid-append
    /// leaves behind). No-op on an empty WAL.
    pub fn truncate_wal(&self, wal: &mut Vec<u8>) -> Option<usize> {
        if wal.is_empty() {
            return None;
        }
        let at = (self.wal_truncate_at % wal.len() as u64) as usize;
        wal.truncate(at);
        Some(at)
    }

    /// Flip one bit of the WAL image at a plan-determined position,
    /// returning the byte index flipped. No-op on an empty WAL.
    pub fn flip_wal(&self, wal: &mut [u8]) -> Option<usize> {
        if wal.is_empty() {
            return None;
        }
        let idx = (self.wal_flip_at % wal.len() as u64) as usize;
        let bit = (self.wal_flip_at >> 32) % 8;
        wal[idx] ^= 1 << bit;
        Some(idx)
    }

    /// The network fault thrown at replication sync number `index` —
    /// a stateless hash of `(repl_mix, index)`, so any sync's fate can
    /// be queried out of order and the whole timeline reproduces from
    /// the seed alone. Roughly half the syncs go through clean; the
    /// rest split evenly across the four fault kinds.
    #[must_use]
    pub fn repl_fault(&self, index: u64) -> ReplFault {
        // splitmix64 over the mixing seed and the sync index.
        let mut z = self.repl_mix ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        match z % 8 {
            0 => ReplFault::Drop,
            1 => ReplFault::Partition,
            2 => ReplFault::Delay,
            3 => ReplFault::Reorder,
            _ => ReplFault::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-level key for poison lists (NaN payloads defeat `==`).
    fn poison_bits(p: &FaultPlan) -> Vec<(usize, u64)> {
        p.poisoned.iter().map(|&(t, v)| (t, v.to_bits())).collect()
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = plan(42, 16);
        let b = plan(42, 16);
        assert_eq!(poison_bits(&a), poison_bits(&b));
        assert_eq!(a.truncate_at, b.truncate_at);
        assert_eq!(a.pool_capacity, b.pool_capacity);
        assert_eq!(a.corrupt_at, b.corrupt_at);
        let c = plan(43, 16);
        assert!(
            poison_bits(&a) != poison_bits(&c)
                || a.truncate_at != c.truncate_at
                || a.corrupt_at != c.corrupt_at,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn poison_splices_invalid_values() {
        let p = plan(7, 8);
        let clean = vec![1.0; 8];
        let dirty = p.poison(&clean);
        assert_eq!(dirty.len(), 8);
        let bad = dirty.iter().filter(|v| !v.is_finite() || **v < 0.0).count();
        assert_eq!(bad, p.poisoned.len());
        assert!(bad >= 1);
    }

    #[test]
    fn truncation_shortens_the_trace() {
        let p = plan(7, 8);
        let cut = p.truncate(&[1.0; 8]);
        assert_eq!(cut.len(), p.truncate_at.unwrap());
        assert!(cut.len() < 8);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let p = plan(7, 8);
        let original = vec![0xABu8; 64];
        let mut copy = original.clone();
        let idx = p.corrupt(&mut copy).unwrap();
        let diff: Vec<usize> = (0..64).filter(|&i| original[i] != copy[i]).collect();
        assert_eq!(diff, vec![idx]);
        assert_eq!((original[idx] ^ copy[idx]).count_ones(), 1);
        assert_eq!(p.corrupt(&mut []), None);
    }

    #[test]
    fn storm_pool_capacity_is_tiny() {
        for seed in 0..20 {
            let p = plan(seed, 32);
            assert!((1..=2).contains(&p.pool_capacity));
        }
    }

    #[test]
    fn daemon_plans_are_deterministic_and_split_inside_the_line() {
        let a = daemon_plan(9);
        let b = daemon_plan(9);
        assert_eq!(a.split_frac.to_bits(), b.split_frac.to_bits());
        assert_eq!(a.wal_truncate_at, b.wal_truncate_at);
        assert_eq!(a.wal_flip_at, b.wal_flip_at);
        assert_eq!(a.drop_snapshot, b.drop_snapshot);
        assert_eq!(a.repl_mix, b.repl_mix);
        for seed in 0..20 {
            let p = daemon_plan(seed);
            let line = r#"{"op":"tick","tenant":"t","seq":3,"load":1.5}"#;
            let (head, tail) = p.split_line(line);
            assert!(!head.is_empty() && !tail.is_empty());
            assert_eq!(format!("{head}{tail}"), line);
        }
    }

    #[test]
    fn wal_faults_edit_the_image_as_claimed() {
        let p = daemon_plan(11);
        let original: Vec<u8> = (0..=255).collect();
        let mut cut = original.clone();
        let at = p.truncate_wal(&mut cut).unwrap();
        assert_eq!(cut.len(), at);
        assert!(cut.len() < original.len());
        assert_eq!(&original[..at], &cut[..]);

        let mut flipped = original.clone();
        let idx = p.flip_wal(&mut flipped).unwrap();
        let diff: Vec<usize> = (0..original.len()).filter(|&i| original[i] != flipped[i]).collect();
        assert_eq!(diff, vec![idx]);
        assert_eq!((original[idx] ^ flipped[idx]).count_ones(), 1);

        assert_eq!(p.truncate_wal(&mut Vec::new()), None);
        assert_eq!(p.flip_wal(&mut []), None);
    }

    #[test]
    fn repl_faults_are_stateless_varied_and_mostly_clean() {
        let p = daemon_plan(17);
        // Stateless: querying out of order agrees with querying in order.
        let forward: Vec<ReplFault> = (0..64).map(|i| p.repl_fault(i)).collect();
        let backward: Vec<ReplFault> = (0..64).rev().map(|i| p.repl_fault(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // All five outcomes occur somewhere in a modest window.
        for want in [
            ReplFault::None,
            ReplFault::Drop,
            ReplFault::Partition,
            ReplFault::Delay,
            ReplFault::Reorder,
        ] {
            assert!((0..256).any(|i| p.repl_fault(i) == want), "fault kind {want:?} never drawn");
        }
        // Clean syncs dominate, so replication always makes progress.
        let clean = (0..256).filter(|&i| p.repl_fault(i) == ReplFault::None).count();
        assert!(clean > 64, "only {clean}/256 clean syncs");
    }
}

//! Job-volume traces.

/// A sequence of per-slot job volumes `λ_1 … λ_T`.
///
/// Thin wrapper over `Vec<f64>` with the shaping operations the
/// generators and scenarios compose: every value is kept finite and
/// non-negative.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    values: Vec<f64>,
}

impl Trace {
    /// Wrap raw values, clamping negatives to zero.
    #[must_use]
    pub fn new(values: Vec<f64>) -> Self {
        let values =
            values.into_iter().map(|v| if v.is_finite() { v.max(0.0) } else { 0.0 }).collect();
        Self { values }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the raw values (what `InstanceBuilder::loads` takes).
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Largest value.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean (0 for an empty trace).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Peak-to-mean ratio — the burstiness signal right-sizing exploits.
    #[must_use]
    pub fn peak_to_mean(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.peak() / m
        }
    }

    /// Multiply every value by `factor ≥ 0`.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        for v in &mut self.values {
            *v *= factor;
        }
        self
    }

    /// Clamp every value into `[0, cap]` — used to keep a trace feasible
    /// for a fleet with total capacity `cap`.
    #[must_use]
    pub fn capped(mut self, cap: f64) -> Self {
        for v in &mut self.values {
            *v = v.min(cap);
        }
        self
    }

    /// Rescale so the peak equals `target_peak` (no-op on all-zero
    /// traces).
    #[must_use]
    pub fn normalized_to_peak(self, target_peak: f64) -> Self {
        let p = self.peak();
        if p == 0.0 {
            self
        } else {
            self.scaled(target_peak / p)
        }
    }

    /// Point-wise sum of two equal-length traces.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn plus(mut self, other: &Trace) -> Self {
        assert_eq!(self.len(), other.len(), "trace length mismatch");
        for (a, b) in self.values.iter_mut().zip(other.values()) {
            *a += b;
        }
        self
    }
}

impl From<Vec<f64>> for Trace {
    fn from(values: Vec<f64>) -> Self {
        Trace::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_values() {
        let t = Trace::new(vec![1.0, -2.0, f64::NAN, 3.0]);
        assert_eq!(t.values(), &[1.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn stats() {
        let t = Trace::new(vec![1.0, 3.0, 2.0]);
        assert_eq!(t.peak(), 3.0);
        assert!((t.mean() - 2.0).abs() < 1e-12);
        assert!((t.peak_to_mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn shaping() {
        let t = Trace::new(vec![1.0, 4.0]).scaled(2.0).capped(5.0);
        assert_eq!(t.values(), &[2.0, 5.0]);
        let n = Trace::new(vec![1.0, 4.0]).normalized_to_peak(8.0);
        assert_eq!(n.values(), &[2.0, 8.0]);
    }

    #[test]
    fn plus_adds_pointwise() {
        let t = Trace::new(vec![1.0, 2.0]).plus(&Trace::new(vec![0.5, 0.5]));
        assert_eq!(t.values(), &[1.5, 2.5]);
    }
}

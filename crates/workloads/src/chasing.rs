//! The general convex-function-chasing lower bound (Section 1).
//!
//! The paper motivates restricting operating costs to the form of
//! equation (1) by showing that *general* convex function chasing in the
//! discrete setting is hopeless: with `m_j = 1`, `β_j = 1` the state
//! space is the hypercube `{0,1}^d`, and an adversary that makes the
//! online algorithm's current position infinitely expensive each slot
//! forces total switching cost `Ω(2^d)` over `T = 2^d − 1` slots, while
//! an offline player moves once (cost ≤ d) to a position that is never
//! hit. Competitive ratio: `Ω(2^d / d)`.
//!
//! This module simulates that game for any deterministic escape policy
//! and reports the realized ratio — the `fig_chasing_lb` experiment plots
//! its exponential growth in `d`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the online player escapes its zapped position.
#[derive(Clone, Copy, Debug)]
pub enum EscapePolicy {
    /// Flip the lowest set bit if any (free power-down), else the lowest
    /// unset bit (cheapest deterministic policy).
    PreferPowerDown,
    /// Flip a uniformly random bit.
    RandomBit(u64),
    /// Cycle through bit positions round-robin.
    RoundRobin,
}

/// Outcome of one chasing game.
#[derive(Clone, Debug)]
pub struct ChasingOutcome {
    /// Number of dimensions (server types with `m_j = 1`).
    pub d: usize,
    /// Slots played: `2^d − 1`.
    pub horizon: usize,
    /// Total power-up cost paid by the online player.
    pub online_cost: f64,
    /// Cost of the offline strategy (move once to an unvisited vertex).
    pub offline_cost: f64,
}

impl ChasingOutcome {
    /// Realized competitive ratio (∞ if offline cost is 0, which happens
    /// only when the origin itself is never zapped).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.offline_cost == 0.0 {
            if self.online_cost == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.online_cost / self.offline_cost
        }
    }
}

/// Play the hypercube chasing game in dimension `d` (`d ≤ 20` keeps the
/// visited-set tractable).
///
/// # Panics
/// Panics if `d` is 0 or greater than 20.
#[must_use]
pub fn play(d: usize, policy: EscapePolicy) -> ChasingOutcome {
    assert!((1..=20).contains(&d), "d must be in 1..=20");
    let horizon = (1usize << d) - 1;
    let mut visited = vec![false; 1 << d];
    let mut pos: u32 = 0; // start all-off
    let mut online_cost = 0.0;
    let mut rng = match policy {
        EscapePolicy::RandomBit(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut rr = 0usize;
    for _ in 0..horizon {
        visited[pos as usize] = true; // adversary zaps the current vertex
        let bit = match policy {
            EscapePolicy::PreferPowerDown => {
                if pos != 0 {
                    pos.trailing_zeros() as usize // lowest set bit → power-down
                } else {
                    0 // forced power-up of bit 0
                }
            }
            EscapePolicy::RandomBit(_) => rng.as_mut().expect("rng initialized").gen_range(0..d),
            EscapePolicy::RoundRobin => {
                let b = rr;
                rr = (rr + 1) % d;
                b
            }
        };
        let mask = 1u32 << bit;
        if pos & mask == 0 {
            online_cost += 1.0; // power-up costs β = 1
        }
        pos ^= mask;
    }
    // Offline: move once (at the start) to a vertex that is never zapped.
    let refuge =
        visited.iter().position(|&v| !v).expect("2^d vertices, only 2^d − 1 zapped") as u32;
    let offline_cost = f64::from(refuge.count_ones());
    ChasingOutcome { d, horizon, online_cost, offline_cost }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_pays_many_ups_offline_at_most_d() {
        for d in 1..=8 {
            for policy in [
                EscapePolicy::PreferPowerDown,
                EscapePolicy::RandomBit(7),
                EscapePolicy::RoundRobin,
            ] {
                let out = play(d, policy);
                assert!(out.offline_cost <= d as f64);
                // at least half the moves are power-ups
                assert!(
                    out.online_cost >= (out.horizon as f64) / 2.0 - 1.0,
                    "d={d} {policy:?}: {out:?}"
                );
            }
        }
    }

    #[test]
    fn ratio_grows_exponentially() {
        let r4 = play(4, EscapePolicy::RoundRobin).ratio();
        let r8 = play(8, EscapePolicy::RoundRobin).ratio();
        let r12 = play(12, EscapePolicy::RoundRobin).ratio();
        assert!(r8 > 2.0 * r4, "r4={r4} r8={r8}");
        assert!(r12 > 2.0 * r8, "r8={r8} r12={r12}");
    }

    #[test]
    fn deterministic_policies_are_reproducible() {
        let a = play(6, EscapePolicy::RandomBit(3));
        let b = play(6, EscapePolicy::RandomBit(3));
        assert_eq!(a.online_cost, b.online_cost);
        assert_eq!(a.offline_cost, b.offline_cost);
    }

    #[test]
    fn horizon_is_2_pow_d_minus_1() {
        assert_eq!(play(5, EscapePolicy::RoundRobin).horizon, 31);
    }
}

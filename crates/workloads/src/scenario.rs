//! Named end-to-end scenarios: fleet + trace + (optional) price profile
//! glued into a ready-to-run [`Instance`].

use rsz_core::{CostSpec, Instance, ServerType};

use crate::{adversarial, costs, fleet, patterns, stochastic, trace::Trace};

/// Build an instance from a fleet and a trace, capping the trace at the
/// fleet capacity so the result is always feasible.
///
/// # Panics
/// Panics if the resulting instance fails validation (cannot happen for
/// well-formed fleets).
#[must_use]
pub fn instance_from(types: Vec<ServerType>, trace: Trace) -> Instance {
    let cap = fleet::total_capacity(&types);
    Instance::builder()
        .server_types(types)
        .loads(trace.capped(cap).into_values())
        .build()
        .expect("scenario instances are feasible by construction")
}

/// A noisy diurnal week on a CPU+GPU fleet — the "motivating workload"
/// of the baseline-comparison experiment. `slots_per_day` of 24 gives
/// hourly slots.
#[must_use]
pub fn diurnal_cpu_gpu(
    cpus: u32,
    gpus: u32,
    days: usize,
    slots_per_day: usize,
    seed: u64,
) -> Instance {
    let types = fleet::cpu_gpu(cpus, gpus);
    let cap = fleet::total_capacity(&types);
    let base = patterns::work_week(days, slots_per_day, 0.1 * cap, 0.7 * cap, 0.35);
    let noisy = stochastic::with_gaussian_noise(&base, 0.05 * cap, seed);
    instance_from(types, noisy)
}

/// Bursty MMPP traffic on an old+new fleet.
#[must_use]
pub fn bursty_old_new(old: u32, new: u32, len: usize, seed: u64) -> Instance {
    let types = fleet::old_new(old, new);
    let cap = fleet::total_capacity(&types);
    let tr = stochastic::mmpp(len, 0.1 * cap, 0.7 * cap, 0.06, 0.25, 1.0, seed);
    instance_from(types, tr)
}

/// Time-varying electricity prices on a homogeneous fleet: the Section 3
/// setting where Algorithms B/C earn their keep. Returns the instance
/// (cost = energy-proportional model × diurnal price profile).
#[must_use]
pub fn electricity_market(m: u32, len: usize, slots_per_day: usize, seed: u64) -> Instance {
    let price = costs::price_profile_diurnal(len, 0.5, 2.0, slots_per_day);
    let base = costs::energy_proportional(0.5, 1.5, 1.0);
    let ty = ServerType::with_spec("server", m, 4.0, 1.0, CostSpec::scaled(base, price));
    let cap = f64::from(m);
    let tr = stochastic::with_gaussian_noise(
        &patterns::diurnal(len, 0.15 * cap, 0.6 * cap, slots_per_day, 0.3),
        0.04 * cap,
        seed,
    );
    Instance::builder()
        .server_types(vec![ty])
        .loads(tr.capped(cap).into_values())
        .build()
        .expect("electricity scenario is feasible by construction")
}

/// Adversarial duty-cycle probe on a small scaling family — the workload
/// used when searching for worst-case competitive ratios.
#[must_use]
pub fn adversarial_probe(d: usize, len: usize, seed: u64) -> Instance {
    let types = fleet::scaling_family(d, 2);
    let cap = fleet::total_capacity(&types);
    // Mix a ski-rental probe with jitter so both timers and trackers hurt.
    let probe = adversarial::ski_rental_probe(len, 0.8 * cap, 3);
    let noise = adversarial::jitter(len, 0.3 * cap, 0.4, seed);
    instance_from(types, probe.plus(&noise))
}

/// Data-center expansion: the fleet grows mid-horizon (time-varying
/// `m_{t,j}`, Section 4.3) while load ramps up.
#[must_use]
pub fn expansion(len: usize) -> Instance {
    let types = fleet::old_new(4, 6);
    // Old fleet fixed at 4; new fleet grows 0 → 6 in two waves.
    let counts: Vec<Vec<u32>> = (0..len)
        .map(|t| {
            let new = if t < len / 3 {
                0
            } else if t < 2 * len / 3 {
                3
            } else {
                6
            };
            vec![4, new]
        })
        .collect();
    let caps: Vec<f64> =
        counts.iter().map(|c| 1.0 * f64::from(c[0]) + 2.0 * f64::from(c[1])).collect();
    let ramp = patterns::ramp(len, 1.0, caps.last().copied().unwrap_or(4.0) * 0.9);
    let loads: Vec<f64> = ramp.values().iter().zip(&caps).map(|(&l, &c)| l.min(c)).collect();
    Instance::builder()
        .server_types(types)
        .loads(loads)
        .counts_over_time(counts)
        .build()
        .expect("expansion scenario is feasible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_validate() {
        assert_eq!(diurnal_cpu_gpu(6, 2, 2, 12, 1).horizon(), 24);
        assert_eq!(bursty_old_new(4, 4, 30, 2).horizon(), 30);
        assert_eq!(electricity_market(6, 48, 24, 3).horizon(), 48);
        assert_eq!(adversarial_probe(2, 20, 4).num_types(), 2);
        let e = expansion(30);
        assert!(e.has_time_varying_counts());
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let a = diurnal_cpu_gpu(6, 2, 2, 12, 42);
        let b = diurnal_cpu_gpu(6, 2, 2, 12, 42);
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn electricity_market_has_time_dependent_costs() {
        let inst = electricity_market(6, 48, 24, 3);
        assert!(!inst.is_time_independent());
        assert!(inst.idle_cost(0, 0) != inst.idle_cost(12, 0));
    }

    #[test]
    fn expansion_counts_grow() {
        let e = expansion(30);
        assert_eq!(e.server_count(0, 1), 0);
        assert_eq!(e.server_count(29, 1), 6);
    }
}

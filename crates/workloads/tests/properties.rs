//! Property-based tests for workload generation: sanity of traces,
//! determinism under seeds, feasibility of scenarios, and the chasing
//! game's structural guarantees.

use proptest::prelude::*;
use rsz_workloads::chasing::{play, EscapePolicy};
use rsz_workloads::{adversarial, patterns, scenario, stochastic, Trace};

proptest! {
    /// Every generator produces finite, non-negative values of the
    /// requested length.
    #[test]
    fn generators_produce_sane_traces(len in 1usize..128, seed in 0u64..1_000) {
        let traces: Vec<Trace> = vec![
            patterns::constant(len, 2.0),
            patterns::diurnal(len, 1.0, 3.0, 24, 0.3),
            patterns::ramp(len, 0.0, 5.0),
            patterns::square_wave(len, 4.0, 1.0, 3, 2),
            stochastic::poisson(len, 3.0, 0.5, seed),
            stochastic::mmpp(len, 1.0, 8.0, 0.1, 0.3, 1.0, seed),
            stochastic::random_walk(len, 2.0, 1.0, 6.0, seed),
            stochastic::spiky(len, 1.0, 5.0, 0.2, seed),
            adversarial::ski_rental_probe(len, 3.0, 2),
            adversarial::boundary_sawtooth(len, 1.0, 4.0, 1, 3, seed),
            adversarial::staircase(len, 1.0, 3, 2),
            adversarial::jitter(len, 5.0, 0.3, seed),
        ];
        for t in traces {
            prop_assert_eq!(t.len(), len);
            prop_assert!(t.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    /// Seeded generators are reproducible.
    #[test]
    fn generators_deterministic(len in 1usize..64, seed in 0u64..1_000) {
        prop_assert_eq!(
            stochastic::mmpp(len, 1.0, 5.0, 0.1, 0.2, 1.0, seed),
            stochastic::mmpp(len, 1.0, 5.0, 0.1, 0.2, 1.0, seed)
        );
        prop_assert_eq!(
            adversarial::jitter(len, 3.0, 0.5, seed),
            adversarial::jitter(len, 3.0, 0.5, seed)
        );
    }

    /// Shaping combinators respect their contracts.
    #[test]
    fn shaping_contracts(len in 1usize..64, seed in 0u64..500, cap in 0.1..10.0_f64) {
        let t = stochastic::spiky(len, 1.0, 9.0, 0.4, seed).capped(cap);
        prop_assert!(t.peak() <= cap + 1e-12);
        let n = stochastic::spiky(len, 1.0, 9.0, 0.4, seed).normalized_to_peak(cap);
        prop_assert!((n.peak() - cap).abs() < 1e-9);
        let s = patterns::constant(len, 1.0).scaled(cap);
        prop_assert!((s.mean() - cap).abs() < 1e-9);
    }

    /// All named scenarios build valid (feasible) instances for a range
    /// of parameters.
    #[test]
    fn scenarios_always_feasible(seed in 0u64..200) {
        let instances = vec![
            scenario::diurnal_cpu_gpu(4, 2, 2, 8, seed),
            scenario::bursty_old_new(3, 3, 20, seed),
            scenario::electricity_market(5, 24, 12, seed),
            scenario::adversarial_probe(2, 16, seed),
            scenario::expansion(18),
        ];
        for inst in instances {
            // builder already validates; double-check loads vs capacity
            for t in 0..inst.horizon() {
                prop_assert!(inst.load(t) <= inst.max_capacity_at(t) + 1e-9);
            }
        }
    }

    /// Chasing game: the offline player's refuge always costs ≤ d and
    /// the online player pays at least one power-up per two moves.
    #[test]
    fn chasing_structure(d in 1usize..10, seed in 0u64..100) {
        for policy in [
            EscapePolicy::PreferPowerDown,
            EscapePolicy::RandomBit(seed),
            EscapePolicy::RoundRobin,
        ] {
            let out = play(d, policy);
            prop_assert_eq!(out.horizon, (1usize << d) - 1);
            prop_assert!(out.offline_cost <= d as f64);
            prop_assert!(out.online_cost >= (out.horizon as f64 - d as f64) / 2.0);
        }
    }
}

//! Exact greedy dispatch for affine (constant/linear) cost functions.
//!
//! When every arm's marginal cost is a constant `r_j` (constant costs have
//! `r_j = 0`, affine costs `r_j = scale·rate_j`), the optimal allocation is
//! a water-filling by rate: sort arms by `r_j` ascending and fill each to
//! capacity until the volume is exhausted. Idle costs `x_j·f_j(0)` are paid
//! regardless of the allocation and added at the end.

use crate::arms::Arm;
use crate::solution::DispatchSolution;

/// Solve the dispatch problem assuming [`Arm::is_affine`] for every arm
/// and `0 < lambda ≤ Σ cap_j`.
#[must_use]
pub fn solve(arms: &[Arm<'_>], lambda: f64) -> DispatchSolution {
    debug_assert!(arms.iter().all(Arm::is_affine));
    // Order arm indices by marginal rate (cheapest first).
    let mut order: Vec<usize> = (0..arms.len()).collect();
    order.sort_by(|&a, &b| {
        arms[a].affine_rate().partial_cmp(&arms[b].affine_rate()).expect("rates are finite")
    });

    let mut volumes = vec![0.0; arms.len()];
    let mut remaining = lambda;
    let mut cost: f64 = arms.iter().map(Arm::idle_total).sum();
    for &i in &order {
        if remaining <= 0.0 {
            break;
        }
        let take = remaining.min(arms[i].cap());
        volumes[i] = take;
        cost += take * arms[i].affine_rate();
        remaining -= take;
    }
    if remaining > 1e-9 * lambda.max(1.0) {
        // Caller guarantees feasibility; guard anyway.
        return DispatchSolution::infeasible(arms.len());
    }
    DispatchSolution::new(cost, volumes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::collect;
    use rsz_core::{CostModel, Instance, ServerType};

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("cheap", 2, 1.0, 2.0, CostModel::linear(1.0, 1.0)))
            .server_type(ServerType::new("pricey", 2, 1.0, 2.0, CostModel::linear(0.5, 4.0)))
            .server_type(ServerType::new("free", 1, 1.0, 1.0, CostModel::constant(2.0)))
            .loads(vec![5.0])
            .build()
            .unwrap()
    }

    #[test]
    fn fills_cheapest_rate_first() {
        let inst = instance();
        let arms = collect(&inst, 0, &[2, 2, 1]);
        let sol = solve(&arms, 5.0);
        // rates: cheap=1, pricey=4, free(constant)=0.
        // Fill free first (cap 1), then cheap (cap 4), then pricey 0 left... 5-1-4=0
        assert_eq!(sol.volumes, vec![4.0, 0.0, 1.0]);
        // idle: 2·1 + 2·0.5 + 1·2 = 5 ; load: 4·1 + 0 + 1·0 = 4
        assert!((sol.cost - 9.0).abs() < 1e-12);
    }

    #[test]
    fn spills_to_expensive_arm_when_needed() {
        let inst = instance();
        let arms = collect(&inst, 0, &[2, 2, 0]);
        let sol = solve(&arms, 5.0);
        assert_eq!(sol.volumes, vec![4.0, 1.0]);
        // idle 2+1=3, load 4·1 + 1·4 = 8
        assert!((sol.cost - 11.0).abs() < 1e-12);
    }

    #[test]
    fn exact_capacity_boundary() {
        let inst = instance();
        let arms = collect(&inst, 0, &[2, 2, 1]);
        let sol = solve(&arms, 9.0); // = total capacity
        assert!(sol.is_feasible());
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 9.0).abs() < 1e-12);
    }
}

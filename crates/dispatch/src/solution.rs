//! Dispatch solver output.

/// Result of a dispatch solve: the optimal operating cost and the volume
/// routed to each *arm* (types with zero active servers are not arms; use
/// [`DispatchSolution::volumes_by_type`] to expand back to `d` entries).
#[derive(Clone, Debug, PartialEq)]
pub struct DispatchSolution {
    /// Optimal operating cost `g_t(x)`; `f64::INFINITY` when infeasible.
    pub cost: f64,
    /// Volume `y_j` routed to each arm, aligned with the arm list.
    pub volumes: Vec<f64>,
}

impl DispatchSolution {
    /// A feasible solution.
    #[must_use]
    pub fn new(cost: f64, volumes: Vec<f64>) -> Self {
        Self { cost, volumes }
    }

    /// The infeasible solution (capacity insufficient for the volume).
    #[must_use]
    pub fn infeasible(num_arms: usize) -> Self {
        Self { cost: f64::INFINITY, volumes: vec![0.0; num_arms] }
    }

    /// `true` if the configuration could serve the load.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.cost.is_finite()
    }

    /// Expand arm volumes back to a `d`-length per-type vector.
    #[must_use]
    pub fn volumes_by_type(&self, arms: &[crate::Arm<'_>], d: usize) -> Vec<f64> {
        let mut out = vec![0.0; d];
        for (arm, &y) in arms.iter().zip(&self.volumes) {
            out[arm.type_index] = y;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_flag() {
        assert!(DispatchSolution::new(1.0, vec![]).is_feasible());
        assert!(!DispatchSolution::infeasible(2).is_feasible());
    }
}

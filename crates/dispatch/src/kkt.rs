//! Marginal-cost equalization for general convex costs.
//!
//! The KKT conditions of the separable problem say an allocation `y` is
//! optimal iff there is a price `ν` with
//!
//! * `Φ_j'(y_j) = ν` wherever `0 < y_j < cap_j`,
//! * `Φ_j'(0) ≥ ν` wherever `y_j = 0`,
//! * `Φ_j'(cap_j) ≤ ν` wherever `y_j = cap_j`.
//!
//! Define `y_j(ν) = sup { y ≤ cap_j : Φ_j'(y) ≤ ν }` (computed by
//! [`crate::Arm::volume_at_price`]). The total `Y(ν) = Σ_j y_j(ν)` is
//! non-decreasing, so we bisect `ν` until `Y(ν) = λ`.
//!
//! `Y` can jump at prices where some `Φ_j'` is flat (piecewise-linear
//! costs): after the bisection we blend the allocations just below and at
//! the final price so the volume constraint holds exactly. All arms
//! touched by the blend have the same marginal cost, so the blend does not
//! change optimality.

use crate::arms::Arm;
use crate::solution::DispatchSolution;

/// Solve the dispatch problem for arbitrary convex arms with
/// `0 < lambda ≤ Σ cap_j`.
#[must_use]
pub fn solve(arms: &[Arm<'_>], lambda: f64, tol: f64, max_iter: usize) -> DispatchSolution {
    // Price bracket: at nu_lo no volume is placed, at nu_hi everything is.
    let mut nu_lo = -1.0_f64;
    let mut nu_hi = 1.0_f64;
    {
        // Grow nu_hi until all capacity is willing to run.
        let mut guard = 0;
        while total_volume(arms, nu_hi, tol, max_iter) < lambda && guard < 128 {
            nu_hi *= 2.0;
            guard += 1;
        }
    }

    for _ in 0..max_iter {
        let mid = 0.5 * (nu_lo + nu_hi);
        if total_volume(arms, mid, tol, max_iter) >= lambda {
            nu_hi = mid;
        } else {
            nu_lo = mid;
        }
        if nu_hi - nu_lo <= tol * nu_hi.abs().max(1.0) {
            break;
        }
    }

    // Allocations just below the critical price and at it.
    let y_hi: Vec<f64> = arms.iter().map(|a| a.volume_at_price(nu_hi, tol, max_iter)).collect();
    let y_lo: Vec<f64> = arms.iter().map(|a| a.volume_at_price(nu_lo, tol, max_iter)).collect();
    let sum_hi: f64 = y_hi.iter().sum();
    let sum_lo: f64 = y_lo.iter().sum();

    let volumes: Vec<f64> = if sum_hi - sum_lo > 1e-15 {
        let theta = ((lambda - sum_lo) / (sum_hi - sum_lo)).clamp(0.0, 1.0);
        y_lo.iter().zip(&y_hi).map(|(&lo, &hi)| lo + theta * (hi - lo)).collect()
    } else if sum_hi > 0.0 {
        // Continuous case: rescale the tiny residual mismatch away.
        let scale = lambda / sum_hi;
        y_hi.iter().map(|&y| y * scale).collect()
    } else {
        y_hi
    };

    // Clamp and compute the final cost from the allocation itself.
    let mut vols = volumes;
    for (v, a) in vols.iter_mut().zip(arms) {
        *v = v.clamp(0.0, a.cap());
    }
    distribute_residual(&mut vols, arms, lambda);
    let cost = vols.iter().zip(arms).map(|(&y, a)| a.phi(y)).sum();
    DispatchSolution::new(cost, vols)
}

fn total_volume(arms: &[Arm<'_>], nu: f64, tol: f64, max_iter: usize) -> f64 {
    arms.iter().map(|a| a.volume_at_price(nu, tol, max_iter)).sum()
}

/// Push any residual `lambda − Σ y` (numerical leftovers) onto arms with
/// spare capacity so the volume constraint holds to machine precision.
fn distribute_residual(vols: &mut [f64], arms: &[Arm<'_>], lambda: f64) {
    let mut residual = lambda - vols.iter().sum::<f64>();
    if residual.abs() <= 1e-12 * lambda.max(1.0) {
        return;
    }
    if residual > 0.0 {
        for (v, a) in vols.iter_mut().zip(arms) {
            let spare = a.cap() - *v;
            let take = residual.min(spare);
            *v += take;
            residual -= take;
            if residual <= 0.0 {
                break;
            }
        }
    } else {
        for v in vols.iter_mut() {
            let give = (-residual).min(*v);
            *v -= give;
            residual += give;
            if residual >= 0.0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::collect;
    use rsz_core::{CostModel, Instance, ServerType};

    #[test]
    fn equalizes_marginal_costs_on_smooth_arms() {
        // Two quadratic types; optimum has equal marginal cost.
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 10.0, CostModel::power(0.0, 1.0, 2.0)))
            .server_type(ServerType::new("b", 1, 1.0, 10.0, CostModel::power(0.0, 2.0, 2.0)))
            .loads(vec![3.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[2, 1]);
        let sol = solve(&arms, 3.0, 1e-12, 200);
        let m0 = arms[0].phi_deriv(sol.volumes[0]);
        let m1 = arms[1].phi_deriv(sol.volumes[1]);
        assert!((m0 - m1).abs() < 1e-6, "marginals {m0} vs {m1}");
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_capacity_saturation() {
        // Cheap arm saturates; remainder flows to expensive arm.
        let inst = Instance::builder()
            .server_type(ServerType::new("small", 1, 1.0, 1.0, CostModel::power(0.0, 1.0, 2.0)))
            .server_type(ServerType::new("big", 1, 1.0, 10.0, CostModel::power(0.0, 10.0, 2.0)))
            .loads(vec![5.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 5.0, 1e-12, 200);
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 5.0).abs() < 1e-9);
        assert!(sol.volumes[0] <= 1.0 + 1e-9);
        // KKT at saturation: Φ'_small(cap) ≤ ν = Φ'_big(y_big)
        assert!(arms[0].phi_deriv(sol.volumes[0]) <= arms[1].phi_deriv(sol.volumes[1]) + 1e-6);
    }

    #[test]
    fn piecewise_flat_derivative_blend() {
        use rsz_core::cost::PiecewiseLinearCost;
        // Two identical piecewise-linear arms with a long flat-slope
        // segment: many optima; solver must still hit the volume exactly.
        let pwl = CostModel::PiecewiseLinear(PiecewiseLinearCost::new(&[
            (0.0, 1.0),
            (1.0, 2.0),
            (4.0, 5.0), // slope 1 on [1,4]
        ]));
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 4.0, pwl.clone()))
            .server_type(ServerType::new("b", 1, 1.0, 4.0, pwl))
            .loads(vec![5.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 5.0, 1e-12, 200);
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 5.0).abs() < 1e-9, "{:?}", sol.volumes);
        // cost = idle 2 + slope-1 volume (5) = 7 exactly (both slopes 1)
        assert!((sol.cost - 7.0).abs() < 1e-6, "{}", sol.cost);
    }

    #[test]
    fn single_arm_forced_allocation() {
        let inst = Instance::builder()
            .server_type(ServerType::new("only", 3, 1.0, 2.0, CostModel::power(1.0, 2.0, 3.0)))
            .loads(vec![4.5])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[3]);
        let sol = solve(&arms, 4.5, 1e-12, 200);
        assert!((sol.volumes[0] - 4.5).abs() < 1e-9);
        // cost = 3·(1 + 2·(1.5)³)
        let expected = 3.0 * (1.0 + 2.0 * 1.5_f64.powi(3));
        assert!((sol.cost - expected).abs() < 1e-7);
    }
}

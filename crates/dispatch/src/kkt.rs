//! Marginal-cost equalization for general convex costs.
//!
//! The KKT conditions of the separable problem say an allocation `y` is
//! optimal iff there is a price `ν` with
//!
//! * `Φ_j'(y_j) = ν` wherever `0 < y_j < cap_j`,
//! * `Φ_j'(0) ≥ ν` wherever `y_j = 0`,
//! * `Φ_j'(cap_j) ≤ ν` wherever `y_j = cap_j`.
//!
//! Define `y_j(ν) = sup { y ≤ cap_j : Φ_j'(y) ≤ ν }` (computed by
//! [`crate::Arm::volume_at_price`]). The total `Y(ν) = Σ_j y_j(ν)` is
//! non-decreasing, so we bisect `ν` until `Y(ν) = λ`.
//!
//! `Y` can jump at prices where some `Φ_j'` is flat (piecewise-linear
//! costs): after the bisection we blend the allocations just below and at
//! the final price so the volume constraint holds exactly. All arms
//! touched by the blend have the same marginal cost, so the blend does not
//! change optimality.

use crate::arms::Arm;
use crate::solution::DispatchSolution;

/// Doublings of the upper price before the bracket search gives up
/// (`2^128 ≈ 3.4e38` exceeds any physically meaningful marginal cost).
const MAX_BRACKET_DOUBLINGS: usize = 128;

/// Geometric expansions [`solve_warm`] grants a stale hint before giving
/// up and re-bracketing from scratch.
const MAX_WARM_EXPANSIONS: usize = 4;

/// A price bracket `[nu_lo, nu_hi]` around the optimal dispatch price,
/// as left behind by a finished bisection. Carrying it to the *next*
/// configuration of a row sweep lets [`solve_warm`] skip the cold
/// 128-doubling bracket search and most bisection iterations: along a
/// grid row the optimal price moves monotonically and only slightly, so
/// the previous cell's bracket (slightly widened) almost always still
/// contains the new root.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bracket {
    /// Lower end: total willing volume at this price is below `λ`.
    pub nu_lo: f64,
    /// Upper end: total willing volume at this price covers `λ`.
    pub nu_hi: f64,
}

/// Solve the dispatch problem for arbitrary convex arms with
/// `0 < lambda ≤ Σ cap_j`.
#[must_use]
pub fn solve(arms: &[Arm<'_>], lambda: f64, tol: f64, max_iter: usize) -> DispatchSolution {
    solve_warm(arms, lambda, tol, max_iter, None).0
}

/// Fallible [`solve`]: a malformed volume (NaN, infinite, or negative)
/// is rejected up front as [`rsz_core::SolveError::MalformedLambda`]
/// instead of spinning the bracket search on it, and an exhausted
/// bracket whose saturation fallback cannot place the volume surfaces as
/// [`rsz_core::SolveError::BracketExhausted`] instead of an infinite
/// cost the caller has to know to check for.
pub fn try_solve(
    arms: &[Arm<'_>],
    lambda: f64,
    tol: f64,
    max_iter: usize,
) -> Result<DispatchSolution, rsz_core::SolveError> {
    if !lambda.is_finite() || lambda < 0.0 {
        return Err(rsz_core::SolveError::MalformedLambda { t: None, value: lambda });
    }
    let solution = solve(arms, lambda, tol, max_iter);
    if !solution.is_feasible() {
        return Err(rsz_core::SolveError::BracketExhausted {
            lambda,
            iterations: MAX_BRACKET_DOUBLINGS,
        });
    }
    Ok(solution)
}

/// [`solve`] with an optional warm-start bracket from a neighbouring
/// solve (see [`Bracket`]). Returns the solution together with the final
/// bracket to seed the next cell of the sweep (`None` when the run fell
/// back to the saturation path, which leaves no meaningful bracket).
///
/// With `hint: None` this is *exactly* [`solve`] — bit-identical. With a
/// hint, the bisection starts from a different (much tighter) bracket,
/// so the returned cost may differ from the cold solve in the last bits;
/// both land within the bisection tolerance of the true optimum and
/// agree to a relative `1e-9` for the default [`crate::Dispatcher`]
/// tolerances — the parity bound the DP pipeline's tests enforce.
#[must_use]
pub fn solve_warm(
    arms: &[Arm<'_>],
    lambda: f64,
    tol: f64,
    max_iter: usize,
    hint: Option<Bracket>,
) -> (DispatchSolution, Option<Bracket>) {
    let bracket = hint.and_then(|h| rebracket_from_hint(arms, lambda, h, tol, max_iter));
    let (mut nu_lo, mut nu_hi) = match bracket {
        Some(b) => b,
        None => {
            // Cold path. Price bracket: at nu_lo no volume is placed, at
            // nu_hi everything is. Grow nu_hi until all of λ is willing
            // to run. Pathologically steep costs (marginals overflowing
            // past ~3.4e38) can exhaust the doublings; bisecting that
            // *invalid* bracket would converge onto an under-allocated
            // solution, so saturate by marginal cost instead of
            // pretending the bracket holds.
            let nu_lo = -1.0_f64;
            let mut nu_hi = 1.0_f64;
            let mut guard = 0;
            while total_volume(arms, nu_hi, tol, max_iter) < lambda {
                if guard >= MAX_BRACKET_DOUBLINGS {
                    return (saturation_fallback(arms, lambda, nu_hi, tol, max_iter), None);
                }
                nu_hi *= 2.0;
                guard += 1;
            }
            (nu_lo, nu_hi)
        }
    };

    for _ in 0..max_iter {
        let mid = 0.5 * (nu_lo + nu_hi);
        if total_volume(arms, mid, tol, max_iter) >= lambda {
            nu_hi = mid;
        } else {
            nu_lo = mid;
        }
        if nu_hi - nu_lo <= tol * nu_hi.abs().max(1.0) {
            break;
        }
    }
    (finish(arms, lambda, nu_lo, nu_hi, tol, max_iter), Some(Bracket { nu_lo, nu_hi }))
}

/// Validate a hinted bracket against the current arm set, padding it and
/// expanding geometrically a few times if the root drifted just outside.
/// Returns `None` when the hint is a genuine miss (row discontinuity,
/// wildly different arms) — the caller then re-brackets cold.
fn rebracket_from_hint(
    arms: &[Arm<'_>],
    lambda: f64,
    hint: Bracket,
    tol: f64,
    max_iter: usize,
) -> Option<(f64, f64)> {
    let pad = (hint.nu_hi - hint.nu_lo).abs().max(tol * hint.nu_hi.abs().max(1.0));
    let mut lo = hint.nu_lo - pad;
    let mut hi = hint.nu_hi + pad;
    if !(lo.is_finite() && hi.is_finite()) {
        return None;
    }
    let mut expansions = 0;
    // Establish volume(hi) ≥ λ > volume(lo); each failed check slides
    // the bracket one doubled width in the offending direction.
    while total_volume(arms, hi, tol, max_iter) < lambda {
        expansions += 1;
        if expansions > MAX_WARM_EXPANSIONS {
            return None;
        }
        let width = hi - lo;
        lo = hi;
        hi += 2.0 * width;
    }
    while total_volume(arms, lo, tol, max_iter) >= lambda {
        expansions += 1;
        if expansions > MAX_WARM_EXPANSIONS {
            return None;
        }
        let width = hi - lo;
        hi = lo;
        lo -= 2.0 * width;
    }
    Some((lo, hi))
}

/// Turn a converged price bracket into the final allocation and cost.
fn finish(
    arms: &[Arm<'_>],
    lambda: f64,
    nu_lo: f64,
    nu_hi: f64,
    tol: f64,
    max_iter: usize,
) -> DispatchSolution {
    // Allocations just below the critical price and at it.
    let y_hi: Vec<f64> = arms.iter().map(|a| a.volume_at_price(nu_hi, tol, max_iter)).collect();
    let y_lo: Vec<f64> = arms.iter().map(|a| a.volume_at_price(nu_lo, tol, max_iter)).collect();
    let sum_hi: f64 = y_hi.iter().sum();
    let sum_lo: f64 = y_lo.iter().sum();

    let volumes: Vec<f64> = if sum_hi - sum_lo > 1e-15 {
        let theta = ((lambda - sum_lo) / (sum_hi - sum_lo)).clamp(0.0, 1.0);
        y_lo.iter().zip(&y_hi).map(|(&lo, &hi)| lo + theta * (hi - lo)).collect()
    } else if sum_hi > 0.0 {
        // Continuous case: rescale the tiny residual mismatch away.
        let scale = lambda / sum_hi;
        y_hi.iter().map(|&y| y * scale).collect()
    } else {
        y_hi
    };

    // Clamp and compute the final cost from the allocation itself.
    let mut vols = volumes;
    for (v, a) in vols.iter_mut().zip(arms) {
        *v = v.clamp(0.0, a.cap());
    }
    distribute_residual(&mut vols, arms, lambda);
    let cost = vols.iter().zip(arms).map(|(&y, a)| a.phi(y)).sum();
    DispatchSolution::new(cost, vols)
}

fn total_volume(arms: &[Arm<'_>], nu: f64, tol: f64, max_iter: usize) -> f64 {
    arms.iter().map(|a| a.volume_at_price(nu, tol, max_iter)).sum()
}

/// No finite price brackets λ: some arm's marginal cost exceeds every
/// representable price below its capacity. Keep each arm's best-effort
/// volume at the highest price reached, then place the deficit by
/// ascending marginal cost; if even full saturation falls short, report
/// infeasibility instead of an under-allocated "solution".
fn saturation_fallback(
    arms: &[Arm<'_>],
    lambda: f64,
    nu_max: f64,
    tol: f64,
    max_iter: usize,
) -> DispatchSolution {
    let mut vols: Vec<f64> =
        arms.iter().map(|a| a.volume_at_price(nu_max, tol, max_iter).clamp(0.0, a.cap())).collect();
    distribute_residual(&mut vols, arms, lambda);
    let placed: f64 = vols.iter().sum();
    if placed < lambda - 1e-9 * lambda.max(1.0) {
        return DispatchSolution::infeasible(arms.len());
    }
    let cost = vols.iter().zip(arms).map(|(&y, a)| a.phi(y)).sum();
    DispatchSolution::new(cost, vols)
}

/// Chunks the residual distribution moves per marginal-cost re-check; a
/// coarse water-fill, so tied-marginal arms share large residuals
/// instead of the first one absorbing everything.
const RESIDUAL_CHUNKS: f64 = 32.0;

/// Push any residual `lambda − Σ y` (numerical leftovers, or the whole
/// volume in the exhausted-bracket fallback) onto arms with spare
/// capacity so the volume constraint holds to machine precision.
///
/// Volume moves in **marginal-cost order** — the cheapest `Φ'` absorbs
/// first when adding, the most expensive gives back first when removing
/// — so the correction lands where the KKT conditions say the next unit
/// belongs, not on whichever arm happens to be declared first. Marginals
/// are re-evaluated every [`RESIDUAL_CHUNKS`]-th of the residual, so
/// strictly convex arms with (near-)tied marginals split large residuals
/// instead of the first arm saturating at an arbitrarily worse price.
fn distribute_residual(vols: &mut [f64], arms: &[Arm<'_>], lambda: f64) {
    let total = lambda - vols.iter().sum::<f64>();
    if total.abs() <= 1e-12 * lambda.max(1.0) {
        return;
    }
    // Tiny numerical residuals (the KKT hot path) move in one piece —
    // marginals barely change over them; only macroscopic residuals
    // (the bracket-exhaustion fallback) pay for the chunked water-fill.
    let chunk = if total.abs() > 1e-6 * lambda.max(1.0) {
        total.abs() / RESIDUAL_CHUNKS
    } else {
        total.abs()
    };
    // Arms whose remaining headroom is too small to advance `residual`
    // at f64 precision are parked so the loop always terminates.
    let mut parked = vec![false; arms.len()];
    let mut residual = total;
    if residual > 0.0 {
        while residual > 0.0 {
            let next = (0..arms.len())
                .filter(|&i| !parked[i] && arms[i].cap() - vols[i] > 0.0)
                .min_by(|&a, &b| arms[a].phi_deriv(vols[a]).total_cmp(&arms[b].phi_deriv(vols[b])));
            let Some(i) = next else { break };
            let spare = arms[i].cap() - vols[i];
            let take = residual.min(spare).min(chunk);
            if take <= residual * 1e-15 {
                parked[i] = true;
                continue;
            }
            vols[i] += take;
            residual -= take;
        }
    } else {
        while residual < 0.0 {
            let next = (0..arms.len())
                .filter(|&i| !parked[i] && vols[i] > 0.0)
                .max_by(|&a, &b| arms[a].phi_deriv(vols[a]).total_cmp(&arms[b].phi_deriv(vols[b])));
            let Some(i) = next else { break };
            let give = (-residual).min(vols[i]).min(chunk);
            if give <= -residual * 1e-15 {
                parked[i] = true;
                continue;
            }
            vols[i] -= give;
            residual += give;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::collect;
    use rsz_core::{CostModel, Instance, ServerType};

    #[test]
    fn equalizes_marginal_costs_on_smooth_arms() {
        // Two quadratic types; optimum has equal marginal cost.
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 10.0, CostModel::power(0.0, 1.0, 2.0)))
            .server_type(ServerType::new("b", 1, 1.0, 10.0, CostModel::power(0.0, 2.0, 2.0)))
            .loads(vec![3.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[2, 1]);
        let sol = solve(&arms, 3.0, 1e-12, 200);
        let m0 = arms[0].phi_deriv(sol.volumes[0]);
        let m1 = arms[1].phi_deriv(sol.volumes[1]);
        assert!((m0 - m1).abs() < 1e-6, "marginals {m0} vs {m1}");
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_capacity_saturation() {
        // Cheap arm saturates; remainder flows to expensive arm.
        let inst = Instance::builder()
            .server_type(ServerType::new("small", 1, 1.0, 1.0, CostModel::power(0.0, 1.0, 2.0)))
            .server_type(ServerType::new("big", 1, 1.0, 10.0, CostModel::power(0.0, 10.0, 2.0)))
            .loads(vec![5.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 5.0, 1e-12, 200);
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 5.0).abs() < 1e-9);
        assert!(sol.volumes[0] <= 1.0 + 1e-9);
        // KKT at saturation: Φ'_small(cap) ≤ ν = Φ'_big(y_big)
        assert!(arms[0].phi_deriv(sol.volumes[0]) <= arms[1].phi_deriv(sol.volumes[1]) + 1e-6);
    }

    #[test]
    fn piecewise_flat_derivative_blend() {
        use rsz_core::cost::PiecewiseLinearCost;
        // Two identical piecewise-linear arms with a long flat-slope
        // segment: many optima; solver must still hit the volume exactly.
        let pwl = CostModel::PiecewiseLinear(PiecewiseLinearCost::new(&[
            (0.0, 1.0),
            (1.0, 2.0),
            (4.0, 5.0), // slope 1 on [1,4]
        ]));
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 4.0, pwl.clone()))
            .server_type(ServerType::new("b", 1, 1.0, 4.0, pwl))
            .loads(vec![5.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 5.0, 1e-12, 200);
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 5.0).abs() < 1e-9, "{:?}", sol.volumes);
        // cost = idle 2 + slope-1 volume (5) = 7 exactly (both slopes 1)
        assert!((sol.cost - 7.0).abs() < 1e-6, "{}", sol.cost);
    }

    /// A convex cost whose derivative overflows every representable
    /// price long before the capacity: `f(z) = coef·z^8` with `coef`
    /// near `f64::MAX`. No `deriv_inv`, so pricing must bisect.
    #[derive(Debug)]
    struct SteepPower {
        coef: f64,
    }
    impl rsz_core::CostFunction for SteepPower {
        fn eval(&self, z: f64) -> f64 {
            self.coef * z.powi(8)
        }
        fn deriv(&self, z: f64) -> f64 {
            8.0 * self.coef * z.powi(7)
        }
    }

    /// Steep *linear* custom cost: `f(z) = rate·z` with an astronomic
    /// rate and no `deriv_inv`, so `Φ'(0)` already exceeds any bracket.
    #[derive(Debug)]
    struct SteepLinear {
        rate: f64,
    }
    impl rsz_core::CostFunction for SteepLinear {
        fn eval(&self, z: f64) -> f64 {
            self.rate * z
        }
        fn deriv(&self, _z: f64) -> f64 {
            self.rate
        }
    }

    #[test]
    fn exhausted_bracket_falls_back_to_saturation() {
        // Regression: the 128-doubling price bracket tops out at 2^128,
        // far below this cost's marginals; the solver used to bisect the
        // invalid bracket and silently return an under-allocated
        // solution. Now it saturates by marginal cost instead.
        use std::sync::Arc;
        let inst = Instance::builder()
            .server_type(ServerType::new(
                "steep",
                1,
                1.0,
                1.0,
                CostModel::Custom(Arc::new(SteepPower { coef: 1e300 })),
            ))
            .loads(vec![0.9])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1]);
        let sol = solve(&arms, 0.9, 1e-10, 200);
        assert!(sol.is_feasible());
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 0.9).abs() < 1e-9, "under-allocated: {:?}", sol.volumes);
        let expected = arms[0].phi(0.9);
        assert!(
            (sol.cost - expected).abs() <= 1e-9 * expected,
            "cost {} vs forced-allocation cost {expected}",
            sol.cost
        );
        // Demanding more than the capacity must come back infeasible,
        // not as a quietly short allocation.
        assert!(!solve(&arms, 1.5, 1e-10, 200).is_feasible());
    }

    #[test]
    fn exhausted_bracket_residual_prefers_cheap_arm() {
        // Two bracket-busting arms, the *expensive* one declared first.
        // The old declaration-order residual push landed all volume on
        // it; marginal-cost order must pick the 1e20× cheaper arm, in
        // agreement with the brute-force oracle.
        use std::sync::Arc;
        let inst = Instance::builder()
            .server_type(ServerType::new(
                "pricey",
                1,
                1.0,
                2.0,
                CostModel::Custom(Arc::new(SteepLinear { rate: 1e300 })),
            ))
            .server_type(ServerType::new(
                "cheap",
                1,
                1.0,
                2.0,
                CostModel::Custom(Arc::new(SteepLinear { rate: 1e280 })),
            ))
            .loads(vec![1.5])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 1.5, 1e-10, 200);
        assert!(sol.is_feasible());
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 1.5).abs() < 1e-9, "{:?}", sol.volumes);
        assert!(sol.volumes[0] < 1e-9, "volume on the 1e20x pricier arm: {:?}", sol.volumes);
        let oracle = crate::brute::solve(&arms, 1.5, 600);
        assert!(
            sol.cost <= oracle.cost * (1.0 + 1e-9),
            "kkt {} worse than brute {}",
            sol.cost,
            oracle.cost
        );
    }

    #[test]
    fn exhausted_bracket_splits_tied_marginal_arms() {
        // Two *identical* bracket-busting arms: a single greedy pass
        // would park the whole volume on the first one (2^7 times the
        // optimal cost); the chunked water-fill must split near-evenly.
        use std::sync::Arc;
        let inst = Instance::builder()
            .server_type(ServerType::new(
                "a",
                1,
                1.0,
                1.0,
                CostModel::Custom(Arc::new(SteepPower { coef: 1e300 })),
            ))
            .server_type(ServerType::new(
                "b",
                1,
                1.0,
                1.0,
                CostModel::Custom(Arc::new(SteepPower { coef: 1e300 })),
            ))
            .loads(vec![1.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        let sol = solve(&arms, 1.0, 1e-10, 200);
        assert!(sol.is_feasible());
        let total: f64 = sol.volumes.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{:?}", sol.volumes);
        for &y in &sol.volumes {
            assert!((y - 0.5).abs() <= 0.04, "lopsided split {:?}", sol.volumes);
        }
        let oracle = crate::brute::solve(&arms, 1.0, 600);
        assert!(
            sol.cost <= oracle.cost * 1.2,
            "kkt {} far above brute {} (even split)",
            sol.cost,
            oracle.cost
        );
    }

    #[test]
    fn residual_distribution_follows_marginal_cost_order() {
        // Direct regression on the residual pass: the pricier arm is
        // declared first, so declaration order would mis-place volume.
        let inst = Instance::builder()
            .server_type(ServerType::new("pricey", 1, 1.0, 2.0, CostModel::power(0.0, 5.0, 2.0)))
            .server_type(ServerType::new("cheap", 1, 1.0, 2.0, CostModel::power(0.0, 1.0, 2.0)))
            .loads(vec![1.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1, 1]);
        // Positive residual: both arms idle at equal volume, cheap arm
        // has the lower marginal there → it takes the whole top-up.
        let mut vols = vec![0.5, 0.5];
        distribute_residual(&mut vols, &arms, 2.0);
        assert!((vols[0] - 0.5).abs() < 1e-12, "{vols:?}");
        assert!((vols[1] - 1.5).abs() < 1e-12, "{vols:?}");
        // Negative residual: volume is given back by the *most*
        // expensive marginal first.
        let mut vols = vec![1.0, 1.0];
        distribute_residual(&mut vols, &arms, 1.2);
        assert!((vols[0] - 0.2).abs() < 1e-12, "{vols:?}");
        assert!((vols[1] - 1.0).abs() < 1e-12, "{vols:?}");
        // Cross-check the positive case against the dense oracle: with
        // marginals 10y vs 2y the true optimum at λ=2 is y=(1/3, 5/3);
        // the single greedy pass lands within the brute grid's accuracy
        // of that but must never *beat* it by more than the grid gap.
        let greedy_cost: f64 =
            [0.5, 1.5].iter().zip(&arms).map(|(&y, a): (&f64, _)| a.phi(y)).sum();
        let oracle = crate::brute::solve(&arms, 2.0, 2000);
        assert!(oracle.cost <= greedy_cost + 1e-9);
    }

    #[test]
    fn single_arm_forced_allocation() {
        let inst = Instance::builder()
            .server_type(ServerType::new("only", 3, 1.0, 2.0, CostModel::power(1.0, 2.0, 3.0)))
            .loads(vec![4.5])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[3]);
        let sol = solve(&arms, 4.5, 1e-12, 200);
        assert!((sol.volumes[0] - 4.5).abs() < 1e-9);
        // cost = 3·(1 + 2·(1.5)³)
        let expected = 3.0 * (1.0 + 2.0 * 1.5_f64.powi(3));
        assert!((sol.cost - expected).abs() < 1e-7);
    }
}

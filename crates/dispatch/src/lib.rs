//! # rsz-dispatch — solving the per-slot operating cost `g_t(x)`
//!
//! Equation (1) of the paper defines the operating cost of a configuration
//! `x` as a minimization over all ways to split the arriving volume `λ_t`
//! across server types:
//!
//! ```text
//! g_t(x) = min_{z ∈ Z} Σ_j  x_j · f_{t,j}(λ_t z_j / x_j),   Z = simplex
//! ```
//!
//! By the paper's Lemma 2 (Jensen), load assigned to a type is optimally
//! spread evenly over that type's active servers, so the problem reduces to
//! a **separable convex resource-allocation problem** over absolute volumes
//! `y_j = λ_t z_j`:
//!
//! ```text
//! min Σ_j Φ_j(y_j)   s.t.  Σ_j y_j = λ_t,  0 ≤ y_j ≤ x_j·z^max_j,
//! Φ_j(y) = x_j · f_{t,j}(y / x_j)
//! ```
//!
//! Three solvers are provided:
//!
//! * [`greedy`] — exact closed form when every cost is constant or affine
//!   (fill the cheapest marginal rate first). This covers the
//!   load-independent special case of the paper and the classic
//!   energy-proportional model, and is the hot path inside the DP.
//! * [`kkt`] — marginal-cost equalization (dual bisection on the KKT
//!   multiplier) for arbitrary convex costs, with closed-form inner steps
//!   whenever the model provides [`rsz_core::CostFunction::deriv_inv`].
//! * [`brute`] — a dense grid-search oracle, used by the test suite to
//!   cross-check the other two.
//!
//! [`Dispatcher`] picks the right solver per call and implements
//! [`rsz_core::GtOracle`], which is how the offline DP and the online
//! algorithms price configurations. [`CachedDispatcher`] wraps it with a
//! memoization layer ([`cache`]) that shares `g(λ, x)` solves across
//! slots, sub-slots and runs, and [`SlotDispatcher`] is the
//! buffer-reusing per-slot context DP workers solve through.

#![warn(missing_docs)]

pub mod arms;
pub mod brute;
pub mod cache;
pub mod greedy;
pub mod kkt;
pub mod solution;

pub use arms::{Arm, SlotArms};
pub use cache::{CacheStats, CachedDispatcher};
pub use solution::DispatchSolution;

use rsz_core::{GtOracle, Instance, SlotEval};

/// Facade solver for `g_t(x)`: validates feasibility, picks the fastest
/// applicable algorithm and returns costs/allocations.
///
/// Cheap to construct and `Copy`; share freely across threads.
#[derive(Clone, Copy, Debug)]
pub struct Dispatcher {
    /// Relative tolerance of the dual bisection (on the multiplier and on
    /// volumes). The returned cost is accurate to roughly this order.
    pub tol: f64,
    /// Iteration cap for each bisection loop.
    pub max_iter: usize,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self { tol: 1e-10, max_iter: 200 }
    }
}

impl Dispatcher {
    /// A dispatcher with default tolerances.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve the dispatch problem for configuration `x` at slot `t`,
    /// returning the optimal volumes as well as the cost.
    #[must_use]
    pub fn solve(&self, instance: &Instance, t: usize, x: &[u32]) -> DispatchSolution {
        let arms = arms::collect(instance, t, x);
        self.solve_arms(&arms, instance.load(t))
    }

    /// Solve with explicit arms and volume — the low-level entry point.
    #[must_use]
    pub fn solve_arms(&self, arms: &[Arm<'_>], lambda: f64) -> DispatchSolution {
        self.solve_arms_hinted(arms, lambda, &mut None)
    }

    /// [`Dispatcher::solve_arms`] threading an optional KKT warm-start
    /// bracket (see [`kkt::solve_warm`]): the single preamble shared by
    /// every dispatch entry point — feasibility slack, λ clamp,
    /// idle-only and affine fast paths — so cold and warm callers cannot
    /// drift apart. With `*hint == None` the computation is
    /// bit-identical to the cold path; the hint is updated in place so
    /// row sweeps can chain it cell to cell.
    fn solve_arms_hinted(
        &self,
        arms: &[Arm<'_>],
        lambda: f64,
        hint: &mut Option<kkt::Bracket>,
    ) -> DispatchSolution {
        debug_assert!(lambda >= 0.0);
        let total_cap: f64 = arms.iter().map(Arm::cap).sum();
        if lambda > total_cap * (1.0 + 1e-12) + 1e-12 {
            return DispatchSolution::infeasible(arms.len());
        }
        let lambda = lambda.min(total_cap);
        if lambda == 0.0 {
            // Idle-only: every active server still pays f(0).
            let cost = arms.iter().map(Arm::idle_total).sum();
            return DispatchSolution::new(cost, vec![0.0; arms.len()]);
        }
        if arms.iter().all(Arm::is_affine) {
            greedy::solve(arms, lambda)
        } else {
            let (sol, bracket) = kkt::solve_warm(arms, lambda, self.tol, self.max_iter, *hint);
            *hint = bracket;
            sol
        }
    }

    /// The optimal cost only (no allocation vector) — what the DP needs.
    #[must_use]
    pub fn g_value(
        &self,
        instance: &Instance,
        t: usize,
        x: &[u32],
        lambda: f64,
        scale: f64,
    ) -> f64 {
        let arms = arms::collect(instance, t, x);
        Self::value_of(self, &arms, lambda, scale)
    }

    /// Cost of a pre-assembled arm list — shared by [`Dispatcher::g_value`]
    /// and the buffer-reusing [`SlotDispatcher`] so both produce
    /// bit-identical results.
    fn value_of(&self, arms: &[Arm<'_>], lambda: f64, scale: f64) -> f64 {
        self.value_of_warm(arms, lambda, scale, &mut None)
    }

    /// [`Dispatcher::value_of`] threading a warm-start bracket through
    /// the KKT path via [`Dispatcher::solve_arms_hinted`].
    fn value_of_warm(
        &self,
        arms: &[Arm<'_>],
        lambda: f64,
        scale: f64,
        hint: &mut Option<kkt::Bracket>,
    ) -> f64 {
        if scale == 0.0 {
            // Zero-scaled slots cost nothing but must still be feasible.
            let total_cap: f64 = arms.iter().map(Arm::cap).sum();
            return if lambda > total_cap * (1.0 + 1e-12) + 1e-12 { f64::INFINITY } else { 0.0 };
        }
        // A uniform positive scale does not change the argmin, so solve the
        // unscaled problem and scale the optimum.
        scale * self.solve_arms_hinted(arms, lambda, hint).cost
    }

    /// Open a buffer-reusing evaluator for slot `t` of `instance`: the
    /// slot's arm templates are captured once and every
    /// [`SlotDispatcher::eval_config`] assembles its arm list into the
    /// same scratch buffer (no per-configuration allocation).
    #[must_use]
    pub fn slot_dispatcher<'a>(
        &self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> SlotDispatcher<'a> {
        let arms = SlotArms::new(instance, t);
        let scratch = Vec::with_capacity(arms.num_types());
        SlotDispatcher {
            dispatcher: *self,
            arms,
            lambda,
            cost_scale,
            scratch,
            warm: false,
            hint: None,
        }
    }

    /// A [`Dispatcher::slot_dispatcher`] in **sweep** mode: evaluations
    /// are expected to walk the grid in layout order, and the KKT
    /// bisection warm-starts each cell from the previous cell's final
    /// price bracket (cold fallback on hint miss). Values agree with the
    /// cold path to a relative `1e-9` (see [`kkt::solve_warm`]).
    #[must_use]
    pub fn sweep_dispatcher<'a>(
        &self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> SlotDispatcher<'a> {
        let mut slot = self.slot_dispatcher(instance, t, lambda, cost_scale);
        slot.warm = true;
        slot
    }
}

/// A [`Dispatcher`] scoped to one `(slot, λ, cost_scale)` triple: prices
/// many configurations of the same slot through one reused arm buffer.
/// Created by [`Dispatcher::slot_dispatcher`]; this is what DP workers
/// hold per thread (it is deliberately not `Sync`).
#[derive(Clone, Debug)]
pub struct SlotDispatcher<'a> {
    dispatcher: Dispatcher,
    arms: SlotArms<'a>,
    lambda: f64,
    cost_scale: f64,
    scratch: Vec<Arm<'a>>,
    /// Sweep mode: carry the previous cell's KKT bracket as a warm start.
    warm: bool,
    hint: Option<kkt::Bracket>,
}

impl SlotDispatcher<'_> {
    /// `g` of configuration `x` at this slot — bit-identical to
    /// [`Dispatcher::g_value`] on the same inputs when constructed via
    /// [`Dispatcher::slot_dispatcher`]; within a relative `1e-9` of it in
    /// sweep mode ([`Dispatcher::sweep_dispatcher`]).
    pub fn eval_config(&mut self, x: &[u32]) -> f64 {
        self.arms.fill_into(x, &mut self.scratch);
        if self.warm {
            self.dispatcher.value_of_warm(
                &self.scratch,
                self.lambda,
                self.cost_scale,
                &mut self.hint,
            )
        } else {
            self.dispatcher.value_of(&self.scratch, self.lambda, self.cost_scale)
        }
    }
}

impl SlotEval for SlotDispatcher<'_> {
    fn eval(&mut self, x: &[u32]) -> f64 {
        self.eval_config(x)
    }
}

impl GtOracle for Dispatcher {
    fn g(&self, instance: &Instance, t: usize, x: &[u32]) -> f64 {
        self.g_value(instance, t, x, instance.load(t), 1.0)
    }

    fn g_scaled(
        &self,
        instance: &Instance,
        t: usize,
        x: &[u32],
        lambda: f64,
        cost_scale: f64,
    ) -> f64 {
        self.g_value(instance, t, x, lambda, cost_scale)
    }

    fn slot_eval<'a>(
        &'a self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> Box<dyn SlotEval + 'a> {
        Box::new(self.slot_dispatcher(instance, t, lambda, cost_scale))
    }

    fn slot_sweep<'a>(
        &'a self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> Box<dyn SlotEval + 'a> {
        Box::new(self.sweep_dispatcher(instance, t, lambda, cost_scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::{CostModel, ServerType};

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("lin", 4, 1.0, 1.0, CostModel::linear(1.0, 2.0)))
            .server_type(ServerType::new("pow", 2, 1.0, 4.0, CostModel::power(2.0, 1.0, 2.0)))
            .loads(vec![0.0, 3.0, 12.0])
            .build()
            .unwrap()
    }

    #[test]
    fn zero_load_charges_idle_only() {
        let inst = instance();
        let d = Dispatcher::new();
        let sol = d.solve(&inst, 0, &[2, 1]);
        assert!((sol.cost - (2.0 * 1.0 + 1.0 * 2.0)).abs() < 1e-9);
        assert_eq!(sol.volumes, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_config_zero_load_is_free() {
        let inst = instance();
        let d = Dispatcher::new();
        assert_eq!(d.g(&inst, 0, &[0, 0]), 0.0);
    }

    #[test]
    fn insufficient_capacity_is_infinite() {
        let inst = instance();
        let d = Dispatcher::new();
        // capacity 4·1 + 1·4 = 8 < 12
        assert!(d.g(&inst, 2, &[4, 1]).is_infinite());
        assert!(d.g(&inst, 2, &[4, 0]).is_infinite());
        assert!(d.g(&inst, 2, &[0, 0]).is_infinite());
    }

    #[test]
    fn full_capacity_is_feasible() {
        let inst = instance();
        let d = Dispatcher::new();
        // exactly 12 = 4·1 + 2·4
        let g = d.g(&inst, 2, &[4, 2]);
        assert!(g.is_finite());
    }

    #[test]
    fn slot_dispatcher_matches_g_value_bitwise() {
        let inst = instance();
        let d = Dispatcher::new();
        for (t, lambda, scale) in [(0, 0.0, 1.0), (1, 3.0, 1.0), (1, 3.0, 0.25), (2, 12.0, 0.0)] {
            let mut slot = d.slot_dispatcher(&inst, t, lambda, scale);
            for x in [[0u32, 0], [4, 0], [2, 1], [4, 2]] {
                let fast = slot.eval_config(&x);
                let slow = d.g_value(&inst, t, &x, lambda, scale);
                assert_eq!(fast.to_bits(), slow.to_bits(), "t={t} λ={lambda} s={scale} x={x:?}");
            }
        }
    }

    #[test]
    fn scaled_is_scale_times_unscaled() {
        let inst = instance();
        let d = Dispatcher::new();
        let g1 = d.g_value(&inst, 1, &[2, 1], 3.0, 1.0);
        let g2 = d.g_value(&inst, 1, &[2, 1], 3.0, 0.25);
        assert!((g2 - 0.25 * g1).abs() < 1e-9);
        assert_eq!(d.g_value(&inst, 1, &[2, 1], 3.0, 0.0), 0.0);
        assert!(d.g_value(&inst, 2, &[0, 0], 12.0, 0.0).is_infinite());
    }
}

//! Dense grid-search dispatch oracle — test reference only.
//!
//! Enumerates allocations on a regular grid over the capped simplex and
//! returns the best one found. Exponential in the number of arms; meant
//! for cross-checking [`crate::greedy`] and [`crate::kkt`] on tiny
//! problems, not for production use.

use crate::arms::Arm;
use crate::solution::DispatchSolution;

/// Grid-search the dispatch problem with `steps` grid points per arm.
///
/// The returned cost is an upper bound on the true optimum that converges
/// as `steps → ∞`; with convex costs the gap is `O(1/steps)`.
#[must_use]
pub fn solve(arms: &[Arm<'_>], lambda: f64, steps: usize) -> DispatchSolution {
    let total_cap: f64 = arms.iter().map(Arm::cap).sum();
    if lambda > total_cap * (1.0 + 1e-12) + 1e-12 {
        return DispatchSolution::infeasible(arms.len());
    }
    let lambda = lambda.min(total_cap);
    let mut best = DispatchSolution::infeasible(arms.len());
    let mut current = vec![0.0; arms.len()];
    recurse(arms, lambda, steps, 0, &mut current, &mut best);
    best
}

fn recurse(
    arms: &[Arm<'_>],
    remaining: f64,
    steps: usize,
    i: usize,
    current: &mut Vec<f64>,
    best: &mut DispatchSolution,
) {
    if i == arms.len() - 1 {
        // Last arm takes the remainder if it fits.
        if remaining <= arms[i].cap() * (1.0 + 1e-12) + 1e-12 {
            current[i] = remaining.min(arms[i].cap());
            let cost: f64 = current.iter().zip(arms).map(|(&y, a)| a.phi(y)).sum();
            if cost < best.cost {
                *best = DispatchSolution::new(cost, current.clone());
            }
        }
        return;
    }
    let cap = arms[i].cap().min(remaining);
    // Downstream capacity lower-bounds what this arm must absorb.
    let downstream: f64 = arms[i + 1..].iter().map(Arm::cap).sum();
    let min_take = (remaining - downstream).max(0.0);
    for s in 0..=steps {
        let y = min_take + (cap - min_take) * s as f64 / steps as f64;
        if y > cap + 1e-12 {
            break;
        }
        current[i] = y;
        recurse(arms, remaining - y, steps, i + 1, current, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::collect;
    use rsz_core::{CostModel, Instance, ServerType};

    #[test]
    fn matches_kkt_on_smooth_problem() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 3.0, CostModel::power(1.0, 1.0, 2.0)))
            .server_type(ServerType::new("b", 1, 1.0, 5.0, CostModel::power(0.5, 3.0, 2.0)))
            .loads(vec![4.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[2, 1]);
        let brute = solve(&arms, 4.0, 4000);
        let kkt = crate::kkt::solve(&arms, 4.0, 1e-12, 200);
        assert!((brute.cost - kkt.cost).abs() < 1e-3, "brute {} vs kkt {}", brute.cost, kkt.cost);
        assert!(kkt.cost <= brute.cost + 1e-9, "kkt must not exceed the grid optimum");
    }

    #[test]
    fn infeasible_when_over_capacity() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[1]);
        assert!(!solve(&arms, 2.0, 10).is_feasible());
    }
}

//! Memoized `g_t` evaluation — the dispatch cache.
//!
//! Every configuration priced by the offline DP or by the online
//! algorithms' prefix solvers costs one convex dispatch solve. Those
//! solves repeat massively:
//!
//! * for **time-independent** costs (Algorithm A's setting, Section 2)
//!   `g_t(x)` depends only on `(λ_t, x)`, and real traces — diurnal,
//!   work-week — revisit the same load values slot after slot;
//! * Algorithm C feeds each original slot `ñ_t` times as sub-slots that
//!   differ only in cost scale, which a uniform scale factors out of;
//! * receding-horizon control re-solves overlapping windows every slot.
//!
//! [`CachedDispatcher`] wraps a [`Dispatcher`] and memoizes the
//! **unscaled** optimum `g(λ, x)` keyed by `(slot partition, config
//! index, λ bits)`. When the instance is time-independent all slots share
//! one partition; otherwise each slot keys its own partition so
//! time-varying cost profiles can never alias. Scaled queries
//! (`cost_scale ≠ 1`) multiply the cached unscaled optimum, exactly as
//! [`Dispatcher::g_value`] does, so cached and uncached results are
//! **bit-identical**.
//!
//! The cache is sharded behind [`RwLock`]s and shared across clones via
//! [`Arc`]: cloning a `CachedDispatcher` is cheap and both clones hit the
//! same entries, which is how the CLI prices a schedule with the very
//! solves its algorithm already paid for. Hit/miss counters make the
//! realized reuse observable (`rsz solve --cache` prints them; the
//! `gt_cache` bench records them).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rsz_core::{GtOracle, Instance, SlotEval};

use crate::{Dispatcher, SlotDispatcher};

/// Number of independent map shards; bounds write contention when the
/// parallel DP fill populates the cache from many threads at once.
const SHARDS: usize = 16;

/// A memoizing [`GtOracle`]: a [`Dispatcher`] plus a shared `g(λ, x)`
/// cache bound to one instance's shape.
///
/// Build it with the instance it will price ([`CachedDispatcher::new`]);
/// using it with a *different* instance is a logic error (debug
/// assertions catch shape mismatches). Instances obtained from
/// [`Instance::truncated`] are compatible with the full instance's cache:
/// truncation preserves every surviving slot's loads and cost views.
#[derive(Clone, Debug)]
pub struct CachedDispatcher {
    inner: Dispatcher,
    shared: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    /// `true` iff every cost is time-independent, letting all slots share
    /// partition 0 of the key space.
    slot_shared: bool,
    num_types: usize,
    /// Mixed-radix strides turning a count vector into a unique index
    /// (radix `m_j + 1` per type, from the horizon-max fleet sizes).
    strides: Vec<u128>,
    shards: Vec<RwLock<HashMap<Key, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    /// Slot partition: 0 when time-independent, else the slot index.
    slot: u32,
    /// Flat configuration index under `Shared::strides`.
    config: u128,
    /// Exact bits of the job volume λ.
    lambda: u64,
}

/// Snapshot of the cache's effectiveness counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a dispatch solve.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CachedDispatcher {
    /// A cache around the default [`Dispatcher`] for `instance`.
    #[must_use]
    pub fn new(instance: &Instance) -> Self {
        Self::with_dispatcher(instance, Dispatcher::new())
    }

    /// A cache around an explicitly configured dispatcher.
    ///
    /// # Panics
    /// Panics if the fleet-size radix product overflows `u128` — which
    /// requires grids astronomically beyond anything the DP could ever
    /// enumerate.
    #[must_use]
    pub fn with_dispatcher(instance: &Instance, inner: Dispatcher) -> Self {
        let max_counts = instance.max_counts();
        let d = max_counts.len();
        let mut strides = vec![1u128; d];
        for j in (0..d.saturating_sub(1)).rev() {
            let radix = u128::from(max_counts[j + 1]) + 1;
            strides[j] = strides[j + 1]
                .checked_mul(radix)
                .expect("fleet sizes too large to index into the g_t cache");
        }
        let shared = Shared {
            slot_shared: instance.is_time_independent(),
            num_types: d,
            strides,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };
        Self { inner, shared: Arc::new(shared) }
    }

    /// The wrapped dispatcher.
    #[must_use]
    pub fn dispatcher(&self) -> Dispatcher {
        self.inner
    }

    /// `true` if all slots share one cache partition (time-independent
    /// costs).
    #[must_use]
    pub fn slots_shared(&self) -> bool {
        self.shared.slot_shared
    }

    /// Counter snapshot. Shared across clones of this cache.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            entries: self.shared.shards.iter().map(|s| s.read().expect("poisoned").len()).sum(),
        }
    }

    /// Drop all entries and reset the counters.
    pub fn clear(&self) {
        for shard in &self.shared.shards {
            shard.write().expect("poisoned").clear();
        }
        self.shared.hits.store(0, Ordering::Relaxed);
        self.shared.misses.store(0, Ordering::Relaxed);
    }

    /// The unscaled optimum `g(λ, x)` for slot `t`, from cache or by one
    /// dispatch solve.
    fn cached_g(&self, instance: &Instance, t: usize, x: &[u32], lambda: f64) -> f64 {
        let key = self.shared.key(t, x, lambda.to_bits());
        if let Some(v) = self.shared.get(&key) {
            return v;
        }
        // Solve outside any lock; concurrent misses recompute the same
        // value, so last-writer-wins insertion is harmless.
        let v = self.inner.g_value(instance, t, x, lambda, 1.0);
        self.shared.put(key, v);
        v
    }
}

impl Shared {
    /// Slot partition for slot `t`.
    fn slot_key(&self, t: usize) -> u32 {
        if self.slot_shared {
            0
        } else {
            t as u32
        }
    }

    /// Cache key for `(t, x, λ bits)`.
    fn key(&self, t: usize, x: &[u32], lambda_bits: u64) -> Key {
        debug_assert_eq!(
            x.len(),
            self.num_types,
            "CachedDispatcher used with a different instance shape"
        );
        let config = x
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| u128::from(c) * s)
            .fold(0u128, u128::wrapping_add);
        Key { slot: self.slot_key(t), config, lambda: lambda_bits }
    }

    /// Look `key` up, counting a hit on success.
    fn get(&self, key: &Key) -> Option<f64> {
        let v = self.shards[shard_of(key)].read().expect("poisoned").get(key).copied();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Store a freshly solved value, counting the miss.
    fn put(&self, key: Key, v: f64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shards[shard_of(&key)].write().expect("poisoned").insert(key, v);
    }
}

fn shard_of(key: &Key) -> usize {
    let mixed = (key.config as u64)
        ^ (key.config >> 64) as u64
        ^ key.lambda.rotate_left(17)
        ^ u64::from(key.slot).rotate_left(43);
    (mixed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % SHARDS
}

impl GtOracle for CachedDispatcher {
    fn g(&self, instance: &Instance, t: usize, x: &[u32]) -> f64 {
        self.g_scaled(instance, t, x, instance.load(t), 1.0)
    }

    fn g_scaled(
        &self,
        instance: &Instance,
        t: usize,
        x: &[u32],
        lambda: f64,
        cost_scale: f64,
    ) -> f64 {
        if cost_scale == 0.0 {
            // Feasibility-only query: a capacity sum, cheaper than any
            // cache round-trip (mirrors Dispatcher exactly).
            return self.inner.g_value(instance, t, x, lambda, 0.0);
        }
        cost_scale * self.cached_g(instance, t, x, lambda)
    }

    // Replaying a slot against this oracle costs hash lookups, not
    // dispatch solves — checkpointed recovery may replay freely.
    fn is_memoizing(&self) -> bool {
        true
    }

    // `slot_sweep` deliberately keeps its default (= `slot_eval`): the
    // cache's contract is bit-identity with the cold `Dispatcher`, and a
    // warm-started miss would store a value that depends on which sweep
    // first touched it. The cache's own reuse already collapses sweeps
    // over repeated slots to hash lookups.
    fn slot_eval<'a>(
        &'a self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> Box<dyn SlotEval + 'a> {
        if cost_scale == 0.0 {
            // Zero-scaled slots only check feasibility; bypass the cache.
            return Box::new(self.inner.slot_dispatcher(instance, t, lambda, 0.0));
        }
        Box::new(CachedSlotEval {
            shared: &self.shared,
            t,
            lambda_bits: lambda.to_bits(),
            cost_scale,
            // Misses solve unscaled through the buffer-reusing path.
            inner: self.inner.slot_dispatcher(instance, t, lambda, 1.0),
        })
    }
}

/// Per-worker slot evaluator for [`CachedDispatcher`]: shares the global
/// cache but owns its dispatch scratch, so DP threads never contend on
/// anything except the shard locks.
struct CachedSlotEval<'a> {
    shared: &'a Shared,
    t: usize,
    lambda_bits: u64,
    cost_scale: f64,
    inner: SlotDispatcher<'a>,
}

impl SlotEval for CachedSlotEval<'_> {
    fn eval(&mut self, x: &[u32]) -> f64 {
        let key = self.shared.key(self.t, x, self.lambda_bits);
        if let Some(v) = self.shared.get(&key) {
            return self.cost_scale * v;
        }
        let v = self.inner.eval_config(x);
        self.shared.put(key, v);
        self.cost_scale * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::{CostModel, CostSpec, ServerType};

    fn ti_instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("lin", 4, 1.0, 1.0, CostModel::linear(1.0, 2.0)))
            .server_type(ServerType::new("pow", 2, 1.0, 4.0, CostModel::power(2.0, 1.0, 2.0)))
            .loads(vec![3.0, 3.0, 7.0, 3.0])
            .build()
            .unwrap()
    }

    fn td_instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::with_spec(
                "priced",
                3,
                2.0,
                2.0,
                CostSpec::scaled(CostModel::power(1.0, 0.5, 2.0), vec![1.0, 2.0, 0.5, 1.0]),
            ))
            .loads(vec![2.0, 4.0, 2.0, 2.0])
            .build()
            .unwrap()
    }

    #[test]
    fn values_match_plain_dispatcher_bitwise() {
        for inst in [ti_instance(), td_instance()] {
            let plain = Dispatcher::new();
            let cached = CachedDispatcher::new(&inst);
            for t in 0..inst.horizon() {
                for total in 0..=2 * inst.num_types() as u32 {
                    let x: Vec<u32> =
                        (0..inst.num_types()).map(|j| total.min(inst.server_count(t, j))).collect();
                    let a = plain.g(&inst, t, &x);
                    let b = cached.g(&inst, t, &x);
                    assert_eq!(a.to_bits(), b.to_bits(), "t={t} x={x:?}");
                    // And again, now from cache.
                    let c = cached.g(&inst, t, &x);
                    assert_eq!(a.to_bits(), c.to_bits(), "cached t={t} x={x:?}");
                }
            }
        }
    }

    #[test]
    fn time_independent_instances_share_slots() {
        let inst = ti_instance();
        let cached = CachedDispatcher::new(&inst);
        assert!(cached.slots_shared());
        // Slots 0, 1 and 3 carry the same load: after slot 0 is priced,
        // slots 1 and 3 must be pure hits.
        let x = [2u32, 1];
        let _ = cached.g(&inst, 0, &x);
        let before = cached.stats();
        let _ = cached.g(&inst, 1, &x);
        let _ = cached.g(&inst, 3, &x);
        let after = cached.stats();
        assert_eq!(after.misses, before.misses, "no new solves expected");
        assert_eq!(after.hits, before.hits + 2);
    }

    #[test]
    fn time_dependent_instances_partition_by_slot() {
        let inst = td_instance();
        let cached = CachedDispatcher::new(&inst);
        assert!(!cached.slots_shared());
        let x = [2u32];
        // Slots 0 and 3 have equal loads AND equal price factors, but the
        // cache must still key them separately (only λ bits are keyed, and
        // per-slot costs could differ arbitrarily in general).
        let a = cached.g(&inst, 0, &x);
        let b = cached.g(&inst, 3, &x);
        assert_eq!(a.to_bits(), b.to_bits(), "identical slots agree in value");
        assert_eq!(cached.stats().misses, 2, "but are solved separately");
        // Different price factor → genuinely different value.
        let c = cached.g(&inst, 2, &x);
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn scaled_queries_reuse_unscaled_entries() {
        let inst = ti_instance();
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        let x = [3u32, 1];
        let full = cached.g_scaled(&inst, 1, &x, 3.0, 1.0);
        let stats = cached.stats();
        // Algorithm C sub-slot: same λ, scaled cost — must be a hit.
        let sub = cached.g_scaled(&inst, 1, &x, 3.0, 0.25);
        assert_eq!(cached.stats().misses, stats.misses);
        assert_eq!(sub.to_bits(), plain.g_scaled(&inst, 1, &x, 3.0, 0.25).to_bits());
        assert_eq!(full.to_bits(), plain.g_scaled(&inst, 1, &x, 3.0, 1.0).to_bits());
        // Zero scale stays a pure feasibility probe.
        assert_eq!(cached.g_scaled(&inst, 1, &x, 3.0, 0.0), 0.0);
        assert!(cached.g_scaled(&inst, 1, &[0, 0], 3.0, 0.0).is_infinite());
    }

    #[test]
    fn clones_share_one_cache() {
        let inst = ti_instance();
        let a = CachedDispatcher::new(&inst);
        let b = a.clone();
        let _ = a.g(&inst, 0, &[1, 0]);
        let _ = b.g(&inst, 1, &[1, 0]); // same λ and costs → hit via clone
        assert_eq!(a.stats().hits, 1);
        assert_eq!(a.stats().misses, 1);
        a.clear();
        assert_eq!(b.stats(), CacheStats { hits: 0, misses: 0, entries: 0 });
    }

    #[test]
    fn slot_eval_matches_oracle_and_counts() {
        let inst = td_instance();
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        for t in 0..inst.horizon() {
            let lambda = inst.load(t);
            for scale in [1.0, 0.5, 0.0] {
                let mut view = cached.slot_eval(&inst, t, lambda, scale);
                for x in [[0u32], [1], [2], [3]] {
                    let got = view.eval(&x);
                    let want = plain.g_scaled(&inst, t, &x, lambda, scale);
                    assert_eq!(got.to_bits(), want.to_bits(), "t={t} scale={scale} x={x:?}");
                }
            }
        }
        let stats = cached.stats();
        // 4 slots × 4 configs, scales 1.0 and 0.5 share entries, scale 0
        // bypasses the cache entirely.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 16);
        assert_eq!(stats.entries, 16);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_configs_are_cached_too() {
        let inst = ti_instance();
        let cached = CachedDispatcher::new(&inst);
        assert!(cached.g(&inst, 2, &[1, 0]).is_infinite());
        assert!(cached.g(&inst, 2, &[1, 0]).is_infinite());
        assert_eq!(cached.stats().hits, 1);
    }
}

//! Dispatch "arms": one per server type with active servers.

use rsz_core::{CostModel, CostRef, Instance};

/// One server type as seen by the dispatch solvers: `count` active servers
/// sharing load evenly, a volume capacity, and the slot's cost view.
#[derive(Clone, Copy, Debug)]
pub struct Arm<'a> {
    /// Index of the server type in the instance (for mapping back).
    pub type_index: usize,
    /// Active servers `x_j > 0`.
    pub count: u32,
    /// Per-server capacity `z^max_j`.
    pub zmax: f64,
    /// Cost view `f_{t,j}` for the slot.
    pub cost: CostRef<'a>,
}

impl<'a> Arm<'a> {
    /// Total volume capacity of this arm: `x_j · z^max_j`.
    #[inline]
    #[must_use]
    pub fn cap(&self) -> f64 {
        f64::from(self.count) * self.zmax
    }

    /// Total idle cost when this arm carries no load: `x_j · f_{t,j}(0)`.
    #[inline]
    #[must_use]
    pub fn idle_total(&self) -> f64 {
        f64::from(self.count) * self.cost.idle()
    }

    /// Total cost of routing volume `y ∈ [0, cap]` to this arm:
    /// `Φ_j(y) = x_j · f_{t,j}(y / x_j)`.
    #[inline]
    #[must_use]
    pub fn phi(&self, y: f64) -> f64 {
        let x = f64::from(self.count);
        x * self.cost.eval(y / x)
    }

    /// Marginal cost `Φ_j'(y) = f_{t,j}'(y / x_j)`.
    #[inline]
    #[must_use]
    pub fn phi_deriv(&self, y: f64) -> f64 {
        self.cost.deriv(y / f64::from(self.count))
    }

    /// `true` if the underlying cost model is constant or affine, so the
    /// marginal cost does not depend on the allocated volume.
    #[must_use]
    pub fn is_affine(&self) -> bool {
        matches!(self.cost.model(), CostModel::Constant(_) | CostModel::Linear(_))
            || self.cost.scale() == 0.0
    }

    /// Constant marginal rate for affine arms (`0` for constant costs).
    #[must_use]
    pub fn affine_rate(&self) -> f64 {
        debug_assert!(self.is_affine());
        if self.cost.scale() == 0.0 {
            return 0.0;
        }
        match self.cost.model() {
            CostModel::Constant(_) => 0.0,
            CostModel::Linear(l) => self.cost.scale() * l.rate(),
            _ => unreachable!("affine_rate on non-affine arm"),
        }
    }

    /// Largest per-arm volume `y` with marginal cost ≤ `nu`, clamped to
    /// the capacity. Uses the model's closed-form inverse derivative when
    /// available, otherwise bisects.
    #[must_use]
    pub fn volume_at_price(&self, nu: f64, tol: f64, max_iter: usize) -> f64 {
        let cap = self.cap();
        if cap == 0.0 {
            return 0.0;
        }
        let x = f64::from(self.count);
        if let Some(z) = self.cost.deriv_inv(nu) {
            return (z * x).clamp(0.0, cap);
        }
        // Bisection for sup { y : Φ'(y) ≤ nu } on [0, cap].
        if self.phi_deriv(0.0) > nu {
            return 0.0;
        }
        if self.phi_deriv(cap) <= nu {
            return cap;
        }
        let (mut lo, mut hi) = (0.0_f64, cap);
        for _ in 0..max_iter {
            let mid = 0.5 * (lo + hi);
            if self.phi_deriv(mid) <= nu {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= tol * cap.max(1.0) {
                break;
            }
        }
        lo
    }
}

/// Build the arm list for configuration `x` at slot `t`. Types with zero
/// active servers are skipped (they can carry no volume).
///
/// One-shot convenience over [`SlotArms`] — both go through the same
/// construction path, so their outputs agree bit for bit by design.
#[must_use]
pub fn collect<'a>(instance: &'a Instance, t: usize, x: &[u32]) -> Vec<Arm<'a>> {
    let mut arms = Vec::new();
    SlotArms::new(instance, t).fill_into(x, &mut arms);
    arms
}

/// Per-slot arm templates: the type data ([`Arm::zmax`] and the slot's
/// cost view) shared by *every* configuration priced at slot `t`.
///
/// [`collect`] rebuilds this data and allocates a fresh `Vec` per
/// configuration; a DP step prices thousands of configurations of the
/// same slot, so hoist the templates out once and assemble each arm
/// list into a reusable buffer with [`SlotArms::fill_into`].
#[derive(Clone, Debug)]
pub struct SlotArms<'a> {
    /// One zero-count template per server type, in type order.
    templates: Vec<Arm<'a>>,
}

impl<'a> SlotArms<'a> {
    /// Capture slot `t`'s per-type capacity and cost views.
    #[must_use]
    pub fn new(instance: &'a Instance, t: usize) -> Self {
        let templates = (0..instance.num_types())
            .map(|j| Arm {
                type_index: j,
                count: 0,
                zmax: instance.capacity(j),
                cost: instance.cost(t, j),
            })
            .collect();
        Self { templates }
    }

    /// Number of server types `d`.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.templates.len()
    }

    /// Assemble the arm list for configuration `x` into `buf` (cleared
    /// first) — exactly [`collect`]'s output, without the allocation.
    pub fn fill_into(&self, x: &[u32], buf: &mut Vec<Arm<'a>>) {
        debug_assert_eq!(x.len(), self.templates.len());
        buf.clear();
        for (tpl, &c) in self.templates.iter().zip(x) {
            if c > 0 {
                buf.push(Arm { count: c, ..*tpl });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::{CostModel, ServerType};

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("lin", 4, 1.0, 2.0, CostModel::linear(1.0, 3.0)))
            .server_type(ServerType::new("pow", 2, 1.0, 4.0, CostModel::power(2.0, 1.0, 2.0)))
            .loads(vec![1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn collect_skips_inactive_types() {
        let inst = instance();
        let arms = collect(&inst, 0, &[0, 2]);
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].type_index, 1);
        assert_eq!(arms[0].cap(), 8.0);
    }

    #[test]
    fn phi_spreads_load_evenly() {
        let inst = instance();
        let arms = collect(&inst, 0, &[2, 0]);
        let a = &arms[0];
        // Φ(y) = 2 · (1 + 3·(y/2)) = 2 + 3y
        assert!((a.phi(0.0) - 2.0).abs() < 1e-12);
        assert!((a.phi(2.0) - 8.0).abs() < 1e-12);
        assert!((a.phi_deriv(1.0) - 3.0).abs() < 1e-12);
        assert!(a.is_affine());
        assert!((a.affine_rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn volume_at_price_power_cost() {
        let inst = instance();
        let arms = collect(&inst, 0, &[0, 2]);
        let a = &arms[0];
        assert!(!a.is_affine());
        // f(z) = 2 + z², f'(z) = 2z, so f'(z) ≤ nu ⇔ z ≤ nu/2; with 2
        // servers y = 2z = nu.
        let y = a.volume_at_price(3.0, 1e-12, 100);
        assert!((y - 3.0).abs() < 1e-9, "{y}");
        // capped at 8
        assert_eq!(a.volume_at_price(100.0, 1e-12, 100), 8.0);
        // zero below f'(0)=0 → exactly 0 at negative price
        assert_eq!(a.volume_at_price(-1.0, 1e-12, 100), 0.0);
    }

    #[test]
    fn slot_arms_match_collect_for_every_config() {
        let inst = instance();
        let slot = SlotArms::new(&inst, 0);
        assert_eq!(slot.num_types(), 2);
        let mut buf = Vec::new();
        for x in [[0u32, 0], [2, 0], [0, 1], [4, 2]] {
            slot.fill_into(&x, &mut buf);
            let fresh = collect(&inst, 0, &x);
            assert_eq!(buf.len(), fresh.len(), "config {x:?}");
            for (a, b) in buf.iter().zip(&fresh) {
                assert_eq!(a.type_index, b.type_index);
                assert_eq!(a.count, b.count);
                assert_eq!(a.zmax.to_bits(), b.zmax.to_bits());
                assert_eq!(a.cost.scale().to_bits(), b.cost.scale().to_bits());
            }
        }
    }

    #[test]
    fn volume_at_price_bisection_path() {
        // Custom cost without deriv_inv forces the bisection branch.
        use rsz_core::CostFunction;
        #[derive(Debug)]
        struct Quad;
        impl CostFunction for Quad {
            fn eval(&self, z: f64) -> f64 {
                z * z
            }
            fn deriv(&self, z: f64) -> f64 {
                2.0 * z
            }
        }
        let inst = Instance::builder()
            .server_type(ServerType::new(
                "c",
                2,
                1.0,
                4.0,
                CostModel::Custom(std::sync::Arc::new(Quad)),
            ))
            .loads(vec![1.0])
            .build()
            .unwrap();
        let arms = collect(&inst, 0, &[2]);
        let y = arms[0].volume_at_price(3.0, 1e-12, 200);
        assert!((y - 3.0).abs() < 1e-6, "{y}");
    }
}

//! Property-based tests for the dispatch solvers: the KKT and greedy
//! paths are validated against the dense grid-search oracle and against
//! each other, plus structural optimality conditions.

use proptest::prelude::*;
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::{arms, brute, Dispatcher};

#[derive(Clone, Debug)]
struct ArmSpec {
    count: u32,
    zmax: f64,
    model: CostModel,
}

fn arm_strategy() -> impl Strategy<Value = ArmSpec> {
    let model = prop_oneof![
        (0.1..3.0_f64).prop_map(CostModel::constant),
        (0.0..2.0_f64, 0.0..4.0_f64).prop_map(|(i, r)| CostModel::linear(i, r)),
        (0.0..2.0_f64, 0.1..2.0_f64, 1.2..3.0_f64).prop_map(|(i, c, a)| CostModel::power(i, c, a)),
        (0.0..2.0_f64, 0.0..2.0_f64, 0.1..1.5_f64)
            .prop_map(|(i, a, b)| CostModel::quadratic(i, a, b)),
    ];
    (1u32..4, 0.5..4.0_f64, model).prop_map(|(count, zmax, model)| ArmSpec { count, zmax, model })
}

fn build_instance(specs: &[ArmSpec]) -> Instance {
    let types: Vec<ServerType> = specs
        .iter()
        .enumerate()
        .map(|(j, s)| ServerType::new(format!("t{j}"), s.count, 1.0, s.zmax, s.model.clone()))
        .collect();
    Instance::builder()
        .server_types(types)
        .loads(vec![0.0]) // loads are passed explicitly to the solver
        .build()
        .expect("valid dispatch test instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production solver never exceeds the grid-search oracle (which
    /// over-estimates the optimum by its grid resolution) and is never
    /// more than the grid resolution below it.
    #[test]
    fn solver_matches_brute_oracle(specs in prop::collection::vec(arm_strategy(), 1..3), frac in 0.05..0.99_f64) {
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let lambda = frac * cap;
        let solver = Dispatcher::new().solve_arms(&arm_list, lambda);
        let oracle = brute::solve(&arm_list, lambda, 600);
        prop_assert!(solver.is_feasible());
        prop_assert!(
            solver.cost <= oracle.cost + 1e-6 * oracle.cost.abs().max(1.0),
            "solver {} worse than grid oracle {}", solver.cost, oracle.cost
        );
        prop_assert!(
            solver.cost >= oracle.cost - 0.05 * oracle.cost.abs().max(0.1),
            "solver {} suspiciously below grid oracle {}", solver.cost, oracle.cost
        );
    }

    /// The returned allocation is primal feasible: volumes within
    /// capacity and summing to λ.
    #[test]
    fn allocation_is_primal_feasible(specs in prop::collection::vec(arm_strategy(), 1..4), frac in 0.0..1.0_f64) {
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let lambda = frac * cap;
        let sol = Dispatcher::new().solve_arms(&arm_list, lambda);
        prop_assert!(sol.is_feasible());
        let total: f64 = sol.volumes.iter().sum();
        prop_assert!((total - lambda).abs() <= 1e-6 * lambda.max(1.0), "Σy = {total} ≠ λ = {lambda}");
        for (y, a) in sol.volumes.iter().zip(&arm_list) {
            prop_assert!(*y >= -1e-12 && *y <= a.cap() + 1e-9);
        }
    }

    /// KKT stationarity: marginal costs of interior arms agree, and
    /// boundary arms satisfy the complementary inequalities.
    #[test]
    fn kkt_conditions_hold(specs in prop::collection::vec(arm_strategy(), 2..4), frac in 0.1..0.9_f64) {
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let lambda = frac * cap;
        let sol = Dispatcher::new().solve_arms(&arm_list, lambda);
        // Price = max marginal among arms carrying volume.
        let mut nu: f64 = 0.0;
        for (y, a) in sol.volumes.iter().zip(&arm_list) {
            if *y > 1e-9 {
                nu = nu.max(a.phi_deriv(*y * (1.0 - 1e-9)));
            }
        }
        for (y, a) in sol.volumes.iter().zip(&arm_list) {
            if *y < a.cap() - 1e-9 {
                // not saturated ⇒ marginal at y must be ≥ ν − tol (else
                // moving volume here would reduce cost).
                prop_assert!(
                    a.phi_deriv(*y) >= nu - 1e-4 * nu.abs().max(1.0),
                    "arm could absorb cheaper volume: φ'({y}) = {} < ν = {nu}",
                    a.phi_deriv(*y)
                );
            }
        }
    }

    /// Perturbing the optimal allocation never reduces the cost
    /// (first-order optimality via random feasible exchange moves).
    #[test]
    fn exchange_moves_never_improve(
        specs in prop::collection::vec(arm_strategy(), 2..4),
        frac in 0.1..0.9_f64,
        from in 0usize..4,
        to in 0usize..4,
        delta_frac in 0.01..0.5_f64,
    ) {
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let n = arm_list.len();
        let (from, to) = (from % n, to % n);
        prop_assume!(from != to);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let lambda = frac * cap;
        let sol = Dispatcher::new().solve_arms(&arm_list, lambda);
        let mut vols = sol.volumes.clone();
        let room = (arm_list[to].cap() - vols[to]).min(vols[from]);
        let delta = delta_frac * room;
        prop_assume!(delta > 1e-12);
        vols[from] -= delta;
        vols[to] += delta;
        let new_cost: f64 = vols.iter().zip(&arm_list).map(|(&y, a)| a.phi(y)).sum();
        prop_assert!(
            new_cost >= sol.cost - 1e-6 * sol.cost.abs().max(1.0),
            "exchange improved cost: {new_cost} < {}", sol.cost
        );
    }

    /// Cost is monotone in λ: more volume never costs less.
    #[test]
    fn cost_monotone_in_volume(specs in prop::collection::vec(arm_strategy(), 1..3), f1 in 0.0..1.0_f64, f2 in 0.0..1.0_f64) {
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let d = Dispatcher::new();
        let c_lo = d.solve_arms(&arm_list, lo * cap).cost;
        let c_hi = d.solve_arms(&arm_list, hi * cap).cost;
        prop_assert!(c_lo <= c_hi + 1e-6 * c_hi.abs().max(1.0), "{c_lo} > {c_hi}");
    }
}

/// Enumerate every configuration `0..=counts[j]` per type in row-major
/// (last dimension fastest) layout order — the order DP fills and the
/// pricing pipeline sweep.
fn layout_order_configs(counts: &[u32]) -> Vec<Vec<u32>> {
    let mut out = vec![vec![]];
    for &m in counts {
        let mut next = Vec::new();
        for prefix in &out {
            for c in 0..=m {
                let mut cfg = prefix.clone();
                cfg.push(c);
                next.push(cfg);
            }
        }
        out = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm-started KKT solves match the cold bisection within the
    /// documented relative 1e-9 parity bound while carrying the bracket
    /// across an ascending λ sweep (the row-sweep access pattern), on
    /// random arm sets in random declaration order.
    #[test]
    fn warm_bracket_chain_matches_cold_on_lambda_sweeps(
        specs in prop::collection::vec(arm_strategy(), 1..4),
        steps in 4usize..12,
    ) {
        use rsz_dispatch::kkt;
        let inst = build_instance(&specs);
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let arm_list = arms::collect(&inst, 0, &counts);
        let cap: f64 = arm_list.iter().map(|a| a.cap()).sum();
        let mut hint = None;
        for s in 1..=steps {
            let lambda = cap * s as f64 / (steps + 1) as f64;
            let cold = kkt::solve(&arm_list, lambda, 1e-10, 200);
            let (warm, bracket) = kkt::solve_warm(&arm_list, lambda, 1e-10, 200, hint);
            hint = bracket;
            prop_assert_eq!(cold.is_feasible(), warm.is_feasible());
            prop_assert!(
                (cold.cost - warm.cost).abs() <= 1e-9 * cold.cost.abs().max(1.0),
                "λ={}: cold {} vs warm {}", lambda, cold.cost, warm.cost
            );
            let total: f64 = warm.volumes.iter().sum();
            prop_assert!((total - lambda).abs() <= 1e-6 * lambda.max(1.0));
        }
    }

    /// The sweep dispatcher (warm row sweeps, as used by the pricing
    /// pipeline) agrees with the cold slot dispatcher on every grid cell
    /// in layout order — including time-dependent per-slot cost scaling
    /// and Algorithm C's scaled sub-slots.
    #[test]
    fn sweep_dispatcher_matches_cold_slot_dispatcher(
        specs in prop::collection::vec(arm_strategy(), 1..3),
        frac in 0.05..0.95_f64,
        price in 0.25..3.0_f64,
        scale_pick in 0usize..3,
    ) {
        use rsz_core::CostSpec;
        // Two slots sharing the shape, slot 1 re-priced: time-dependent.
        let types: Vec<ServerType> = specs
            .iter()
            .enumerate()
            .map(|(j, s)| {
                ServerType::with_spec(
                    format!("t{j}"),
                    s.count,
                    1.0,
                    s.zmax,
                    CostSpec::scaled(s.model.clone(), vec![1.0, price]),
                )
            })
            .collect();
        let counts: Vec<u32> = specs.iter().map(|s| s.count).collect();
        let inst = Instance::builder()
            .server_types(types)
            .loads(vec![0.0, 0.0])
            .build()
            .expect("valid sweep test instance");
        let total_cap: f64 =
            counts.iter().zip(&specs).map(|(&c, s)| f64::from(c) * s.zmax).sum();
        let lambda = frac * total_cap;
        // Algorithm C sub-slots scale costs by 1/ñ_t.
        let cost_scale = [1.0, 0.5, 1.0 / 3.0][scale_pick];
        let d = Dispatcher::new();
        for t in 0..2 {
            let mut sweep = d.sweep_dispatcher(&inst, t, lambda, cost_scale);
            let mut cold = d.slot_dispatcher(&inst, t, lambda, cost_scale);
            for cfg in layout_order_configs(&counts) {
                let w = sweep.eval_config(&cfg);
                let c = cold.eval_config(&cfg);
                prop_assert_eq!(w.is_finite(), c.is_finite(), "t={} x={:?}", t, &cfg);
                if c.is_finite() {
                    prop_assert!(
                        (w - c).abs() <= 1e-9 * c.abs().max(1.0),
                        "t={} x={:?}: sweep {} vs cold {}", t, &cfg, w, c
                    );
                }
            }
        }
    }
}

//! Property: [`CachedDispatcher`] is observationally identical — to the
//! bit — to the [`Dispatcher`] it wraps, on time-independent and
//! time-dependent instances alike, for plain, repeated, and scaled
//! (Algorithm C sub-slot) queries.

use proptest::prelude::*;
use rsz_core::{CostModel, CostSpec, GtOracle, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};

#[derive(Clone, Debug)]
struct TypeSpec {
    count: u32,
    beta: f64,
    zmax: f64,
    model: CostModel,
    /// Per-slot price factors; `None` = time-independent.
    factors: Option<Vec<f64>>,
}

fn model_strategy() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        (0.1..3.0_f64).prop_map(CostModel::constant),
        (0.0..2.0_f64, 0.0..4.0_f64).prop_map(|(i, r)| CostModel::linear(i, r)),
        (0.0..2.0_f64, 0.1..2.0_f64, 1.2..3.0_f64).prop_map(|(i, c, a)| CostModel::power(i, c, a)),
        (0.0..2.0_f64, 0.0..2.0_f64, 0.1..1.5_f64)
            .prop_map(|(i, a, b)| CostModel::quadratic(i, a, b)),
    ]
}

fn type_strategy(horizon: usize) -> impl Strategy<Value = TypeSpec> {
    (
        1u32..4,
        0.0..4.0_f64,
        0.5..3.0_f64,
        model_strategy(),
        prop_oneof![
            Just(None).boxed(),
            prop::collection::vec(0.1..3.0_f64, horizon..=horizon).prop_map(Some).boxed(),
        ],
    )
        .prop_map(|(count, beta, zmax, model, factors)| TypeSpec {
            count,
            beta,
            zmax,
            model,
            factors,
        })
}

fn build(specs: &[TypeSpec], load_fracs: &[f64]) -> Instance {
    let types: Vec<ServerType> = specs
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let spec = match &s.factors {
                None => CostSpec::uniform(s.model.clone()),
                Some(f) => CostSpec::scaled(s.model.clone(), f.clone()),
            };
            ServerType::with_spec(format!("t{j}"), s.count, s.beta, s.zmax, spec)
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    let loads: Vec<f64> = load_fracs.iter().map(|f| f * cap).collect();
    Instance::builder().server_types(types).loads(loads).build().expect("feasible by construction")
}

/// All configurations on the full grid of `inst` (small fleets only).
fn all_configs(inst: &Instance) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = vec![vec![]];
    for j in 0..inst.num_types() {
        let mut next = Vec::new();
        for prefix in &out {
            for c in 0..=inst.types()[j].count {
                let mut p = prefix.clone();
                p.push(c);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every `g` the cache answers — cold, warm, across slots — carries
    /// exactly the bits the plain dispatcher produces.
    #[test]
    fn cache_is_bit_identical_to_dispatcher(
        horizon in 2usize..5,
        seed_specs in prop::collection::vec(type_strategy(4), 1..3),
        load_fracs in prop::collection::vec(0.0..1.0_f64, 4..=4),
    ) {
        let inst = build(&seed_specs, &load_fracs[..horizon]);
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        prop_assert_eq!(cached.slots_shared(), inst.is_time_independent());
        for round in 0..2 {
            for t in 0..inst.horizon() {
                for x in all_configs(&inst) {
                    let a = plain.g(&inst, t, &x);
                    let b = cached.g(&inst, t, &x);
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "round {} t={} x={:?}: plain {} vs cached {}", round, t, x, a, b
                    );
                }
            }
        }
        // Warm rounds on a time-independent instance are pure hits.
        if inst.is_time_independent() {
            let stats = cached.stats();
            prop_assert!(stats.hits >= stats.misses, "stats {:?}", stats);
        }
    }

    /// Algorithm C's sub-slot queries: `g_scaled` with overridden volume
    /// and `1/ñ` cost scales — cached and plain answers agree bitwise,
    /// and re-scaling never triggers a re-solve.
    #[test]
    fn scaled_subslot_queries_are_bit_identical(
        horizon in 2usize..5,
        seed_specs in prop::collection::vec(type_strategy(4), 1..3),
        load_fracs in prop::collection::vec(0.0..1.0_f64, 4..=4),
        subslots in 1usize..5,
        lambda_frac in 0.0..1.0_f64,
    ) {
        let inst = build(&seed_specs, &load_fracs[..horizon]);
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        let cap: f64 =
            (0..inst.num_types()).map(|j| f64::from(inst.types()[j].count) * inst.capacity(j)).sum();
        let lambda = lambda_frac * cap;
        let scale = 1.0 / subslots as f64;
        for t in 0..inst.horizon() {
            for x in all_configs(&inst) {
                let first = cached.g_scaled(&inst, t, &x, lambda, scale);
                let solves = cached.stats().misses;
                for _ in 1..subslots {
                    let again = cached.g_scaled(&inst, t, &x, lambda, scale);
                    prop_assert_eq!(first.to_bits(), again.to_bits());
                }
                prop_assert_eq!(cached.stats().misses, solves, "sub-slots must not re-solve");
                let want = plain.g_scaled(&inst, t, &x, lambda, scale);
                prop_assert_eq!(
                    first.to_bits(), want.to_bits(),
                    "t={} x={:?} λ={} scale={}", t, x, lambda, scale
                );
                // Zero scale (feasibility probe) agrees as well.
                let z_cached = cached.g_scaled(&inst, t, &x, lambda, 0.0);
                let z_plain = plain.g_scaled(&inst, t, &x, lambda, 0.0);
                prop_assert_eq!(z_cached.to_bits(), z_plain.to_bits());
            }
        }
    }

    /// The worker-facing slot contexts answer with the same bits as the
    /// oracle entry points, for both the plain and the cached dispatcher.
    #[test]
    fn slot_eval_contexts_are_bit_identical(
        horizon in 2usize..4,
        seed_specs in prop::collection::vec(type_strategy(3), 1..3),
        load_fracs in prop::collection::vec(0.0..1.0_f64, 3..=3),
        scale in 0.1..1.0_f64,
    ) {
        let inst = build(&seed_specs, &load_fracs[..horizon]);
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        for t in 0..inst.horizon() {
            let lambda = inst.load(t);
            let mut plain_view = plain.slot_eval(&inst, t, lambda, scale);
            let mut cached_view = cached.slot_eval(&inst, t, lambda, scale);
            for x in all_configs(&inst) {
                let want = plain.g_scaled(&inst, t, &x, lambda, scale);
                prop_assert_eq!(plain_view.eval(&x).to_bits(), want.to_bits());
                prop_assert_eq!(cached_view.eval(&x).to_bits(), want.to_bits());
            }
        }
    }
}

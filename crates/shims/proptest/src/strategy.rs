//! Value-generation strategies: the shim's equivalent of
//! `proptest::strategy` plus the `collection` module.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// replaces the value-tree machinery and draws a single value.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a final value from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, re-drawing otherwise.
    ///
    /// # Panics
    /// Panics if 1000 consecutive draws all fail `pred`.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies, produced by [`crate::prop_oneof!`].
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `branches`, each drawn with equal probability.
    ///
    /// # Panics
    /// Panics if `branches` is empty.
    #[must_use]
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}): rejected 1000 consecutive draws", self.whence);
    }
}

/// Always produces a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Range, RangeInclusive, StdRng, Strategy};
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self { lo, hi }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = test_rng("compose");
        let strat = (0.0..1.0_f64, 1u32..=3).prop_map(|(x, n)| x * f64::from(n));
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((0.0..3.0).contains(&v));
        }
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let mut rng = test_rng("flat_map");
        let strat = (1usize..=4).prop_flat_map(|d| collection::vec(0u32..10, d..=d));
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut rng = test_rng("union");
        let strat = Union::new(vec![Just(0u32).boxed(), Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The proptest! expansion runs bodies and honours prop_assume.
        #[test]
        fn macro_roundtrip(
            x in 0.0..1.0_f64,
            v in prop::collection::vec(0u32..6, 2..4),
        ) {
            prop_assume!(x > 0.01);
            prop_assert!(x < 1.0);
            prop_assert_eq!(v.len().min(3), v.len());
        }

        #[test]
        fn single_param(y in 1i64..=5) {
            prop_assert!((1..=5).contains(&y));
        }
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim implements the subset the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) generating
//!   one `#[test]` per property,
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, and `boxed`,
//! * range strategies (`0.0..5.0_f64`, `1u32..=3`, …), tuple strategies up
//!   to arity 6, [`collection::vec`], [`Just`], and the [`prop_oneof!`]
//!   union,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike the real framework there is **no shrinking**: a failing case
//! panics immediately with the generated inputs left to the assertion
//! message. Each test's generator is seeded deterministically from the test
//! name, so failures reproduce across runs. Swapping the real crate back in
//! requires no source changes.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Run-time knobs for a [`proptest!`] block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep offline CI fast.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test generator, seeded from the test's name (FNV-1a).
///
/// Public for use by the [`proptest!`] expansion; not part of the mirrored
/// upstream API.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec(...)` resolves as it does with
    /// the real crate's prelude.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Re-export at crate root, mirroring `proptest::collection`.
pub use strategy::collection;

/// Asserts a property-test condition (shim: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality in a property test (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality in a property test (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Must appear inside a [`proptest!`] body (the expansion returns early from
/// the per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // Bound to a bool first so clippy does not flag negated partial
        // comparisons at the expansion site.
        let __assumed: bool = $cond;
        if !__assumed {
            return ::std::result::Result::Err("prop_assume rejected the case");
        }
    };
}

/// Uniform choice between strategies with a common value type, mirroring
/// `proptest::prop_oneof!` (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0.0..1.0_f64, v in prop::collection::vec(0u32..6, 2..4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($($cfg:tt)*)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$($cfg)*] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Splits a `proptest!` block into individual test functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$($cfg:tt)*]) => {};
    ([$($cfg:tt)*]
     $(#[$meta:meta])*
     fn $name:ident ($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_case!{ @args [$($cfg)*] $(#[$meta])* fn $name $body [] $($params)* }
        $crate::__proptest_fns!{ [$($cfg)*] $($rest)* }
    };
}

/// Parses one test's `arg in strategy` list, then emits the test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Peel `arg in strategy,` (more parameters follow).
    (@args [$($cfg:tt)*] $(#[$meta:meta])* fn $name:ident $body:block
     [$([$arg:ident $strat:tt])*] $next:ident in $nstrat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!{ @args [$($cfg)*] $(#[$meta])* fn $name $body
            [$([$arg $strat])* [$next ($nstrat)]] $($rest)* }
    };
    // Peel the final `arg in strategy` (no trailing comma).
    (@args [$($cfg:tt)*] $(#[$meta:meta])* fn $name:ident $body:block
     [$([$arg:ident $strat:tt])*] $next:ident in $nstrat:expr) => {
        $crate::__proptest_case!{ @args [$($cfg)*] $(#[$meta])* fn $name $body
            [$([$arg $strat])* [$next ($nstrat)]] }
    };
    // All parameters parsed: emit the test.
    (@args [$($cfg:tt)*] $(#[$meta:meta])* fn $name:ident $body:block
     [$([$arg:ident $strat:tt])*]) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $($cfg)*;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), &'static str> = (|| {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)*
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                // Err means a prop_assume! rejected the case; move on.
                let _ = __outcome;
            }
        }
    };
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim accepts the same API surface the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, `Bencher::iter`) and implements a simple wall-clock timer:
//! each benchmark is warmed up briefly, then timed over a fixed number of
//! iterations, and the mean per-iteration time is printed as
//! `bench: <group>/<id> ... <time>`.
//!
//! It reports honest (if low-precision) numbers, making `cargo bench` usable
//! for coarse regression checks; swap the real crate back in for
//! statistically rigorous measurements.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (now in `std`).
pub use std::hint::black_box;

/// Entry point type, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20 }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 20, &mut f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (the real crate
    /// interprets this statistically; the shim uses it directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim prints raw times only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed warm-up.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Times `f` under `id`, passing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Closes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark case, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{}/{parameter}", function_name.into()) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of abstract elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Warm-up: one untimed iteration.
    let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / sample_size as f64;
    println!("bench: {label:<50} {}", format_time(per_iter));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs/iter", secs * 1e6)
    } else {
        format!("{:>10.1} ns/iter", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Elements(3));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 3), &3u32, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            });
        });
        group.finish();
        assert!(ran >= 5, "bencher closure should have iterated");
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` crate cannot be fetched. This shim implements the exact API
//! subset the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_bool`, and `gen_range` over float and
//! integer ranges — on top of the xoshiro256++ generator seeded via
//! SplitMix64.
//!
//! The stream differs from upstream `rand` (whose `StdRng` is ChaCha12), but
//! every consumer in this workspace only requires *deterministic,
//! well-distributed* values from an explicit `u64` seed, which this shim
//! provides. Swapping the real crate back in requires no source changes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
///
/// Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the "standard" distribution for `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range of a numeric type.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; the streams differ but the
    /// contract relied on here (deterministic per seed, 64-bit output,
    /// passes standard statistical batteries) is the same.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait StandardDist: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection, avoiding modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardDist>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { <$t>::max(self.start, prev_down(self.end)) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardDist>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Largest float strictly below `x` (for excluding a range's endpoint).
fn prev_down<T: FloatBits>(x: T) -> T {
    T::prev_down(x)
}

/// Helper trait giving both float widths a "next value toward −∞" step.
pub trait FloatBits: Copy {
    /// Returns the next representable value toward negative infinity.
    fn prev_down(self) -> Self;
}

impl FloatBits for f64 {
    fn prev_down(self) -> Self {
        if self.is_nan() || self == f64::NEG_INFINITY {
            return self;
        }
        let bits = self.to_bits();
        let next = if self > 0.0 {
            bits - 1
        } else if self < 0.0 {
            bits + 1
        } else {
            (-f64::from_bits(1)).to_bits()
        };
        f64::from_bits(next)
    }
}

impl FloatBits for f32 {
    fn prev_down(self) -> Self {
        if self.is_nan() || self == f32::NEG_INFINITY {
            return self;
        }
        let bits = self.to_bits();
        let next = if self > 0.0 {
            bits - 1
        } else if self < 0.0 {
            bits + 1
        } else {
            (-f32::from_bits(1)).to_bits()
        };
        f32::from_bits(next)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&y));
            let z = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 produced {hits}/10000");
    }
}

//! Small numeric helpers shared across the workspace.
//!
//! Costs are `f64` throughout; infeasible configurations carry cost
//! `f64::INFINITY`. Comparisons between independently computed costs must
//! tolerate floating-point noise, so every cross-check in tests and
//! experiments goes through the helpers in this module.

/// Default relative tolerance for cost comparisons.
pub const REL_TOL: f64 = 1e-9;
/// Default absolute tolerance for cost comparisons.
pub const ABS_TOL: f64 = 1e-9;

/// `true` if `a` and `b` are equal up to the default tolerances.
///
/// Infinities compare equal to themselves, which matters when comparing
/// infeasible-configuration costs produced by different code paths.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, REL_TOL, ABS_TOL)
}

/// `true` if `a` and `b` are equal up to the given tolerances.
#[must_use]
pub fn approx_eq_tol(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    if a == b {
        return true; // covers equal infinities and exact hits
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

/// `true` if `a ≤ b` up to the default tolerances (i.e. `a` is not
/// significantly greater than `b`).
#[must_use]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// `true` if `a ≥ b` up to the default tolerances.
#[must_use]
pub fn approx_ge(a: f64, b: f64) -> bool {
    b <= a || approx_eq(a, b)
}

/// Numerically careful sum of a slice (Neumaier's variant of Kahan
/// summation). The DP tables accumulate costs over thousands of slots, so
/// plain summation noise would leak into oracle comparisons.
#[must_use]
pub fn stable_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0_f64;
    let mut comp = 0.0_f64; // running compensation
    for &v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Positive part `(x)^+ = max(x, 0)` for switching-cost expressions.
#[inline]
#[must_use]
pub fn pos(x: f64) -> f64 {
    x.max(0.0)
}

/// Positive difference of two `u32` counts as `f64`: `(a − b)^+`.
#[inline]
#[must_use]
pub fn pos_diff(a: u32, b: u32) -> f64 {
    a.saturating_sub(b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_eq(0.0, 1e-12));
    }

    #[test]
    fn approx_eq_infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1.0));
        assert!(!approx_eq(f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn approx_le_ge() {
        assert!(approx_le(1.0, 2.0));
        assert!(approx_le(2.0, 2.0 - 1e-13));
        assert!(!approx_le(2.1, 2.0));
        assert!(approx_ge(2.0, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-13));
    }

    #[test]
    fn stable_sum_matches_naive_on_small_input() {
        let v = [1.0, 2.0, 3.5];
        assert_eq!(stable_sum(&v), 6.5);
    }

    #[test]
    fn stable_sum_is_more_accurate_than_naive() {
        // 1 + 2^-60 repeated: naive sum drops the tiny addend entirely.
        let mut v = vec![1.0];
        let tiny = (2.0_f64).powi(-60);
        v.extend(std::iter::repeat_n(tiny, 1 << 16));
        let expected = 1.0 + tiny * (1 << 16) as f64;
        let got = stable_sum(&v);
        assert!(approx_eq_tol(got, expected, 1e-15, 0.0), "{got} vs {expected}");
    }

    #[test]
    fn pos_helpers() {
        assert_eq!(pos(3.0), 3.0);
        assert_eq!(pos(-3.0), 0.0);
        assert_eq!(pos_diff(5, 3), 2.0);
        assert_eq!(pos_diff(3, 5), 0.0);
    }
}

//! Problem instances `I = (T, d, m, β, F, Λ)`.

use crate::config::Config;
use crate::cost::CostRef;
use crate::error::InstanceError;
use crate::server::ServerType;

/// A complete right-sizing problem instance.
///
/// Wraps the server types (with their fleet sizes, switching costs,
/// capacities and cost functions), the arrival sequence `λ_1 … λ_T`, and —
/// for the Section 4.3 extension — an optional time-varying fleet-size
/// matrix `m_{t,j}`.
///
/// Instances are immutable after construction; build them with
/// [`InstanceBuilder`], which validates all the paper's model assumptions.
#[derive(Clone, Debug)]
pub struct Instance {
    types: Vec<ServerType>,
    loads: Vec<f64>,
    /// `m_{t,j}` when the data-center size varies over time; `None` means
    /// the static `types[j].count` applies to every slot.
    counts_over_time: Option<Vec<Vec<u32>>>,
}

impl Instance {
    /// Start building an instance.
    #[must_use]
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// Number of time slots `T`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.loads.len()
    }

    /// Number of server types `d`.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// The server types.
    #[must_use]
    pub fn types(&self) -> &[ServerType] {
        &self.types
    }

    /// Job volume `λ_t` arriving at (0-based) slot `t`.
    #[inline]
    #[must_use]
    pub fn load(&self, t: usize) -> f64 {
        self.loads[t]
    }

    /// The full arrival sequence.
    #[must_use]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Switching cost `β_j`.
    #[inline]
    #[must_use]
    pub fn switching_cost(&self, j: usize) -> f64 {
        self.types[j].switching_cost
    }

    /// Per-server capacity `z^max_j`.
    #[inline]
    #[must_use]
    pub fn capacity(&self, j: usize) -> f64 {
        self.types[j].capacity
    }

    /// Fleet size `m_{t,j}` of type `j` at slot `t` (static `m_j` unless a
    /// time-varying profile was supplied).
    #[inline]
    #[must_use]
    pub fn server_count(&self, t: usize, j: usize) -> u32 {
        match &self.counts_over_time {
            Some(m) => m[t][j],
            None => self.types[j].count,
        }
    }

    /// All fleet sizes at slot `t`.
    #[must_use]
    pub fn server_counts_at(&self, t: usize) -> Vec<u32> {
        (0..self.num_types()).map(|j| self.server_count(t, j)).collect()
    }

    /// The per-type maximum fleet size over the whole horizon — the bound
    /// `m_j` used to size DP tables.
    #[must_use]
    pub fn max_counts(&self) -> Vec<u32> {
        match &self.counts_over_time {
            Some(m) => {
                let d = self.num_types();
                let mut out = vec![0u32; d];
                for row in m {
                    for (j, &c) in row.iter().enumerate() {
                        out[j] = out[j].max(c);
                    }
                }
                out
            }
            None => self.types.iter().map(|ty| ty.count).collect(),
        }
    }

    /// `true` if a time-varying fleet-size profile is present (Sec. 4.3).
    #[must_use]
    pub fn has_time_varying_counts(&self) -> bool {
        self.counts_over_time.is_some()
    }

    /// Cost view `f_{t,j}` for slot `t`, type `j`.
    #[inline]
    #[must_use]
    pub fn cost(&self, t: usize, j: usize) -> CostRef<'_> {
        self.types[j].cost.at(t)
    }

    /// Idle operating cost `l_{t,j} = f_{t,j}(0)`.
    #[inline]
    #[must_use]
    pub fn idle_cost(&self, t: usize, j: usize) -> f64 {
        self.cost(t, j).idle()
    }

    /// `true` if every type's cost is time-independent (Algorithm A's
    /// setting, Section 2).
    #[must_use]
    pub fn is_time_independent(&self) -> bool {
        self.types.iter().all(|ty| ty.cost.is_time_independent())
    }

    /// `true` if every type's cost is load-independent (the CIAC'21
    /// special case; Corollary 9 applies when also time-independent).
    #[must_use]
    pub fn is_load_independent(&self) -> bool {
        (0..self.num_types())
            .all(|j| (0..self.horizon()).all(|t| self.cost(t, j).is_load_independent()))
    }

    /// Total capacity when every existing server of slot `t` is active.
    #[must_use]
    pub fn max_capacity_at(&self, t: usize) -> f64 {
        (0..self.num_types()).map(|j| f64::from(self.server_count(t, j)) * self.capacity(j)).sum()
    }

    /// `true` if configuration `x` is admissible at slot `t`: within fleet
    /// bounds and able to process `λ_t`.
    #[must_use]
    pub fn is_admissible(&self, t: usize, x: &Config) -> bool {
        if x.dims() != self.num_types() {
            return false;
        }
        (0..self.num_types()).all(|j| x.count(j) <= self.server_count(t, j))
            && x.can_serve(&self.types, self.load(t))
    }

    /// The shortened instance `I_t` containing only slots `0..len`
    /// (the paper's `I_t` with `t = len`). Cost profiles and fleet
    /// profiles are truncated accordingly.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Instance {
        assert!(len <= self.horizon());
        Instance {
            types: self.types.clone(),
            loads: self.loads[..len].to_vec(),
            counts_over_time: self.counts_over_time.as_ref().map(|m| m[..len].to_vec()),
        }
    }

    /// Validate the model assumptions. Builders call this automatically;
    /// it is public so hand-mutated clones can be re-checked.
    ///
    /// Checks: non-empty horizon and type list; finite non-negative loads;
    /// positive capacities; non-negative switching costs; cost profiles
    /// covering the horizon; feasibility of every slot; and sampled
    /// convexity/monotonicity of every cost function.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.types.is_empty() {
            return Err(InstanceError::NoServerTypes);
        }
        if self.loads.is_empty() {
            return Err(InstanceError::EmptyHorizon);
        }
        for (t, &l) in self.loads.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(InstanceError::BadLoad { t, value: l });
            }
        }
        for (j, ty) in self.types.iter().enumerate() {
            if !(ty.capacity.is_finite() && ty.capacity > 0.0) {
                return Err(InstanceError::BadServerType {
                    j,
                    reason: format!("capacity must be positive, got {}", ty.capacity),
                });
            }
            if !(ty.switching_cost.is_finite() && ty.switching_cost >= 0.0) {
                return Err(InstanceError::BadServerType {
                    j,
                    reason: format!("switching cost must be ≥ 0, got {}", ty.switching_cost),
                });
            }
            if let Some(len) = ty.cost.horizon() {
                if len < self.horizon() {
                    return Err(InstanceError::CostHorizonMismatch {
                        j,
                        spec_len: len,
                        horizon: self.horizon(),
                    });
                }
            }
        }
        if let Some(m) = &self.counts_over_time {
            if m.len() != self.horizon() {
                return Err(InstanceError::CountsShapeMismatch {
                    expected: (self.horizon(), self.num_types()),
                    found: (m.len(), m.first().map_or(0, Vec::len)),
                });
            }
            for row in m {
                if row.len() != self.num_types() {
                    return Err(InstanceError::CountsShapeMismatch {
                        expected: (self.horizon(), self.num_types()),
                        found: (m.len(), row.len()),
                    });
                }
            }
        }
        for t in 0..self.horizon() {
            let cap = self.max_capacity_at(t);
            if self.load(t) > cap {
                return Err(InstanceError::InfeasibleLoad { t, load: self.load(t), capacity: cap });
            }
        }
        self.check_cost_shapes()
    }

    /// Sampled convexity + monotonicity check on each cost function over
    /// `[0, z^max_j]`. Catches mis-specified `Custom` functions early.
    fn check_cost_shapes(&self) -> Result<(), InstanceError> {
        const SAMPLES: usize = 8;
        // Time-independent specs need a single check; per-slot specs are
        // sampled at a few representative slots to keep validation cheap.
        for (j, ty) in self.types.iter().enumerate() {
            let slots: Vec<usize> = if ty.cost.is_time_independent() {
                vec![0]
            } else {
                let t_max = self.horizon() - 1;
                vec![0, t_max / 2, t_max]
            };
            for &t in &slots {
                let f = self.cost(t, j);
                let zmax = ty.capacity;
                let mut prev = f.eval(0.0);
                if !prev.is_finite() || prev < 0.0 {
                    return Err(InstanceError::NonConvexCost {
                        j,
                        t,
                        reason: format!("f(0) = {prev} is not finite and non-negative"),
                    });
                }
                for i in 1..=SAMPLES {
                    let z = zmax * i as f64 / SAMPLES as f64;
                    let v = f.eval(z);
                    if !v.is_finite() || v < 0.0 {
                        return Err(InstanceError::NonConvexCost {
                            j,
                            t,
                            reason: format!("f({z}) = {v} is not finite and non-negative"),
                        });
                    }
                    if v < prev - 1e-9 * prev.abs().max(1.0) {
                        return Err(InstanceError::NonConvexCost {
                            j,
                            t,
                            reason: format!("decreasing: f({z}) = {v} < {prev}"),
                        });
                    }
                    prev = v;
                }
                // midpoint convexity on a few triples
                for i in 0..SAMPLES - 1 {
                    let a = zmax * i as f64 / SAMPLES as f64;
                    let b = zmax * (i + 2) as f64 / SAMPLES as f64;
                    let mid = 0.5 * (a + b);
                    let lhs = f.eval(mid);
                    let rhs = 0.5 * (f.eval(a) + f.eval(b));
                    if lhs > rhs + 1e-7 * rhs.abs().max(1.0) {
                        return Err(InstanceError::NonConvexCost {
                            j,
                            t,
                            reason: format!("midpoint convexity violated at [{a}, {b}]"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Instance`], validating on [`InstanceBuilder::build`].
#[derive(Default)]
pub struct InstanceBuilder {
    types: Vec<ServerType>,
    loads: Vec<f64>,
    counts_over_time: Option<Vec<Vec<u32>>>,
}

impl InstanceBuilder {
    /// Add one server type.
    #[must_use]
    pub fn server_type(mut self, ty: ServerType) -> Self {
        self.types.push(ty);
        self
    }

    /// Add several server types.
    #[must_use]
    pub fn server_types(mut self, tys: impl IntoIterator<Item = ServerType>) -> Self {
        self.types.extend(tys);
        self
    }

    /// Set the arrival sequence `λ_1 … λ_T`.
    #[must_use]
    pub fn loads(mut self, loads: impl Into<Vec<f64>>) -> Self {
        self.loads = loads.into();
        self
    }

    /// Supply a time-varying fleet-size matrix `m_{t,j}` (T rows, d
    /// columns) — the Section 4.3 extension.
    #[must_use]
    pub fn counts_over_time(mut self, counts: Vec<Vec<u32>>) -> Self {
        self.counts_over_time = Some(counts);
        self
    }

    /// Validate and build the instance.
    pub fn build(self) -> Result<Instance, InstanceError> {
        let inst = Instance {
            types: self.types,
            loads: self.loads,
            counts_over_time: self.counts_over_time,
        };
        inst.validate()?;
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, CostSpec};
    use crate::util::approx_eq;

    fn simple() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("slow", 3, 2.0, 1.0, CostModel::linear(1.0, 1.0)))
            .server_type(ServerType::new("fast", 2, 6.0, 4.0, CostModel::power(2.0, 1.0, 2.0)))
            .loads(vec![1.0, 5.0, 0.5])
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let inst = simple();
        assert_eq!(inst.horizon(), 3);
        assert_eq!(inst.num_types(), 2);
        assert!(approx_eq(inst.load(1), 5.0));
        assert_eq!(inst.server_count(0, 0), 3);
        assert_eq!(inst.max_counts(), vec![3, 2]);
        assert!(inst.is_time_independent());
        assert!(!inst.is_load_independent());
    }

    #[test]
    fn admissibility() {
        let inst = simple();
        assert!(inst.is_admissible(1, &Config::new(vec![1, 1])));
        assert!(!inst.is_admissible(1, &Config::new(vec![3, 0]))); // cap 3 < 5
        assert!(!inst.is_admissible(0, &Config::new(vec![4, 0]))); // exceeds m_0
    }

    #[test]
    fn truncation_gives_prefix_instance() {
        let inst = simple();
        let pre = inst.truncated(2);
        assert_eq!(pre.horizon(), 2);
        assert!(approx_eq(pre.load(1), 5.0));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Instance::builder().loads(vec![1.0]).build(),
            Err(InstanceError::NoServerTypes)
        ));
        let err = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .build();
        assert!(matches!(err, Err(InstanceError::EmptyHorizon)));
    }

    #[test]
    fn rejects_infeasible_load() {
        let err = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![2.0])
            .build();
        assert!(matches!(err, Err(InstanceError::InfeasibleLoad { t: 0, .. })));
    }

    #[test]
    fn rejects_short_cost_profile() {
        let spec = CostSpec::scaled(CostModel::constant(1.0), vec![1.0]);
        let err = Instance::builder()
            .server_type(ServerType::with_spec("a", 2, 1.0, 1.0, spec))
            .loads(vec![1.0, 1.0])
            .build();
        assert!(matches!(err, Err(InstanceError::CostHorizonMismatch { .. })));
    }

    #[test]
    fn rejects_nonconvex_custom_cost() {
        use crate::cost::CostFunction;
        #[derive(Debug)]
        struct Concave;
        impl CostFunction for Concave {
            fn eval(&self, z: f64) -> f64 {
                (1.0 + z).sqrt()
            }
        }
        let model = CostModel::Custom(std::sync::Arc::new(Concave));
        let err = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 4.0, model))
            .loads(vec![1.0])
            .build();
        assert!(matches!(err, Err(InstanceError::NonConvexCost { .. })));
    }

    #[test]
    fn time_varying_counts() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 3, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0, 2.0])
            .counts_over_time(vec![vec![1], vec![3]])
            .build()
            .unwrap();
        assert_eq!(inst.server_count(0, 0), 1);
        assert_eq!(inst.server_count(1, 0), 3);
        assert_eq!(inst.max_counts(), vec![3]);
        assert!(inst.has_time_varying_counts());
    }

    #[test]
    fn time_varying_counts_infeasibility_detected() {
        let err = Instance::builder()
            .server_type(ServerType::new("a", 3, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![2.0])
            .counts_over_time(vec![vec![1]])
            .build();
        assert!(matches!(err, Err(InstanceError::InfeasibleLoad { .. })));
    }

    #[test]
    fn rejects_bad_counts_shape() {
        let err = Instance::builder()
            .server_type(ServerType::new("a", 3, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0, 1.0])
            .counts_over_time(vec![vec![1]])
            .build();
        assert!(matches!(err, Err(InstanceError::CountsShapeMismatch { .. })));
    }
}

//! Server types — the heterogeneous building blocks of the data center.

use crate::cost::{CostModel, CostSpec};

/// One of the `d` server types of the data center.
///
/// Carries everything the paper attaches to type `j`: the fleet size `m_j`,
/// the power-up cost `β_j`, the per-slot capacity `z^max_j`, and the
/// (possibly time-dependent) operating-cost function `f_{t,j}`.
#[derive(Clone, Debug)]
pub struct ServerType {
    /// Human-readable label used in reports ("gpu-node", "legacy-xeon"…).
    pub name: String,
    /// Fleet size `m_j`: how many servers of this type exist.
    pub count: u32,
    /// Switching cost `β_j ≥ 0` paid for each power-up. Power-downs are
    /// free; the paper folds their cost into `β_j`.
    pub switching_cost: f64,
    /// Capacity `z^max_j > 0`: maximum job volume one server processes in
    /// a single slot.
    pub capacity: f64,
    /// Operating-cost specification `f_{t,j}`.
    pub cost: CostSpec,
}

impl ServerType {
    /// A server type with a time-independent cost model.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        count: u32,
        switching_cost: f64,
        capacity: f64,
        cost: CostModel,
    ) -> Self {
        Self { name: name.into(), count, switching_cost, capacity, cost: CostSpec::Uniform(cost) }
    }

    /// A server type with an explicit (possibly time-dependent) cost spec.
    #[must_use]
    pub fn with_spec(
        name: impl Into<String>,
        count: u32,
        switching_cost: f64,
        capacity: f64,
        cost: CostSpec,
    ) -> Self {
        Self { name: name.into(), count, switching_cost, capacity, cost }
    }

    /// Idle operating cost `f_{t,j}(0)` at slot `t` — the paper's `l_{t,j}`.
    #[must_use]
    pub fn idle_cost(&self, t: usize) -> f64 {
        self.cost.at(t).idle()
    }

    /// Total capacity of the whole fleet of this type: `m_j · z^max_j`.
    #[must_use]
    pub fn fleet_capacity(&self) -> f64 {
        f64::from(self.count) * self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn constructors_and_accessors() {
        let s = ServerType::new("cpu", 10, 6.0, 1.5, CostModel::linear(1.0, 2.0));
        assert_eq!(s.count, 10);
        assert!(approx_eq(s.idle_cost(0), 1.0));
        assert!(approx_eq(s.fleet_capacity(), 15.0));
    }

    #[test]
    fn time_dependent_idle_cost() {
        let spec = CostSpec::scaled(CostModel::constant(2.0), vec![1.0, 3.0]);
        let s = ServerType::with_spec("gpu", 4, 10.0, 4.0, spec);
        assert!(approx_eq(s.idle_cost(0), 2.0));
        assert!(approx_eq(s.idle_cost(1), 6.0));
    }
}

//! # rsz-core — problem model for heterogeneous data-center right-sizing
//!
//! This crate defines the problem model of
//! *Albers & Quedenfeld, "Algorithms for Right-Sizing Heterogeneous Data
//! Centers", SPAA 2021* (arXiv:2107.14692):
//!
//! * a data center with `d` server **types**; type `j` has `m_j` servers,
//!   power-up (switching) cost `β_j`, per-slot capacity `z^max_j`, and a
//!   convex increasing per-server operating-cost function `f_{t,j}`,
//! * a **problem instance** `I = (T, d, m, β, F, Λ)` supplying a job volume
//!   `λ_t` for every time slot,
//! * integral **schedules** `X = (x_1, …, x_T)` stating how many servers of
//!   each type are active in each slot, with total cost
//!   `C(X) = Σ_t [ g_t(x_t) + Σ_j β_j (x_{t,j} − x_{t−1,j})^+ ]`.
//!
//! The per-slot operating cost `g_t(x)` is itself an optimization problem
//! (how to split `λ_t` across types); solving it is the job of the
//! `rsz-dispatch` crate. This crate stays dependency-free and exposes the
//! [`GtOracle`] trait so schedule costing can be computed against any
//! dispatch solver.
//!
//! Time slots are **0-based** throughout the code base; the paper's slot `t`
//! (1-based) corresponds to index `t − 1` here.

#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod cost;
pub mod error;
pub mod instance;
pub mod objective;
pub mod render;
pub mod schedule;
pub mod server;
pub mod util;

pub use config::Config;
pub use cost::{CostFunction, CostModel, CostRef, CostSpec};
pub use error::{InstanceError, SolveError};
pub use instance::{Instance, InstanceBuilder};
pub use objective::{CostBreakdown, GtOracle, SlotEval};
pub use schedule::Schedule;
pub use server::ServerType;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::config::Config;
    pub use crate::cost::{CostFunction, CostModel, CostRef, CostSpec};
    pub use crate::error::{InstanceError, SolveError};
    pub use crate::instance::{Instance, InstanceBuilder};
    pub use crate::objective::{CostBreakdown, GtOracle, SlotEval};
    pub use crate::schedule::Schedule;
    pub use crate::server::ServerType;
}

//! ASCII rendering of schedules and traces — the figures of the paper as
//! terminal output.
//!
//! Renders a per-type step chart of active servers over time (one row
//! per count level, like Figures 1/3/5 of the paper) plus an optional
//! load sparkline. Used by the examples and the experiment reports.

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Render one type's active counts as a step chart: one text row per
/// count level (top = highest), `█` marking slots at-or-above the level.
///
/// ```text
/// 3 |   ██
/// 2 |  ████
/// 1 | ██████ █
///   +----------
/// ```
#[must_use]
pub fn count_chart(counts: &[u32], label: &str) -> String {
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    if max == 0 {
        out.push_str(&format!("{label}: (always off)\n"));
        return out;
    }
    let width = max.to_string().len();
    for level in (1..=max).rev() {
        out.push_str(&format!("{level:>width$} |"));
        for &c in counts {
            out.push(if c >= level { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>width$} +", ""));
    out.push_str(&"-".repeat(counts.len()));
    out.push('\n');
    out.push_str(&format!("{:>width$}  {label}\n", ""));
    out
}

/// Render a load trace as a one-line sparkline using eighth-block
/// characters, scaled to the trace's own peak.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = values.iter().copied().fold(0.0_f64, f64::max);
    if peak <= 0.0 {
        return " ".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / peak) * 8.0).round().clamp(0.0, 8.0) as usize;
            BLOCKS[idx]
        })
        .collect()
}

/// Render a whole schedule: load sparkline plus one step chart per type.
#[must_use]
pub fn schedule_chart(instance: &Instance, schedule: &Schedule) -> String {
    let mut out = String::new();
    out.push_str("load  ");
    out.push_str(&sparkline(instance.loads()));
    out.push('\n');
    for j in 0..instance.num_types() {
        let counts: Vec<u32> = (0..schedule.len()).map(|t| schedule.count(t, j)).collect();
        out.push('\n');
        out.push_str(&count_chart(&counts, &instance.types()[j].name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::server::ServerType;

    #[test]
    fn chart_shape() {
        let s = count_chart(&[1, 2, 2, 0, 3], "t0");
        let lines: Vec<&str> = s.lines().collect();
        // 3 levels + axis + label
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains('█'));
        assert!(lines[0].starts_with('3'));
        assert!(lines[2].starts_with('1'));
        // level-1 row marks slots 0,1,2,4 but not 3
        let row1 = lines[2];
        let cells: Vec<char> = row1.chars().skip(row1.find('|').unwrap() + 1).collect();
        assert_eq!(cells, vec!['█', '█', '█', ' ', '█']);
    }

    #[test]
    fn chart_all_off() {
        assert!(count_chart(&[0, 0], "x").contains("always off"));
    }

    #[test]
    fn sparkline_scales_to_peak() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
        assert_eq!(sparkline(&[0.0, 0.0]), "  ");
    }

    #[test]
    fn full_schedule_chart() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0, 2.0, 0.0])
            .build()
            .unwrap();
        let sched = Schedule::from_counts(vec![vec![1], vec![2], vec![0]]);
        let s = schedule_chart(&inst, &sched);
        assert!(s.contains("load"));
        assert!(s.contains('a'));
        assert!(s.contains('█'));
    }
}

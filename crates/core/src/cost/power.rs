//! Power-law operating cost — super-linear CPU voltage/frequency scaling.

use super::CostFunction;

/// `f(z) = idle + coef·z^alpha` with `alpha ≥ 1`.
///
/// Models dynamic voltage/frequency scaling: sustaining higher load
/// requires higher frequency and super-linearly higher voltage, so the
/// power draw grows like `z^α` with `α ≈ 2–3` in practice (Wierman et al.,
/// INFOCOM 2009). `alpha = 1` degenerates to [`super::LinearCost`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerCost {
    idle: f64,
    coef: f64,
    alpha: f64,
}

impl PowerCost {
    /// Power-law cost with intercept `idle ≥ 0`, coefficient `coef ≥ 0` and
    /// exponent `alpha ≥ 1` (required for convexity).
    ///
    /// # Panics
    /// Panics if any parameter is out of range or not finite.
    #[must_use]
    pub fn new(idle: f64, coef: f64, alpha: f64) -> Self {
        assert!(idle.is_finite() && idle >= 0.0, "idle cost must be finite and ≥ 0");
        assert!(coef.is_finite() && coef >= 0.0, "coefficient must be finite and ≥ 0");
        assert!(alpha.is_finite() && alpha >= 1.0, "exponent must be ≥ 1 for convexity");
        Self { idle, coef, alpha }
    }

    /// Idle cost `f(0)`.
    #[must_use]
    pub fn idle_cost(&self) -> f64 {
        self.idle
    }

    /// Load coefficient.
    #[must_use]
    pub fn coef(&self) -> f64 {
        self.coef
    }

    /// Exponent `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CostFunction for PowerCost {
    fn eval(&self, z: f64) -> f64 {
        self.idle + self.coef * z.powf(self.alpha)
    }

    fn deriv(&self, z: f64) -> f64 {
        if self.coef == 0.0 {
            return 0.0;
        }
        self.coef * self.alpha * z.powf(self.alpha - 1.0)
    }

    fn deriv_inv(&self, slope: f64) -> Option<f64> {
        if self.coef == 0.0 {
            return Some(if slope >= 0.0 { f64::INFINITY } else { 0.0 });
        }
        if slope <= 0.0 {
            return Some(0.0);
        }
        if (self.alpha - 1.0).abs() < 1e-12 {
            // Linear: constant derivative `coef`.
            return Some(if slope >= self.coef { f64::INFINITY } else { 0.0 });
        }
        // f'(z) = coef·α·z^(α−1) = slope  ⇒  z = (slope / (coef·α))^(1/(α−1))
        Some((slope / (self.coef * self.alpha)).powf(1.0 / (self.alpha - 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn quadratic_case() {
        let f = PowerCost::new(1.0, 2.0, 2.0);
        assert!(approx_eq(f.eval(0.0), 1.0));
        assert!(approx_eq(f.eval(3.0), 19.0));
        assert!(approx_eq(f.deriv(3.0), 12.0));
    }

    #[test]
    fn deriv_inv_round_trips() {
        let f = PowerCost::new(0.5, 1.5, 3.0);
        for z in [0.1, 0.7, 2.0, 5.0] {
            let slope = f.deriv(z);
            let back = f.deriv_inv(slope).unwrap();
            assert!(approx_eq(back, z), "z={z} back={back}");
        }
    }

    #[test]
    fn deriv_inv_zero_slope() {
        let f = PowerCost::new(0.0, 1.0, 2.0);
        assert_eq!(f.deriv_inv(0.0), Some(0.0));
    }

    #[test]
    fn alpha_one_behaves_linear() {
        let f = PowerCost::new(1.0, 2.0, 1.0);
        assert!(approx_eq(f.eval(3.0), 7.0));
        assert_eq!(f.deriv_inv(1.0), Some(0.0));
        assert_eq!(f.deriv_inv(2.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_concave_exponent() {
        let _ = PowerCost::new(0.0, 1.0, 0.5);
    }
}

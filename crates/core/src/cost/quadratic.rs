//! Quadratic operating cost — linear power plus congestion penalty.

use super::CostFunction;

/// `f(z) = idle + a·z + b·z²` with `a, b ≥ 0`.
///
/// A common compromise between the affine and power-law models: the linear
/// term captures energy proportionality, the quadratic term a smooth
/// delay/congestion penalty as servers approach saturation. Its derivative
/// has a closed-form inverse, making dispatch exact and fast.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuadraticCost {
    idle: f64,
    a: f64,
    b: f64,
}

impl QuadraticCost {
    /// Quadratic cost with intercept `idle ≥ 0` and coefficients
    /// `a, b ≥ 0`.
    ///
    /// # Panics
    /// Panics if any parameter is negative or not finite.
    #[must_use]
    pub fn new(idle: f64, a: f64, b: f64) -> Self {
        assert!(idle.is_finite() && idle >= 0.0, "idle cost must be finite and ≥ 0");
        assert!(a.is_finite() && a >= 0.0, "linear coefficient must be finite and ≥ 0");
        assert!(b.is_finite() && b >= 0.0, "quadratic coefficient must be finite and ≥ 0");
        Self { idle, a, b }
    }

    /// Idle cost `f(0)`.
    #[must_use]
    pub fn idle_cost(&self) -> f64 {
        self.idle
    }

    /// Linear coefficient.
    #[must_use]
    pub fn linear_coef(&self) -> f64 {
        self.a
    }

    /// Quadratic coefficient.
    #[must_use]
    pub fn quadratic_coef(&self) -> f64 {
        self.b
    }
}

impl CostFunction for QuadraticCost {
    fn eval(&self, z: f64) -> f64 {
        self.idle + self.a * z + self.b * z * z
    }

    fn deriv(&self, z: f64) -> f64 {
        self.a + 2.0 * self.b * z
    }

    fn deriv_inv(&self, slope: f64) -> Option<f64> {
        if self.b == 0.0 {
            return Some(if slope >= self.a { f64::INFINITY } else { 0.0 });
        }
        // a + 2bz = slope  ⇒  z = (slope − a) / (2b), clamped at 0.
        Some(((slope - self.a) / (2.0 * self.b)).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn eval_and_deriv() {
        let f = QuadraticCost::new(1.0, 2.0, 0.5);
        assert!(approx_eq(f.eval(2.0), 7.0));
        assert!(approx_eq(f.deriv(2.0), 4.0));
    }

    #[test]
    fn deriv_inv_round_trips() {
        let f = QuadraticCost::new(1.0, 2.0, 0.5);
        for z in [0.0, 0.3, 1.0, 4.0] {
            let back = f.deriv_inv(f.deriv(z)).unwrap();
            assert!(approx_eq(back, z));
        }
    }

    #[test]
    fn degenerates_to_linear_when_b_zero() {
        let f = QuadraticCost::new(1.0, 2.0, 0.0);
        assert_eq!(f.deriv_inv(1.9), Some(0.0));
        assert_eq!(f.deriv_inv(2.0), Some(f64::INFINITY));
    }
}

//! Convex piecewise-linear operating cost — empirical power curves.

use super::CostFunction;

/// A convex, increasing piecewise-linear function through breakpoints
/// `(z_0, c_0), …, (z_k, c_k)` with `z_0 = 0`, extended linearly beyond the
/// last breakpoint with the final segment's slope.
///
/// This is how measured server power curves (e.g. SPECpower data) enter
/// the model: sample the curve, take the convex lower envelope, feed the
/// breakpoints in.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseLinearCost {
    /// Breakpoint loads, strictly increasing, starting at 0.
    zs: Vec<f64>,
    /// Costs at the breakpoints, non-decreasing, convex.
    cs: Vec<f64>,
    /// Segment slopes, `slopes[i]` applies on `[zs[i], zs[i+1])`.
    slopes: Vec<f64>,
}

impl PiecewiseLinearCost {
    /// Build from breakpoints `(z, cost)`.
    ///
    /// # Panics
    /// Panics unless there are ≥ 2 points, the first load is `0`, loads are
    /// strictly increasing, costs are non-negative and non-decreasing, and
    /// the induced slopes are non-decreasing (convexity).
    #[must_use]
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two breakpoints");
        assert!(points[0].0 == 0.0, "first breakpoint must be at load 0");
        let mut zs = Vec::with_capacity(points.len());
        let mut cs = Vec::with_capacity(points.len());
        for &(z, c) in points {
            assert!(z.is_finite() && c.is_finite(), "breakpoints must be finite");
            assert!(c >= 0.0, "costs must be non-negative");
            if let Some(&prev) = zs.last() {
                assert!(z > prev, "breakpoint loads must be strictly increasing");
            }
            if let Some(&prev) = cs.last() {
                assert!(c >= prev, "cost must be non-decreasing (increasing function)");
            }
            zs.push(z);
            cs.push(c);
        }
        let mut slopes = Vec::with_capacity(zs.len() - 1);
        for i in 0..zs.len() - 1 {
            let s = (cs[i + 1] - cs[i]) / (zs[i + 1] - zs[i]);
            if let Some(&prev) = slopes.last() {
                assert!(
                    s >= prev - 1e-12,
                    "slopes must be non-decreasing for convexity (segment {i}: {s} < {prev})"
                );
            }
            slopes.push(s);
        }
        Self { zs, cs, slopes }
    }

    /// The breakpoints this function interpolates.
    pub fn breakpoints(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.zs.iter().copied().zip(self.cs.iter().copied())
    }

    /// Build from *measured* samples by taking their lower convex
    /// envelope — the way empirical power curves (e.g. SPECpower load
    /// steps) enter the model without hand-massaging: samples that sit
    /// above the envelope (measurement noise, thermal throttling
    /// artifacts) are dropped automatically.
    ///
    /// Samples are sorted by load; duplicates keep the cheapest cost; a
    /// sample at load 0 is required (idle power must be measured). The
    /// result is also forced non-decreasing by clipping costs from below
    /// at the running maximum before the envelope is taken.
    ///
    /// # Panics
    /// Panics if fewer than 2 distinct loads remain or no sample has
    /// load 0.
    #[must_use]
    pub fn convex_envelope(samples: &[(f64, f64)]) -> Self {
        let mut pts: Vec<(f64, f64)> = samples
            .iter()
            .copied()
            .filter(|(z, c)| z.is_finite() && c.is_finite() && *z >= 0.0 && *c >= 0.0)
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite loads"));
        // Deduplicate loads, keeping the cheapest measurement.
        pts.dedup_by(|next, prev| {
            if (next.0 - prev.0).abs() < 1e-12 {
                prev.1 = prev.1.min(next.1);
                true
            } else {
                false
            }
        });
        assert!(pts.len() >= 2, "need at least two distinct sample loads");
        assert!(pts[0].0 == 0.0, "a load-0 (idle) sample is required");
        // Lower convex hull (Andrew's monotone chain on the lower side):
        // drops samples above any chord (noise/throttling artifacts).
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for p in pts {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // b above segment a→p ⇒ b is not on the lower envelope.
                let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
                if cross <= 1e-12 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        // Monotonize: dips below the running maximum (sub-idle noise) are
        // clipped up. For a convex sequence this preserves convexity: the
        // clipped prefix is flat (slope 0) and the first unclipped
        // segment's slope only shrinks toward it.
        let mut running = 0.0_f64;
        for p in &mut hull {
            running = running.max(p.1);
            p.1 = running;
        }
        Self::new(&hull)
    }

    /// Index of the segment containing load `z` (last segment if beyond).
    fn segment(&self, z: f64) -> usize {
        // zs is short (empirical curves have a handful of points), so a
        // linear scan beats binary search in practice.
        let mut i = 0;
        while i + 1 < self.slopes.len() && z >= self.zs[i + 1] {
            i += 1;
        }
        i
    }
}

impl CostFunction for PiecewiseLinearCost {
    fn eval(&self, z: f64) -> f64 {
        let i = self.segment(z);
        self.cs[i] + self.slopes[i] * (z - self.zs[i])
    }

    fn deriv(&self, z: f64) -> f64 {
        // Right derivative at breakpoints, consistent with the dispatch
        // solver's sup-based bisection.
        self.slopes[self.segment(z)]
    }

    fn deriv_inv(&self, slope: f64) -> Option<f64> {
        // Largest z whose right-derivative is ≤ slope: scan segments.
        if self.slopes.is_empty() || slope < self.slopes[0] {
            return Some(0.0);
        }
        let last = *self.slopes.last().unwrap();
        if slope >= last {
            return Some(f64::INFINITY);
        }
        // First segment whose slope exceeds `slope`: optimal load is its
        // left endpoint.
        for (i, &s) in self.slopes.iter().enumerate() {
            if s > slope {
                return Some(self.zs[i]);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    fn curve() -> PiecewiseLinearCost {
        // idle 1.0, then slopes 1, 2, 4
        PiecewiseLinearCost::new(&[(0.0, 1.0), (1.0, 2.0), (2.0, 4.0), (3.0, 8.0)])
    }

    #[test]
    fn interpolates_breakpoints() {
        let f = curve();
        assert!(approx_eq(f.eval(0.0), 1.0));
        assert!(approx_eq(f.eval(1.0), 2.0));
        assert!(approx_eq(f.eval(2.0), 4.0));
        assert!(approx_eq(f.eval(3.0), 8.0));
    }

    #[test]
    fn interpolates_between_and_extends_beyond() {
        let f = curve();
        assert!(approx_eq(f.eval(0.5), 1.5));
        assert!(approx_eq(f.eval(2.5), 6.0));
        assert!(approx_eq(f.eval(4.0), 12.0)); // extends with slope 4
    }

    #[test]
    fn right_derivative() {
        let f = curve();
        assert!(approx_eq(f.deriv(0.0), 1.0));
        assert!(approx_eq(f.deriv(1.0), 2.0));
        assert!(approx_eq(f.deriv(2.5), 4.0));
    }

    #[test]
    fn deriv_inv_picks_segment_boundaries() {
        let f = curve();
        assert_eq!(f.deriv_inv(0.5), Some(0.0));
        assert_eq!(f.deriv_inv(1.5), Some(1.0));
        assert_eq!(f.deriv_inv(3.0), Some(2.0));
        assert_eq!(f.deriv_inv(4.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "slopes must be non-decreasing")]
    fn rejects_concave_points() {
        let _ = PiecewiseLinearCost::new(&[(0.0, 0.0), (1.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn envelope_drops_outliers_above() {
        // A noisy middle sample above the chord is discarded.
        let f = PiecewiseLinearCost::convex_envelope(&[
            (0.0, 1.0),
            (1.0, 9.0), // thermal artifact: way above the 0→2 chord
            (2.0, 3.0),
        ]);
        assert_eq!(f.breakpoints().count(), 2);
        assert!(approx_eq(f.eval(1.0), 2.0)); // interpolated, not 9
    }

    #[test]
    fn envelope_keeps_convex_samples() {
        let f = PiecewiseLinearCost::convex_envelope(&[
            (2.0, 4.0),
            (0.0, 1.0),
            (1.0, 2.0), // below the 0→2 chord (1 + 1.5) → kept
            (3.0, 8.0),
        ]);
        assert_eq!(f.breakpoints().count(), 4);
        assert!(approx_eq(f.eval(1.0), 2.0));
    }

    #[test]
    fn envelope_dedups_and_monotonizes() {
        // Duplicate loads keep the cheaper cost; a dipping sample is
        // raised to the running maximum before hulling.
        let f = PiecewiseLinearCost::convex_envelope(&[
            (0.0, 2.0),
            (0.0, 1.0), // duplicate load, cheaper → wins
            (1.0, 0.5), // dips below idle → clipped up to 1.0
            (2.0, 3.0),
        ]);
        assert!(approx_eq(f.eval(0.0), 1.0));
        // non-decreasing everywhere
        assert!(f.eval(0.5) >= f.eval(0.0) - 1e-12);
        assert!(f.eval(2.0) >= f.eval(1.0));
    }

    #[test]
    #[should_panic(expected = "load-0")]
    fn envelope_requires_idle_sample() {
        let _ = PiecewiseLinearCost::convex_envelope(&[(1.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicate_loads() {
        let _ = PiecewiseLinearCost::new(&[(0.0, 0.0), (0.0, 1.0)]);
    }
}

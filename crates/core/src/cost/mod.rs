//! Convex per-server operating-cost functions `f_{t,j}`.
//!
//! The paper requires each `f_{t,j} : [0, z^max_j] → ℝ≥0` to be convex,
//! increasing and non-negative. `f(0)` is the **idle** operating cost — the
//! power an active but unloaded server draws — which drives the ski-rental
//! style power-down rules of the online algorithms.
//!
//! Built-in shapes (all standard in the right-sizing literature):
//!
//! | variant | formula | models |
//! |---|---|---|
//! | [`ConstantCost`]  | `f(z) = c` | load-independent power (the CIAC'21 special case) |
//! | [`LinearCost`]    | `f(z) = idle + rate·z` | energy ∝ utilization |
//! | [`PowerCost`]     | `f(z) = idle + coef·z^α` | super-linear CPU voltage scaling (α ≈ 2–3) |
//! | [`QuadraticCost`] | `f(z) = idle + a·z + b·z²` | linear + congestion penalty |
//! | [`PiecewiseLinearCost`] | convex piecewise linear | empirical power curves |
//!
//! Arbitrary user-defined functions plug in through [`CostFunction`] and
//! `CostModel::Custom`.
//!
//! Time dependence is expressed by [`CostSpec`]: a single model for all
//! slots, a per-slot scaling profile (electricity prices), or fully
//! per-slot models. [`CostRef`] is the cheap per-slot view handed to
//! solvers.

mod constant;
mod linear;
mod piecewise;
mod power;
mod quadratic;
mod spec;

pub use constant::ConstantCost;
pub use linear::LinearCost;
pub use piecewise::PiecewiseLinearCost;
pub use power::PowerCost;
pub use quadratic::QuadraticCost;
pub use spec::CostSpec;

use std::sync::Arc;

/// A convex, increasing, non-negative per-server operating-cost function.
///
/// Implementors must guarantee convexity and monotonicity on `[0, ∞)`;
/// [`crate::instance::Instance::validate`] spot-checks both by sampling.
pub trait CostFunction: Send + Sync + std::fmt::Debug {
    /// Operating cost of a single server running at load `z ≥ 0` for one
    /// time slot.
    fn eval(&self, z: f64) -> f64;

    /// Derivative `f'(z)`. The default uses central finite differences,
    /// which is adequate for the dispatch solver's bisections; exact
    /// implementations speed up dispatch considerably.
    fn deriv(&self, z: f64) -> f64 {
        let h = (z.abs() * 1e-6).max(1e-9);
        let lo = (z - h).max(0.0);
        (self.eval(z + h) - self.eval(lo)) / (z + h - lo)
    }

    /// Inverse of the derivative: the load `z ≥ 0` with `f'(z) = slope`,
    /// if a closed form exists. Used by the KKT dispatch fast path.
    ///
    /// Return `None` (the default) to fall back to bisection. If the
    /// derivative never reaches `slope`, return the boundary value (`0.0`
    /// when `slope` is below `f'(0)`, a large value when above the
    /// supremum).
    fn deriv_inv(&self, _slope: f64) -> Option<f64> {
        None
    }
}

/// A concrete cost-function shape. An enum rather than a bare trait object
/// so the built-in shapes dispatch statically in the DP hot loops, while
/// [`CostModel::Custom`] keeps the model open for extension.
#[derive(Clone, Debug)]
pub enum CostModel {
    /// Load-independent cost `f(z) = c`.
    Constant(ConstantCost),
    /// Affine cost `f(z) = idle + rate·z`.
    Linear(LinearCost),
    /// Power-law cost `f(z) = idle + coef·z^alpha`, `alpha ≥ 1`.
    Power(PowerCost),
    /// Quadratic cost `f(z) = idle + a·z + b·z²`.
    Quadratic(QuadraticCost),
    /// Convex piecewise-linear cost through given breakpoints.
    PiecewiseLinear(PiecewiseLinearCost),
    /// User-supplied convex increasing function.
    Custom(Arc<dyn CostFunction>),
}

impl CostModel {
    /// Evaluate the cost at load `z`.
    #[inline]
    #[must_use]
    pub fn eval(&self, z: f64) -> f64 {
        match self {
            CostModel::Constant(c) => c.eval(z),
            CostModel::Linear(c) => c.eval(z),
            CostModel::Power(c) => c.eval(z),
            CostModel::Quadratic(c) => c.eval(z),
            CostModel::PiecewiseLinear(c) => c.eval(z),
            CostModel::Custom(c) => c.eval(z),
        }
    }

    /// Derivative at load `z`.
    #[inline]
    #[must_use]
    pub fn deriv(&self, z: f64) -> f64 {
        match self {
            CostModel::Constant(c) => c.deriv(z),
            CostModel::Linear(c) => c.deriv(z),
            CostModel::Power(c) => c.deriv(z),
            CostModel::Quadratic(c) => c.deriv(z),
            CostModel::PiecewiseLinear(c) => c.deriv(z),
            CostModel::Custom(c) => c.deriv(z),
        }
    }

    /// Inverse derivative, if the shape has a closed form.
    #[inline]
    #[must_use]
    pub fn deriv_inv(&self, slope: f64) -> Option<f64> {
        match self {
            CostModel::Constant(c) => c.deriv_inv(slope),
            CostModel::Linear(c) => c.deriv_inv(slope),
            CostModel::Power(c) => c.deriv_inv(slope),
            CostModel::Quadratic(c) => c.deriv_inv(slope),
            CostModel::PiecewiseLinear(c) => c.deriv_inv(slope),
            CostModel::Custom(c) => c.deriv_inv(slope),
        }
    }

    /// Idle operating cost `f(0)` — the paper's `l_{t,j}` before scaling.
    #[inline]
    #[must_use]
    pub fn idle(&self) -> f64 {
        self.eval(0.0)
    }

    /// `true` if the cost does not depend on the load at all, which lets
    /// dispatch and DP skip the simplex optimization entirely.
    #[must_use]
    pub fn is_load_independent(&self) -> bool {
        matches!(self, CostModel::Constant(_))
    }

    /// Convenience constructor: load-independent cost.
    #[must_use]
    pub fn constant(cost: f64) -> Self {
        CostModel::Constant(ConstantCost::new(cost))
    }

    /// Convenience constructor: affine cost `idle + rate·z`.
    #[must_use]
    pub fn linear(idle: f64, rate: f64) -> Self {
        CostModel::Linear(LinearCost::new(idle, rate))
    }

    /// Convenience constructor: power-law cost `idle + coef·z^alpha`.
    #[must_use]
    pub fn power(idle: f64, coef: f64, alpha: f64) -> Self {
        CostModel::Power(PowerCost::new(idle, coef, alpha))
    }

    /// Convenience constructor: quadratic cost `idle + a·z + b·z²`.
    #[must_use]
    pub fn quadratic(idle: f64, a: f64, b: f64) -> Self {
        CostModel::Quadratic(QuadraticCost::new(idle, a, b))
    }
}

/// A per-slot view of a cost function: a base model times a non-negative
/// scale factor. Scaling by `s` preserves convexity/monotonicity and models
/// both electricity-price profiles and the sub-slot refinement of
/// Algorithm C (where slot `t` is split into `ñ_t` pieces costing
/// `f_{t,j}/ñ_t` each).
#[derive(Clone, Copy, Debug)]
pub struct CostRef<'a> {
    model: &'a CostModel,
    scale: f64,
}

impl<'a> CostRef<'a> {
    /// View `model` scaled by `scale ≥ 0`.
    #[must_use]
    pub fn new(model: &'a CostModel, scale: f64) -> Self {
        debug_assert!(scale >= 0.0, "cost scale must be non-negative");
        Self { model, scale }
    }

    /// The underlying unscaled model.
    #[must_use]
    pub fn model(&self) -> &'a CostModel {
        self.model
    }

    /// The scale factor applied to the base model.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Scaled evaluation `scale · f(z)`.
    #[inline]
    #[must_use]
    pub fn eval(&self, z: f64) -> f64 {
        self.scale * self.model.eval(z)
    }

    /// Scaled derivative `scale · f'(z)`.
    #[inline]
    #[must_use]
    pub fn deriv(&self, z: f64) -> f64 {
        self.scale * self.model.deriv(z)
    }

    /// Inverse of the scaled derivative.
    #[inline]
    #[must_use]
    pub fn deriv_inv(&self, slope: f64) -> Option<f64> {
        if self.scale == 0.0 {
            // Zero-scaled cost is identically zero; any load is optimal.
            return Some(f64::INFINITY);
        }
        self.model.deriv_inv(slope / self.scale)
    }

    /// Scaled idle cost `scale · f(0)` — the paper's `l_{t,j}`.
    #[inline]
    #[must_use]
    pub fn idle(&self) -> f64 {
        self.scale * self.model.idle()
    }

    /// Whether the scaled model is load independent.
    #[must_use]
    pub fn is_load_independent(&self) -> bool {
        self.scale == 0.0 || self.model.is_load_independent()
    }

    /// Apply an additional scale factor on top of the current one.
    #[must_use]
    pub fn rescaled(&self, extra: f64) -> CostRef<'a> {
        CostRef::new(self.model, self.scale * extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn cost_model_dispatches_to_shape() {
        let m = CostModel::linear(1.0, 2.0);
        assert!(approx_eq(m.eval(0.0), 1.0));
        assert!(approx_eq(m.eval(2.0), 5.0));
        assert!(approx_eq(m.idle(), 1.0));
        assert!(approx_eq(m.deriv(1.0), 2.0));
    }

    #[test]
    fn cost_ref_scales_everything() {
        let m = CostModel::linear(1.0, 2.0);
        let r = CostRef::new(&m, 0.5);
        assert!(approx_eq(r.eval(2.0), 2.5));
        assert!(approx_eq(r.idle(), 0.5));
        assert!(approx_eq(r.deriv(1.0), 1.0));
    }

    #[test]
    fn zero_scale_is_load_independent() {
        let m = CostModel::power(1.0, 3.0, 2.0);
        let r = CostRef::new(&m, 0.0);
        assert!(r.is_load_independent());
        assert_eq!(r.eval(10.0), 0.0);
    }

    #[test]
    fn rescaled_compounds() {
        let m = CostModel::constant(4.0);
        let r = CostRef::new(&m, 0.5).rescaled(0.5);
        assert!(approx_eq(r.eval(0.0), 1.0));
    }

    #[test]
    fn custom_cost_function_works_through_enum() {
        #[derive(Debug)]
        struct Cubic;
        impl CostFunction for Cubic {
            fn eval(&self, z: f64) -> f64 {
                1.0 + z * z * z
            }
        }
        let m = CostModel::Custom(Arc::new(Cubic));
        assert!(approx_eq(m.eval(2.0), 9.0));
        // default finite-difference derivative: 3 z² = 12 at z=2
        assert!((m.deriv(2.0) - 12.0).abs() < 1e-3);
        assert!(m.deriv_inv(1.0).is_none());
    }
}

//! Affine operating cost — energy proportional to utilization.

use super::CostFunction;

/// `f(z) = idle + rate·z`.
///
/// The classic power-proportionality model: an active server draws `idle`
/// watts at zero load and `rate` additional watts per unit of load. With
/// affine costs the dispatch problem has a closed-form greedy solution
/// (route volume to the cheapest marginal rate first).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearCost {
    idle: f64,
    rate: f64,
}

impl LinearCost {
    /// Affine cost with intercept `idle ≥ 0` and slope `rate ≥ 0`.
    ///
    /// # Panics
    /// Panics if either parameter is negative or not finite.
    #[must_use]
    pub fn new(idle: f64, rate: f64) -> Self {
        assert!(idle.is_finite() && idle >= 0.0, "idle cost must be finite and ≥ 0");
        assert!(rate.is_finite() && rate >= 0.0, "rate must be finite and ≥ 0");
        Self { idle, rate }
    }

    /// Idle cost `f(0)`.
    #[must_use]
    pub fn idle_cost(&self) -> f64 {
        self.idle
    }

    /// Marginal cost per unit load.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl CostFunction for LinearCost {
    fn eval(&self, z: f64) -> f64 {
        self.idle + self.rate * z
    }

    fn deriv(&self, _z: f64) -> f64 {
        self.rate
    }

    fn deriv_inv(&self, slope: f64) -> Option<f64> {
        // Constant derivative `rate`: below it no load is worthwhile,
        // at-or-above it load is capacity-limited.
        Some(if slope >= self.rate { f64::INFINITY } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_deriv() {
        let f = LinearCost::new(2.0, 3.0);
        assert_eq!(f.eval(0.0), 2.0);
        assert_eq!(f.eval(2.0), 8.0);
        assert_eq!(f.deriv(7.0), 3.0);
    }

    #[test]
    fn deriv_inv_threshold() {
        let f = LinearCost::new(2.0, 3.0);
        assert_eq!(f.deriv_inv(2.9), Some(0.0));
        assert_eq!(f.deriv_inv(3.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_negative_rate() {
        let _ = LinearCost::new(0.0, -1.0);
    }
}

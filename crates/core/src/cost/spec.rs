//! Time dependence of operating costs.

use std::sync::Arc;

use super::{CostModel, CostRef};

/// How the operating cost of a server type varies over the time horizon.
///
/// Section 2 of the paper assumes time-*independent* costs
/// ([`CostSpec::Uniform`]); Section 3 allows arbitrary per-slot functions.
/// The intermediate [`CostSpec::Scaled`] form — one shape multiplied by a
/// per-slot factor — captures the practically dominant source of time
/// dependence (electricity spot prices) while staying cheap to evaluate.
#[derive(Clone, Debug)]
pub enum CostSpec {
    /// The same cost function `f_j` in every slot (Section 2 setting).
    Uniform(CostModel),
    /// `f_{t,j}(z) = factors[t] · base(z)` — e.g. a price profile.
    Scaled {
        /// The underlying cost shape.
        base: CostModel,
        /// Per-slot multipliers, one per time slot, each ≥ 0.
        factors: Arc<[f64]>,
    },
    /// Fully general per-slot cost functions (Section 3 setting).
    PerSlot(Arc<[CostModel]>),
}

impl CostSpec {
    /// Uniform spec from a model.
    #[must_use]
    pub fn uniform(model: CostModel) -> Self {
        CostSpec::Uniform(model)
    }

    /// Scaled spec from a base model and per-slot factors.
    ///
    /// # Panics
    /// Panics if any factor is negative or non-finite.
    #[must_use]
    pub fn scaled(base: CostModel, factors: impl Into<Arc<[f64]>>) -> Self {
        let factors = factors.into();
        for (t, &f) in factors.iter().enumerate() {
            assert!(f.is_finite() && f >= 0.0, "scale factor at slot {t} must be finite and ≥ 0");
        }
        CostSpec::Scaled { base, factors }
    }

    /// Per-slot spec from a list of models (one per slot).
    #[must_use]
    pub fn per_slot(models: impl Into<Arc<[CostModel]>>) -> Self {
        CostSpec::PerSlot(models.into())
    }

    /// The cost view for (0-based) slot `t`.
    ///
    /// # Panics
    /// Panics if `t` is beyond the profile length of a time-varying spec.
    #[inline]
    #[must_use]
    pub fn at(&self, t: usize) -> CostRef<'_> {
        match self {
            CostSpec::Uniform(m) => CostRef::new(m, 1.0),
            CostSpec::Scaled { base, factors } => CostRef::new(base, factors[t]),
            CostSpec::PerSlot(models) => CostRef::new(&models[t], 1.0),
        }
    }

    /// `true` if the cost is identical in every slot (Algorithm A's
    /// precondition).
    #[must_use]
    pub fn is_time_independent(&self) -> bool {
        match self {
            CostSpec::Uniform(_) => true,
            CostSpec::Scaled { factors, .. } => factors.windows(2).all(|w| w[0] == w[1]),
            CostSpec::PerSlot(_) => false,
        }
    }

    /// Number of slots the spec explicitly covers (`None` = unbounded).
    #[must_use]
    pub fn horizon(&self) -> Option<usize> {
        match self {
            CostSpec::Uniform(_) => None,
            CostSpec::Scaled { factors, .. } => Some(factors.len()),
            CostSpec::PerSlot(models) => Some(models.len()),
        }
    }
}

impl From<CostModel> for CostSpec {
    fn from(model: CostModel) -> Self {
        CostSpec::Uniform(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn uniform_is_time_independent() {
        let s = CostSpec::uniform(CostModel::constant(2.0));
        assert!(s.is_time_independent());
        assert_eq!(s.horizon(), None);
        assert!(approx_eq(s.at(0).idle(), 2.0));
        assert!(approx_eq(s.at(99).idle(), 2.0));
    }

    #[test]
    fn scaled_applies_per_slot_factor() {
        let s = CostSpec::scaled(CostModel::linear(1.0, 1.0), vec![1.0, 2.0, 0.5]);
        assert!(!s.is_time_independent());
        assert_eq!(s.horizon(), Some(3));
        assert!(approx_eq(s.at(1).eval(1.0), 4.0));
        assert!(approx_eq(s.at(2).idle(), 0.5));
    }

    #[test]
    fn constant_factors_count_as_time_independent() {
        let s = CostSpec::scaled(CostModel::constant(1.0), vec![2.0, 2.0, 2.0]);
        assert!(s.is_time_independent());
    }

    #[test]
    fn per_slot_models() {
        let s = CostSpec::per_slot(vec![CostModel::constant(1.0), CostModel::constant(5.0)]);
        assert!(!s.is_time_independent());
        assert!(approx_eq(s.at(0).idle(), 1.0));
        assert!(approx_eq(s.at(1).idle(), 5.0));
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative_factor() {
        let _ = CostSpec::scaled(CostModel::constant(1.0), vec![-1.0]);
    }
}

//! Load-independent operating cost.

use super::CostFunction;

/// `f(z) = c` for all loads `z`.
///
/// This is the special case studied in Albers & Quedenfeld (CIAC 2021): the
/// operating cost depends neither on load nor time. Under this model the
/// load-dependent part `L_{t,j}` of every schedule is zero and Algorithm A
/// achieves the optimal competitive ratio `2d` (Corollary 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConstantCost {
    cost: f64,
}

impl ConstantCost {
    /// A constant cost of `cost ≥ 0` per active server per slot.
    ///
    /// # Panics
    /// Panics if `cost` is negative or not finite.
    #[must_use]
    pub fn new(cost: f64) -> Self {
        assert!(cost.is_finite() && cost >= 0.0, "constant cost must be finite and ≥ 0");
        Self { cost }
    }

    /// The constant per-slot cost.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

impl CostFunction for ConstantCost {
    fn eval(&self, _z: f64) -> f64 {
        self.cost
    }

    fn deriv(&self, _z: f64) -> f64 {
        0.0
    }

    fn deriv_inv(&self, slope: f64) -> Option<f64> {
        // Derivative is identically zero: any positive target slope is
        // never reached, so the optimal load under a marginal-cost cap is
        // unbounded (capacity-limited); a non-positive slope forces z = 0.
        Some(if slope >= 0.0 { f64::INFINITY } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_everywhere() {
        let f = ConstantCost::new(3.5);
        assert_eq!(f.eval(0.0), 3.5);
        assert_eq!(f.eval(100.0), 3.5);
        assert_eq!(f.deriv(5.0), 0.0);
    }

    #[test]
    fn deriv_inv_boundaries() {
        let f = ConstantCost::new(1.0);
        assert_eq!(f.deriv_inv(0.5), Some(f64::INFINITY));
        assert_eq!(f.deriv_inv(-0.5), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "constant cost")]
    fn rejects_negative() {
        let _ = ConstantCost::new(-1.0);
    }
}

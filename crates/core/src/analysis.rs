//! Schedule analytics: the operational metrics a data-center operator
//! reads off a schedule (utilization, energy split, switching activity).
//!
//! Used by the examples and the experiment harness to explain *why* one
//! policy beats another — e.g. all-on loses on idle energy while
//! reactive policies lose on power cycles.

use crate::config::Config;
use crate::instance::Instance;
use crate::objective::GtOracle;
use crate::schedule::Schedule;

/// Per-type operational statistics of a schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeStats {
    /// Server-slots this type was active (`Σ_t x_{t,j}`).
    pub active_server_slots: u64,
    /// Number of power-up operations.
    pub power_ups: u64,
    /// Total switching cost paid by this type.
    pub switching_cost: f64,
    /// Mean active servers per slot.
    pub mean_active: f64,
    /// Peak active servers.
    pub peak_active: u32,
}

/// Whole-schedule operational statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Per-type breakdown.
    pub per_type: Vec<TypeStats>,
    /// Fraction of provisioned capacity actually used, averaged over
    /// slots with nonzero capacity: `mean_t λ_t / cap(x_t)`.
    pub mean_utilization: f64,
    /// Number of slots with zero active servers.
    pub fully_off_slots: usize,
    /// Operating cost per unit of processed volume (∞ if no volume).
    pub cost_per_volume: f64,
}

/// Compute operational statistics of a feasible schedule.
///
/// # Panics
/// Panics if the schedule length does not match the instance horizon.
#[must_use]
pub fn schedule_stats(
    instance: &Instance,
    schedule: &Schedule,
    oracle: &dyn GtOracle,
) -> ScheduleStats {
    assert_eq!(schedule.len(), instance.horizon(), "schedule/instance mismatch");
    let d = instance.num_types();
    let mut per_type: Vec<TypeStats> = (0..d)
        .map(|_| TypeStats {
            active_server_slots: 0,
            power_ups: 0,
            switching_cost: 0.0,
            mean_active: 0.0,
            peak_active: 0,
        })
        .collect();
    let mut prev = Config::zeros(d);
    let mut util_sum = 0.0;
    let mut util_slots = 0usize;
    let mut fully_off = 0usize;
    let mut total_volume = 0.0;
    let mut total_operating = 0.0;
    for (t, x) in schedule.iter() {
        let cap = x.capacity(instance.types());
        if cap > 0.0 {
            util_sum += instance.load(t) / cap;
            util_slots += 1;
        } else {
            fully_off += 1;
        }
        total_volume += instance.load(t);
        total_operating += oracle.g(instance, t, x.counts());
        for (j, stats) in per_type.iter_mut().enumerate() {
            let ups = u64::from(x.count(j).saturating_sub(prev.count(j)));
            stats.power_ups += ups;
            stats.switching_cost += ups as f64 * instance.switching_cost(j);
            stats.active_server_slots += u64::from(x.count(j));
            stats.peak_active = stats.peak_active.max(x.count(j));
        }
        prev = x.clone();
    }
    let horizon = schedule.len().max(1);
    for stats in &mut per_type {
        stats.mean_active = stats.active_server_slots as f64 / horizon as f64;
    }
    ScheduleStats {
        per_type,
        mean_utilization: if util_slots > 0 { util_sum / util_slots as f64 } else { 0.0 },
        fully_off_slots: fully_off,
        cost_per_volume: if total_volume > 0.0 {
            total_operating / total_volume
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::server::ServerType;
    use crate::util::approx_eq;

    struct IdleOnly;
    impl GtOracle for IdleOnly {
        fn g(&self, instance: &Instance, t: usize, x: &[u32]) -> f64 {
            x.iter().enumerate().map(|(j, &c)| f64::from(c) * instance.idle_cost(t, j)).sum()
        }
        fn g_scaled(&self, instance: &Instance, t: usize, x: &[u32], _lambda: f64, s: f64) -> f64 {
            s * self.g(instance, t, x)
        }
    }

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::constant(1.0)))
            .server_type(ServerType::new("b", 2, 5.0, 4.0, CostModel::constant(2.0)))
            .loads(vec![1.0, 6.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn stats_count_activity() {
        let inst = instance();
        let sched = Schedule::from_counts(vec![vec![1, 0], vec![2, 1], vec![0, 0]]);
        let s = schedule_stats(&inst, &sched, &IdleOnly);
        assert_eq!(s.per_type[0].active_server_slots, 3);
        assert_eq!(s.per_type[0].power_ups, 2);
        assert!(approx_eq(s.per_type[0].switching_cost, 4.0));
        assert_eq!(s.per_type[1].power_ups, 1);
        assert_eq!(s.per_type[0].peak_active, 2);
        assert_eq!(s.fully_off_slots, 1);
        // utilization: t0: 1/1, t1: 6/6 → mean 1.0 over slots with capacity
        assert!(approx_eq(s.mean_utilization, 1.0));
        // operating: t0: 1, t1: 2+2=4, t2: 0 → 5 over volume 7
        assert!(approx_eq(s.cost_per_volume, 5.0 / 7.0));
    }

    #[test]
    fn zero_volume_gives_infinite_cost_per_volume() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![0.0, 0.0])
            .build()
            .unwrap();
        let sched = Schedule::from_counts(vec![vec![1], vec![0]]);
        let s = schedule_stats(&inst, &sched, &IdleOnly);
        assert!(s.cost_per_volume.is_infinite());
        assert_eq!(s.fully_off_slots, 1);
    }
}

//! Server configurations — points of the discrete state space `M`.

use std::fmt;
use std::ops::Index;

use crate::server::ServerType;

/// A server configuration `x = (x_1, …, x_d)`: the number of **active**
/// servers of each type during one time slot.
///
/// This is the discrete state the paper optimizes over; all algorithms in
/// the workspace produce and consume integral configurations — no
/// fractional relaxation is ever rounded.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    counts: Vec<u32>,
}

impl Config {
    /// Configuration from explicit per-type counts.
    #[must_use]
    pub fn new(counts: Vec<u32>) -> Self {
        Self { counts }
    }

    /// The all-zero configuration `0 = (0, …, 0)` in `d` dimensions —
    /// the mandated start/end state `x_0 = x_{T+1}`.
    #[must_use]
    pub fn zeros(d: usize) -> Self {
        Self { counts: vec![0; d] }
    }

    /// Number of server types `d`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.counts.len()
    }

    /// Active servers of type `j`.
    #[inline]
    #[must_use]
    pub fn count(&self, j: usize) -> u32 {
        self.counts[j]
    }

    /// All per-type counts.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Mutable access, for in-place construction by the online algorithms.
    pub fn counts_mut(&mut self) -> &mut [u32] {
        &mut self.counts
    }

    /// Total number of active servers `Σ_j x_j`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Total processing capacity `Σ_j x_j · z^max_j` under the given types.
    #[must_use]
    pub fn capacity(&self, types: &[ServerType]) -> f64 {
        debug_assert_eq!(types.len(), self.dims());
        self.counts.iter().zip(types).map(|(&x, ty)| f64::from(x) * ty.capacity).sum()
    }

    /// `true` if this configuration can process job volume `lambda`.
    #[must_use]
    pub fn can_serve(&self, types: &[ServerType], lambda: f64) -> bool {
        self.capacity(types) >= lambda
    }

    /// `true` if every count is within the fleet bound `x_j ≤ bound_j`.
    #[must_use]
    pub fn within(&self, bounds: &[u32]) -> bool {
        debug_assert_eq!(bounds.len(), self.dims());
        self.counts.iter().zip(bounds).all(|(&x, &m)| x <= m)
    }

    /// `true` if `self ≥ other` component-wise (the online invariant
    /// `x^A_{t,j} ≥ x̂^t_{t,j}`).
    #[must_use]
    pub fn dominates(&self, other: &Config) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.counts.iter().zip(&other.counts).all(|(&a, &b)| a >= b)
    }

    /// Switching cost `Σ_j β_j (to_j − from_j)^+` of moving from `self`
    /// to `to` under the given types.
    #[must_use]
    pub fn switching_cost_to(&self, to: &Config, types: &[ServerType]) -> f64 {
        debug_assert_eq!(self.dims(), to.dims());
        debug_assert_eq!(types.len(), self.dims());
        self.counts
            .iter()
            .zip(&to.counts)
            .zip(types)
            .map(|((&from, &to), ty)| f64::from(to.saturating_sub(from)) * ty.switching_cost)
            .sum()
    }

    /// Component-wise maximum — used when the online algorithms raise the
    /// active counts to the prefix optimum.
    #[must_use]
    pub fn max_with(&self, other: &Config) -> Config {
        debug_assert_eq!(self.dims(), other.dims());
        Config::new(self.counts.iter().zip(&other.counts).map(|(&a, &b)| a.max(b)).collect())
    }
}

impl Index<usize> for Config {
    type Output = u32;
    fn index(&self, j: usize) -> &u32 {
        &self.counts[j]
    }
}

impl From<Vec<u32>> for Config {
    fn from(counts: Vec<u32>) -> Self {
        Config::new(counts)
    }
}

impl From<&[u32]> for Config {
    fn from(counts: &[u32]) -> Self {
        Config::new(counts.to_vec())
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config{:?}", self.counts)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::util::approx_eq;

    fn types() -> Vec<ServerType> {
        vec![
            ServerType::new("slow", 5, 2.0, 1.0, CostModel::constant(1.0)),
            ServerType::new("fast", 3, 8.0, 4.0, CostModel::constant(3.0)),
        ]
    }

    #[test]
    fn capacity_and_serving() {
        let x = Config::new(vec![2, 1]);
        assert!(approx_eq(x.capacity(&types()), 6.0));
        assert!(x.can_serve(&types(), 6.0));
        assert!(!x.can_serve(&types(), 6.1));
    }

    #[test]
    fn switching_cost_counts_only_power_ups() {
        let a = Config::new(vec![2, 1]);
        let b = Config::new(vec![1, 3]);
        // type 0 shrinks (free), type 1 grows by 2 at β=8
        assert!(approx_eq(a.switching_cost_to(&b, &types()), 16.0));
        // reverse direction: type 0 grows by 1 at β=2
        assert!(approx_eq(b.switching_cost_to(&a, &types()), 2.0));
    }

    #[test]
    fn dominance_and_max() {
        let a = Config::new(vec![2, 1]);
        let b = Config::new(vec![1, 3]);
        assert!(!a.dominates(&b));
        assert!(a.max_with(&b).dominates(&a));
        assert!(a.max_with(&b).dominates(&b));
        assert_eq!(a.max_with(&b), Config::new(vec![2, 3]));
    }

    #[test]
    fn zeros_and_total() {
        let z = Config::zeros(3);
        assert_eq!(z.total(), 0);
        assert_eq!(z.dims(), 3);
        assert!(Config::new(vec![1, 2, 3]).total() == 6);
    }

    #[test]
    fn within_bounds() {
        let x = Config::new(vec![2, 3]);
        assert!(x.within(&[2, 3]));
        assert!(!x.within(&[1, 3]));
    }

    #[test]
    fn display_formats_tuple() {
        assert_eq!(Config::new(vec![1, 2]).to_string(), "(1, 2)");
    }
}

//! Schedules `X = (x_1, …, x_T)` and their feasibility.

use std::fmt;

use crate::config::Config;
use crate::error::InstanceError;
use crate::instance::Instance;
use crate::util::pos_diff;

/// An integral schedule: one server [`Config`] per time slot.
///
/// The boundary states are implicit: `x_0 = x_{T+1} = (0, …, 0)` as the
/// paper mandates, so the first slot always pays full power-up cost for
/// its active servers and the last slot powers everything down for free.
#[derive(Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<Config>,
}

impl Schedule {
    /// Schedule from explicit per-slot configurations.
    #[must_use]
    pub fn new(steps: Vec<Config>) -> Self {
        Self { steps }
    }

    /// The empty schedule (for `T = 0` corner cases in prefix logic).
    #[must_use]
    pub fn empty() -> Self {
        Self { steps: Vec::new() }
    }

    /// Schedule from a `T × d` matrix of counts.
    #[must_use]
    pub fn from_counts(counts: Vec<Vec<u32>>) -> Self {
        Self { steps: counts.into_iter().map(Config::new).collect() }
    }

    /// Number of slots `T`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the schedule covers no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Configuration at (0-based) slot `t`.
    #[inline]
    #[must_use]
    pub fn config(&self, t: usize) -> &Config {
        &self.steps[t]
    }

    /// Number of active servers of type `j` at slot `t`.
    #[inline]
    #[must_use]
    pub fn count(&self, t: usize, j: usize) -> u32 {
        self.steps[t].count(j)
    }

    /// All per-slot configurations.
    #[must_use]
    pub fn configs(&self) -> &[Config] {
        &self.steps
    }

    /// Iterate over `(t, config)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Config)> {
        self.steps.iter().enumerate()
    }

    /// Append a slot (used by online algorithms as they commit decisions).
    pub fn push(&mut self, x: Config) {
        self.steps.push(x);
    }

    /// Total switching cost `Σ_t Σ_j β_j (x_{t,j} − x_{t−1,j})^+`,
    /// including the initial power-up from the all-off state.
    #[must_use]
    pub fn switching_cost(&self, instance: &Instance) -> f64 {
        let d = instance.num_types();
        let mut total = 0.0;
        let mut prev = Config::zeros(d);
        for x in &self.steps {
            for j in 0..d {
                total += pos_diff(x.count(j), prev.count(j)) * instance.switching_cost(j);
            }
            prev = x.clone();
        }
        total
    }

    /// Number of power-up operations (not cost) per type, for reporting.
    #[must_use]
    pub fn power_ups(&self, d: usize) -> Vec<u64> {
        let mut ups = vec![0u64; d];
        let mut prev = Config::zeros(d);
        for x in &self.steps {
            #[allow(clippy::needless_range_loop)] // j indexes ups and both configs
            for j in 0..d {
                ups[j] += u64::from(x.count(j).saturating_sub(prev.count(j)));
            }
            prev = x.clone();
        }
        ups
    }

    /// Check shape, fleet bounds and capacity feasibility against an
    /// instance (Definition of feasible schedules, Section 1).
    pub fn check_feasible(&self, instance: &Instance) -> Result<(), InstanceError> {
        let (tt, d) = (instance.horizon(), instance.num_types());
        if self.len() != tt || self.steps.iter().any(|x| x.dims() != d) {
            let found_d = self.steps.iter().map(Config::dims).find(|&x| x != d).unwrap_or(d);
            return Err(InstanceError::ScheduleShapeMismatch {
                expected: (tt, d),
                found: (self.len(), found_d),
            });
        }
        for (t, x) in self.iter() {
            for j in 0..d {
                let m = instance.server_count(t, j);
                if x.count(j) > m {
                    return Err(InstanceError::InfeasibleSchedule {
                        t,
                        reason: format!(
                            "type {j}: {} active servers exceed the fleet size {m}",
                            x.count(j)
                        ),
                    });
                }
            }
            // Same feasibility tolerance as the dispatch oracle (which
            // prices a config finite iff load ≤ cap·(1+1e-12)+1e-12):
            // loads carrying float noise from trace arithmetic must not
            // pass the solver and then fail validation here.
            let cap = x.capacity(instance.types());
            if cap * (1.0 + 1e-12) + 1e-12 < instance.load(t) {
                return Err(InstanceError::InfeasibleSchedule {
                    t,
                    reason: format!("capacity {cap} < load {}", instance.load(t)),
                });
            }
        }
        Ok(())
    }

    /// `true` if [`Schedule::check_feasible`] passes.
    #[must_use]
    pub fn is_feasible(&self, instance: &Instance) -> bool {
        self.check_feasible(instance).is_ok()
    }
}

fn fmt_schedule(steps: &[Config], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "Schedule[")?;
    for (t, x) in steps.iter().enumerate() {
        if t > 0 {
            write!(f, " ")?;
        }
        write!(f, "{x}")?;
    }
    write!(f, "]")
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_schedule(&self.steps, f)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_schedule(&self.steps, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::server::ServerType;
    use crate::util::approx_eq;

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::constant(1.0)))
            .server_type(ServerType::new("b", 2, 5.0, 4.0, CostModel::constant(2.0)))
            .loads(vec![1.0, 6.0, 2.0])
            .build()
            .unwrap()
    }

    #[test]
    fn switching_cost_includes_initial_power_up() {
        let inst = instance();
        let x = Schedule::from_counts(vec![vec![1, 0], vec![2, 1], vec![0, 1]]);
        // ups: t0 type0 +1 (2) ; t1 type0 +1 (2), type1 +1 (5); t2 none
        assert!(approx_eq(x.switching_cost(&inst), 9.0));
        assert_eq!(x.power_ups(2), vec![2, 1]);
    }

    #[test]
    fn feasibility_checks_capacity_and_bounds() {
        let inst = instance();
        let ok = Schedule::from_counts(vec![vec![1, 0], vec![2, 1], vec![2, 0]]);
        assert!(ok.is_feasible(&inst));

        let too_small = Schedule::from_counts(vec![vec![1, 0], vec![2, 0], vec![2, 0]]);
        assert!(matches!(
            too_small.check_feasible(&inst),
            Err(InstanceError::InfeasibleSchedule { t: 1, .. })
        ));

        let too_many = Schedule::from_counts(vec![vec![4, 0], vec![2, 1], vec![2, 0]]);
        assert!(matches!(
            too_many.check_feasible(&inst),
            Err(InstanceError::InfeasibleSchedule { t: 0, .. })
        ));

        let wrong_shape = Schedule::from_counts(vec![vec![1, 0], vec![2, 1]]);
        assert!(matches!(
            wrong_shape.check_feasible(&inst),
            Err(InstanceError::ScheduleShapeMismatch { .. })
        ));
    }

    #[test]
    fn push_builds_incrementally() {
        let mut s = Schedule::empty();
        assert!(s.is_empty());
        s.push(Config::new(vec![1, 1]));
        s.push(Config::new(vec![2, 1]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.count(1, 0), 2);
    }

    #[test]
    fn display_compact() {
        let s = Schedule::from_counts(vec![vec![1, 0], vec![2, 1]]);
        assert_eq!(s.to_string(), "Schedule[(1, 0) (2, 1)]");
    }
}

//! Cost evaluation: gluing schedules to a dispatch solver.
//!
//! The total cost of a schedule (Eq. 2 of the paper) splits into switching
//! cost — computable from the model alone — and operating cost
//! `Σ_t g_t(x_t)`, which requires solving the per-slot dispatch problem
//! (Eq. 1). This crate stays solver-agnostic: anything implementing
//! [`GtOracle`] (in practice `rsz_dispatch::Dispatcher`) can price a
//! schedule.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::util::stable_sum;

/// A solver for the per-slot operating cost
/// `g_t(x) = min_z Σ_j x_j f_{t,j}(λ_t z_j / x_j)`.
///
/// Implementations must return `f64::INFINITY` when `x` cannot process
/// `λ_t` (insufficient capacity) and `0.0` when both `x = 0` and
/// `λ_t = 0`.
pub trait GtOracle {
    /// Operating cost of configuration `x` (given as per-type counts) at
    /// slot `t` of `instance`.
    fn g(&self, instance: &Instance, t: usize, x: &[u32]) -> f64;

    /// Operating cost with the job volume overridden (used by prefix
    /// solvers and the sub-slot refinement of Algorithm C, where `λ` and
    /// the cost scale differ from the instance's own slots).
    ///
    /// `cost_scale` multiplies every cost function of the slot.
    fn g_scaled(
        &self,
        instance: &Instance,
        t: usize,
        x: &[u32],
        lambda: f64,
        cost_scale: f64,
    ) -> f64;

    /// Open a per-slot evaluation context for pricing **many**
    /// configurations of the same `(t, λ, cost_scale)` slot — the DP's
    /// inner loop. Implementations can hoist per-slot precomputation
    /// (arm/cost views) out of the per-configuration path and solve into
    /// reusable scratch buffers; each DP worker thread opens its own
    /// context, so [`SlotEval`] needs no synchronization.
    ///
    /// Every [`SlotEval::eval`] must return exactly what
    /// [`GtOracle::g_scaled`] would for the same arguments. The default
    /// simply forwards to it.
    fn slot_eval<'a>(
        &'a self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> Box<dyn SlotEval + 'a> {
        Box::new(ForwardingSlotEval { oracle: self, instance, t, lambda, cost_scale })
    }

    /// `true` if repeated queries for the same `(t, λ, x)` are answered
    /// from a memo (cache hits) rather than re-solved — the property a
    /// checkpointed solver needs to know **up front**: replaying a
    /// segment against a memoizing oracle costs lookups, while replaying
    /// against a plain solver re-pays the full pricing. The default is
    /// `false` (plain solvers); memoization wrappers override it.
    fn is_memoizing(&self) -> bool {
        false
    }

    /// Like [`GtOracle::slot_eval`], but the caller promises to price the
    /// slot's configurations as a **sweep**: consecutive [`SlotEval::eval`]
    /// calls walk the grid in layout order, each configuration a close
    /// neighbour of the previous one. Implementations may exploit that
    /// locality — e.g. warm-starting an iterative solver from the
    /// previous cell's state — at the cost of a relaxed contract: values
    /// may differ from [`GtOracle::g_scaled`] by up to a relative `1e-9`
    /// (instead of bit-for-bit). The default ignores the promise and
    /// forwards to [`GtOracle::slot_eval`].
    fn slot_sweep<'a>(
        &'a self,
        instance: &'a Instance,
        t: usize,
        lambda: f64,
        cost_scale: f64,
    ) -> Box<dyn SlotEval + 'a> {
        self.slot_eval(instance, t, lambda, cost_scale)
    }
}

/// A slot-scoped `g` evaluator created by [`GtOracle::slot_eval`]: prices
/// one configuration after another for a fixed `(t, λ, cost_scale)`,
/// possibly reusing internal scratch between calls (hence `&mut self`).
pub trait SlotEval {
    /// Operating cost of configuration `x` under this context's slot,
    /// volume and cost scale — identical to the owning oracle's
    /// [`GtOracle::g_scaled`] on the same inputs.
    fn eval(&mut self, x: &[u32]) -> f64;
}

/// Default [`SlotEval`]: stateless forwarding to [`GtOracle::g_scaled`].
struct ForwardingSlotEval<'a, O: ?Sized> {
    oracle: &'a O,
    instance: &'a Instance,
    t: usize,
    lambda: f64,
    cost_scale: f64,
}

impl<O: GtOracle + ?Sized> SlotEval for ForwardingSlotEval<'_, O> {
    fn eval(&mut self, x: &[u32]) -> f64 {
        self.oracle.g_scaled(self.instance, self.t, x, self.lambda, self.cost_scale)
    }
}

/// The cost of a schedule, split the way the paper's analysis splits it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Total operating cost `Σ_t g_t(x_t)`.
    pub operating: f64,
    /// Total switching cost `Σ_t Σ_j β_j (x_{t,j} − x_{t−1,j})^+`.
    pub switching: f64,
}

impl CostBreakdown {
    /// Total cost `C(X)`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.operating + self.switching
    }
}

/// Per-slot cost record for traces and plots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotCost {
    /// Operating cost `g_t(x_t)` of the slot.
    pub operating: f64,
    /// Switching cost paid entering the slot.
    pub switching: f64,
}

/// Total operating cost of `schedule` on `instance` under `oracle`.
#[must_use]
pub fn operating_cost(instance: &Instance, schedule: &Schedule, oracle: &dyn GtOracle) -> f64 {
    let per_slot: Vec<f64> =
        schedule.iter().map(|(t, x)| oracle.g(instance, t, x.counts())).collect();
    stable_sum(&per_slot)
}

/// Full cost breakdown of `schedule` on `instance` under `oracle`.
#[must_use]
pub fn evaluate(instance: &Instance, schedule: &Schedule, oracle: &dyn GtOracle) -> CostBreakdown {
    CostBreakdown {
        operating: operating_cost(instance, schedule, oracle),
        switching: schedule.switching_cost(instance),
    }
}

/// Per-slot costs of `schedule`, for traces and figures.
#[must_use]
pub fn per_slot_costs(
    instance: &Instance,
    schedule: &Schedule,
    oracle: &dyn GtOracle,
) -> Vec<SlotCost> {
    let d = instance.num_types();
    let mut out = Vec::with_capacity(schedule.len());
    let mut prev = crate::config::Config::zeros(d);
    for (t, x) in schedule.iter() {
        let switching = prev.switching_cost_to(x, instance.types());
        let operating = oracle.g(instance, t, x.counts());
        out.push(SlotCost { operating, switching });
        prev = x.clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::cost::CostModel;
    use crate::server::ServerType;
    use crate::util::approx_eq;

    /// A toy oracle for unit tests: charges idle cost per active server and
    /// ignores load entirely (valid for constant costs with enough
    /// capacity).
    struct IdleOnly;
    impl GtOracle for IdleOnly {
        fn g(&self, instance: &Instance, t: usize, x: &[u32]) -> f64 {
            x.iter().enumerate().map(|(j, &c)| f64::from(c) * instance.idle_cost(t, j)).sum()
        }
        fn g_scaled(
            &self,
            instance: &Instance,
            t: usize,
            x: &[u32],
            _lambda: f64,
            cost_scale: f64,
        ) -> f64 {
            cost_scale * self.g(instance, t, x)
        }
    }

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::constant(1.0)))
            .server_type(ServerType::new("b", 2, 5.0, 4.0, CostModel::constant(2.0)))
            .loads(vec![1.0, 6.0])
            .build()
            .unwrap()
    }

    #[test]
    fn breakdown_sums() {
        let inst = instance();
        let x = Schedule::from_counts(vec![vec![1, 0], vec![2, 1]]);
        let bd = evaluate(&inst, &x, &IdleOnly);
        // operating: t0: 1·1 = 1 ; t1: 2·1 + 1·2 = 4 → 5
        assert!(approx_eq(bd.operating, 5.0));
        // switching: +1a (2) then +1a +1b (2+5) → 9
        assert!(approx_eq(bd.switching, 9.0));
        assert!(approx_eq(bd.total(), 14.0));
    }

    #[test]
    fn per_slot_records_match_totals() {
        let inst = instance();
        let x = Schedule::from_counts(vec![vec![1, 0], vec![2, 1]]);
        let slots = per_slot_costs(&inst, &x, &IdleOnly);
        let op: f64 = slots.iter().map(|s| s.operating).sum();
        let sw: f64 = slots.iter().map(|s| s.switching).sum();
        let bd = evaluate(&inst, &x, &IdleOnly);
        assert!(approx_eq(op, bd.operating));
        assert!(approx_eq(sw, bd.switching));
    }

    #[test]
    fn default_slot_eval_forwards_to_g_scaled() {
        let inst = instance();
        let mut view = IdleOnly.slot_eval(&inst, 1, 3.0, 0.5);
        assert!(approx_eq(view.eval(&[2, 1]), IdleOnly.g_scaled(&inst, 1, &[2, 1], 3.0, 0.5)));
        // And through a trait object, exercising the vtable path.
        let dyn_oracle: &dyn GtOracle = &IdleOnly;
        let mut view = dyn_oracle.slot_eval(&inst, 0, 1.0, 1.0);
        assert!(approx_eq(view.eval(&[1, 0]), dyn_oracle.g(&inst, 0, &[1, 0])));
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        let inst = instance();
        let s = Schedule::empty();
        // Not feasible for the instance, but cost functions still work.
        assert!(approx_eq(s.switching_cost(&inst), 0.0));
        assert!(approx_eq(operating_cost(&inst, &s, &IdleOnly), 0.0));
        let _ = Config::zeros(2);
    }
}

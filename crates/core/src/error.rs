//! Validation errors for problem instances and schedules.

use std::fmt;

/// Why an instance or schedule is malformed or infeasible.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceError {
    /// The instance has no server types.
    NoServerTypes,
    /// The instance has an empty time horizon.
    EmptyHorizon,
    /// A job volume is negative or non-finite.
    BadLoad {
        /// Offending slot (0-based).
        t: usize,
        /// The bad value.
        value: f64,
    },
    /// A server type parameter is out of range.
    BadServerType {
        /// Offending type index.
        j: usize,
        /// Description of the violation.
        reason: String,
    },
    /// A time-varying cost profile does not cover the whole horizon.
    CostHorizonMismatch {
        /// Offending type index.
        j: usize,
        /// Slots covered by the cost spec.
        spec_len: usize,
        /// Slots required.
        horizon: usize,
    },
    /// A time-varying fleet-size profile has the wrong shape.
    CountsShapeMismatch {
        /// Expected (T, d).
        expected: (usize, usize),
        /// Found (rows, cols of first bad row).
        found: (usize, usize),
    },
    /// Even powering everything on cannot serve the load at slot `t`.
    InfeasibleLoad {
        /// Offending slot (0-based).
        t: usize,
        /// The arriving volume.
        load: f64,
        /// The maximum total capacity at that slot.
        capacity: f64,
    },
    /// A sampled convexity/monotonicity check failed for a cost function.
    NonConvexCost {
        /// Offending type index.
        j: usize,
        /// Offending slot.
        t: usize,
        /// Description of the violation.
        reason: String,
    },
    /// A schedule's shape does not match the instance.
    ScheduleShapeMismatch {
        /// Expected (T, d).
        expected: (usize, usize),
        /// Found shape.
        found: (usize, usize),
    },
    /// A schedule exceeds fleet bounds or capacity at slot `t`.
    InfeasibleSchedule {
        /// Offending slot (0-based).
        t: usize,
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoServerTypes => write!(f, "instance has no server types"),
            InstanceError::EmptyHorizon => write!(f, "instance has an empty time horizon"),
            InstanceError::BadLoad { t, value } => {
                write!(f, "load at slot {t} is invalid: {value}")
            }
            InstanceError::BadServerType { j, reason } => {
                write!(f, "server type {j} is invalid: {reason}")
            }
            InstanceError::CostHorizonMismatch { j, spec_len, horizon } => write!(
                f,
                "cost spec of type {j} covers {spec_len} slots but the horizon is {horizon}"
            ),
            InstanceError::CountsShapeMismatch { expected, found } => write!(
                f,
                "time-varying fleet sizes must be {}×{} but found {}×{}",
                expected.0, expected.1, found.0, found.1
            ),
            InstanceError::InfeasibleLoad { t, load, capacity } => {
                write!(f, "load {load} at slot {t} exceeds the maximum capacity {capacity}")
            }
            InstanceError::NonConvexCost { j, t, reason } => {
                write!(f, "cost of type {j} at slot {t} is not convex increasing: {reason}")
            }
            InstanceError::ScheduleShapeMismatch { expected, found } => write!(
                f,
                "schedule must be {}×{} but found {}×{}",
                expected.0, expected.1, found.0, found.1
            ),
            InstanceError::InfeasibleSchedule { t, reason } => {
                write!(f, "schedule infeasible at slot {t}: {reason}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Why a solver entry point (`dp::try_solve`, `kkt::try_solve`) could not
/// produce a solution. Unlike [`InstanceError`] — which describes a
/// malformed *problem* — a `SolveError` describes an input or numerical
/// condition that would previously have panicked (or silently produced
/// garbage) inside the solver itself.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// A job volume handed to the solver is NaN, infinite, or negative.
    MalformedLambda {
        /// Offending slot (0-based), when the λ came from an instance;
        /// `None` when it was passed directly (e.g. a single dispatch).
        t: Option<usize>,
        /// The bad value.
        value: f64,
    },
    /// A configuration grid came out empty for some dimension, so the DP
    /// has no states to price.
    EmptyGrid {
        /// Offending slot (0-based).
        t: usize,
        /// Offending dimension (server type index).
        j: usize,
    },
    /// The KKT price-bracket search exhausted its doublings *and* the
    /// saturation fallback could not place the volume: no allocation
    /// within capacity serves `λ`.
    BracketExhausted {
        /// The volume that could not be placed.
        lambda: f64,
        /// Bracket doublings spent before giving up.
        iterations: usize,
    },
    /// The underlying instance failed validation.
    Infeasible(InstanceError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::MalformedLambda { t: Some(t), value } => {
                write!(f, "malformed job volume at slot {t}: {value}")
            }
            SolveError::MalformedLambda { t: None, value } => {
                write!(f, "malformed job volume: {value}")
            }
            SolveError::EmptyGrid { t, j } => {
                write!(f, "configuration grid is empty at slot {t}, dimension {j}")
            }
            SolveError::BracketExhausted { lambda, iterations } => write!(
                f,
                "price bracket exhausted after {iterations} doublings and \
                 saturation cannot place volume {lambda}"
            ),
            SolveError::Infeasible(e) => write!(f, "instance infeasible: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Infeasible(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InstanceError> for SolveError {
    fn from(e: InstanceError) -> Self {
        SolveError::Infeasible(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = InstanceError::InfeasibleLoad { t: 3, load: 10.0, capacity: 5.0 };
        let s = e.to_string();
        assert!(s.contains("slot 3"));
        assert!(s.contains("10"));
        assert!(s.contains('5'));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&InstanceError::EmptyHorizon);
    }
}

//! Validation errors for problem instances and schedules.

use std::fmt;

/// Why an instance or schedule is malformed or infeasible.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceError {
    /// The instance has no server types.
    NoServerTypes,
    /// The instance has an empty time horizon.
    EmptyHorizon,
    /// A job volume is negative or non-finite.
    BadLoad {
        /// Offending slot (0-based).
        t: usize,
        /// The bad value.
        value: f64,
    },
    /// A server type parameter is out of range.
    BadServerType {
        /// Offending type index.
        j: usize,
        /// Description of the violation.
        reason: String,
    },
    /// A time-varying cost profile does not cover the whole horizon.
    CostHorizonMismatch {
        /// Offending type index.
        j: usize,
        /// Slots covered by the cost spec.
        spec_len: usize,
        /// Slots required.
        horizon: usize,
    },
    /// A time-varying fleet-size profile has the wrong shape.
    CountsShapeMismatch {
        /// Expected (T, d).
        expected: (usize, usize),
        /// Found (rows, cols of first bad row).
        found: (usize, usize),
    },
    /// Even powering everything on cannot serve the load at slot `t`.
    InfeasibleLoad {
        /// Offending slot (0-based).
        t: usize,
        /// The arriving volume.
        load: f64,
        /// The maximum total capacity at that slot.
        capacity: f64,
    },
    /// A sampled convexity/monotonicity check failed for a cost function.
    NonConvexCost {
        /// Offending type index.
        j: usize,
        /// Offending slot.
        t: usize,
        /// Description of the violation.
        reason: String,
    },
    /// A schedule's shape does not match the instance.
    ScheduleShapeMismatch {
        /// Expected (T, d).
        expected: (usize, usize),
        /// Found shape.
        found: (usize, usize),
    },
    /// A schedule exceeds fleet bounds or capacity at slot `t`.
    InfeasibleSchedule {
        /// Offending slot (0-based).
        t: usize,
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoServerTypes => write!(f, "instance has no server types"),
            InstanceError::EmptyHorizon => write!(f, "instance has an empty time horizon"),
            InstanceError::BadLoad { t, value } => {
                write!(f, "load at slot {t} is invalid: {value}")
            }
            InstanceError::BadServerType { j, reason } => {
                write!(f, "server type {j} is invalid: {reason}")
            }
            InstanceError::CostHorizonMismatch { j, spec_len, horizon } => write!(
                f,
                "cost spec of type {j} covers {spec_len} slots but the horizon is {horizon}"
            ),
            InstanceError::CountsShapeMismatch { expected, found } => write!(
                f,
                "time-varying fleet sizes must be {}×{} but found {}×{}",
                expected.0, expected.1, found.0, found.1
            ),
            InstanceError::InfeasibleLoad { t, load, capacity } => {
                write!(f, "load {load} at slot {t} exceeds the maximum capacity {capacity}")
            }
            InstanceError::NonConvexCost { j, t, reason } => {
                write!(f, "cost of type {j} at slot {t} is not convex increasing: {reason}")
            }
            InstanceError::ScheduleShapeMismatch { expected, found } => write!(
                f,
                "schedule must be {}×{} but found {}×{}",
                expected.0, expected.1, found.0, found.1
            ),
            InstanceError::InfeasibleSchedule { t, reason } => {
                write!(f, "schedule infeasible at slot {t}: {reason}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = InstanceError::InfeasibleLoad { t: 3, load: 10.0, capacity: 5.0 };
        let s = e.to_string();
        assert!(s.contains("slot 3"));
        assert!(s.contains("10"));
        assert!(s.contains('5'));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&InstanceError::EmptyHorizon);
    }
}

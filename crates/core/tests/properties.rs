//! Property-based tests for the core model.

use proptest::prelude::*;
use rsz_core::util::{approx_eq, approx_ge, approx_le, stable_sum};
use rsz_core::{Config, CostModel, Instance, ServerType};

fn cost_model_strategy() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        (0.0..5.0_f64).prop_map(CostModel::constant),
        (0.0..5.0_f64, 0.0..5.0_f64).prop_map(|(i, r)| CostModel::linear(i, r)),
        (0.0..5.0_f64, 0.0..3.0_f64, 1.0..3.0_f64).prop_map(|(i, c, a)| CostModel::power(i, c, a)),
        (0.0..5.0_f64, 0.0..3.0_f64, 0.0..2.0_f64)
            .prop_map(|(i, a, b)| CostModel::quadratic(i, a, b)),
    ]
}

proptest! {
    /// Every built-in cost model is non-negative and non-decreasing.
    #[test]
    fn cost_models_are_increasing(model in cost_model_strategy(), z1 in 0.0..10.0_f64, z2 in 0.0..10.0_f64) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(model.eval(lo) >= 0.0);
        prop_assert!(approx_le(model.eval(lo), model.eval(hi)));
    }

    /// Midpoint convexity for every built-in model.
    #[test]
    fn cost_models_are_convex(model in cost_model_strategy(), z1 in 0.0..10.0_f64, z2 in 0.0..10.0_f64) {
        let mid = 0.5 * (z1 + z2);
        let lhs = model.eval(mid);
        let rhs = 0.5 * (model.eval(z1) + model.eval(z2));
        prop_assert!(lhs <= rhs + 1e-9 * rhs.abs().max(1.0), "{lhs} > {rhs}");
    }

    /// The derivative is consistent with finite differences.
    #[test]
    fn derivatives_match_finite_differences(model in cost_model_strategy(), z in 0.1..10.0_f64) {
        let h = 1e-6 * z.max(1.0);
        let fd = (model.eval(z + h) - model.eval(z - h)) / (2.0 * h);
        let an = model.deriv(z);
        prop_assert!((fd - an).abs() <= 1e-3 * an.abs().max(1.0), "fd {fd} vs deriv {an}");
    }

    /// `deriv_inv` (when present) inverts `deriv` up to flat regions:
    /// the returned load's derivative never exceeds the queried slope.
    #[test]
    fn deriv_inv_is_sup_of_sublevel(model in cost_model_strategy(), slope in 0.0..20.0_f64) {
        if let Some(z) = model.deriv_inv(slope) {
            if z.is_finite() && z > 0.0 {
                // Derivative just below z stays ≤ slope.
                let probe = (z - 1e-9 * z.max(1.0)).max(0.0);
                prop_assert!(model.deriv(probe) <= slope + 1e-6);
            }
        }
    }

    /// Switching cost is a quasi-metric: non-negative, zero on the
    /// diagonal, and triangle inequality holds for the power-up metric.
    #[test]
    fn switching_cost_quasi_metric(
        a in prop::collection::vec(0u32..6, 2..4),
        b in prop::collection::vec(0u32..6, 2..4),
        c in prop::collection::vec(0u32..6, 2..4),
        betas in prop::collection::vec(0.0..5.0_f64, 2..4),
    ) {
        let d = a.len().min(b.len()).min(c.len()).min(betas.len());
        let types: Vec<ServerType> = betas[..d]
            .iter()
            .enumerate()
            .map(|(j, &beta)| ServerType::new(format!("t{j}"), 10, beta, 1.0, CostModel::constant(1.0)))
            .collect();
        let ca = Config::new(a[..d].to_vec());
        let cb = Config::new(b[..d].to_vec());
        let cc = Config::new(c[..d].to_vec());
        let sab = ca.switching_cost_to(&cb, &types);
        let sbc = cb.switching_cost_to(&cc, &types);
        let sac = ca.switching_cost_to(&cc, &types);
        prop_assert!(sab >= 0.0);
        prop_assert!(approx_eq(ca.switching_cost_to(&ca, &types), 0.0));
        prop_assert!(approx_le(sac, sab + sbc), "triangle: {sac} > {sab} + {sbc}");
    }

    /// max_with dominates both arguments and is the least upper bound.
    #[test]
    fn config_max_is_least_upper_bound(
        a in prop::collection::vec(0u32..9, 1..5),
        b in prop::collection::vec(0u32..9, 1..5),
    ) {
        let d = a.len().min(b.len());
        let ca = Config::new(a[..d].to_vec());
        let cb = Config::new(b[..d].to_vec());
        let m = ca.max_with(&cb);
        prop_assert!(m.dominates(&ca) && m.dominates(&cb));
        for j in 0..d {
            prop_assert!(m.count(j) == ca.count(j) || m.count(j) == cb.count(j));
        }
    }

    /// stable_sum equals the exact rational sum of small integers.
    #[test]
    fn stable_sum_exact_on_integers(xs in prop::collection::vec(-1000i64..1000, 0..200)) {
        let v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let expected: i64 = xs.iter().sum();
        prop_assert_eq!(stable_sum(&v), expected as f64);
    }

    /// Instance validation accepts feasible random instances and the
    /// accessors agree with the inputs.
    #[test]
    fn builder_roundtrip(
        loads in prop::collection::vec(0.0..3.0_f64, 1..12),
        beta in 0.0..5.0_f64,
        idle in 0.0..3.0_f64,
    ) {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 5, beta, 1.0, CostModel::constant(idle)))
            .loads(loads.clone())
            .build();
        // feasible iff every load ≤ 5.0 (guaranteed by the range)
        let inst = inst.expect("feasible by construction");
        prop_assert_eq!(inst.horizon(), loads.len());
        for (t, &l) in loads.iter().enumerate() {
            prop_assert!(approx_ge(inst.load(t), l) && approx_le(inst.load(t), l));
        }
    }
}

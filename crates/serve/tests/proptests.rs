//! Property tests for the serve wire surface and the replication
//! apply path.
//!
//! Three families of properties:
//!
//! 1. **Decoders never panic** — `parse_request`, `json::parse`,
//!    `wal::scan`, and `from_hex` return structured errors (or a
//!    classified tail) on arbitrary bytes, split frames, partial
//!    frames, and mangled hex; they never panic and never misreport an
//!    intact prefix.
//! 2. **`apply_sync` is total** — a replica fed arbitrary reply lines,
//!    bit-flipped frame batches, or reordered frames rejects them with
//!    structured errors (`repl_frame_rejects`, per-tenant report
//!    errors) and stays fully serviceable.
//! 3. **Failover idempotency** — under an arbitrary retransmit mask
//!    (every seq sent once, then any subset re-sent in any order, as a
//!    failing-over client would) the committed prefix is never
//!    double-applied: the decision stream is bit-identical to the
//!    single-send run and the accepted-tick count equals the horizon.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use proptest::prelude::*;
use rsz_serve::json::{self, Json};
use rsz_serve::protocol::parse_request;
use rsz_serve::wal::{self, WalRecord, WalTail};
use rsz_serve::{from_hex, to_hex, Daemon, GridSpec, Role, ServeOptions, TenantSpec};

fn spec() -> TenantSpec {
    TenantSpec {
        fleet: "cpu-gpu:2,1".into(),
        algo: "b".into(),
        engine: true,
        cache: false,
        grid: GridSpec::Full,
        deadline_us: None,
        snapshot_every: 0,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsz-serve-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn options(dir: &Path) -> ServeOptions {
    ServeOptions { state_dir: dir.to_path_buf(), ..ServeOptions::default() }
}

fn register_line(tenant: &str) -> String {
    format!(
        r#"{{"op":"register","tenant":"{tenant}","fleet":"cpu-gpu:2,1","algo":"b","engine":true,"cache":false,"grid":"full"}}"#
    )
}

fn tick_line(tenant: &str, seq: u64, load: f64) -> String {
    format!(r#"{{"op":"tick","tenant":"{tenant}","seq":{seq},"load":{load}}}"#)
}

/// A clean framed log: one registration plus `loads` ticks.
fn framed_log(loads: &[f64]) -> (Vec<WalRecord>, Vec<u8>) {
    let mut records = vec![WalRecord::Register(spec())];
    for (i, &l) in loads.iter().enumerate() {
        records.push(WalRecord::Tick { seq: i as u64, load: l });
    }
    let mut bytes = Vec::new();
    for r in &records {
        bytes.extend_from_slice(&wal::frame(r));
    }
    (records, bytes)
}

// ---------------------------------------------------------------------
// 1. Decoders are total
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through every wire decoder: structured outcomes,
    /// no panics.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..160),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_request(&line);
        let _ = json::parse(&line);
        let _ = from_hex(&line);
        let s = wal::scan(&bytes);
        prop_assert!(s.intact_len <= bytes.len());
        match s.tail {
            WalTail::Clean => prop_assert_eq!(s.intact_len, bytes.len()),
            WalTail::Torn { at } => prop_assert_eq!(at, s.intact_len),
            WalTail::Corrupt { start, end, .. } => {
                prop_assert!(s.intact_len <= start, "corruption inside the intact prefix");
                prop_assert!(start <= end && end <= bytes.len());
            }
        }
    }

    /// A partial frame (any cut point) is a torn tail or a clean
    /// boundary — never corruption, and never a lost committed record.
    #[test]
    fn split_frames_are_torn_never_corrupt(
        loads in prop::collection::vec(0.0..3.0_f64, 0..6),
        cut_frac in 0.0..1.0_f64,
    ) {
        let (records, bytes) = framed_log(&loads);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let s = wal::scan(&bytes[..cut]);
        prop_assert!(
            !matches!(s.tail, WalTail::Corrupt { .. }),
            "truncation misread as corruption at {cut}"
        );
        prop_assert_eq!(&s.records[..], &records[..s.records.len()]);
    }

    /// Garbage appended after clean frames can tear or corrupt the
    /// tail, but the committed records before it always survive.
    #[test]
    fn garbage_suffix_never_erases_committed_records(
        loads in prop::collection::vec(0.0..3.0_f64, 0..5),
        garbage in prop::collection::vec(0u8..=255, 0..48),
    ) {
        let (records, mut bytes) = framed_log(&loads);
        let valid_len = bytes.len();
        bytes.extend_from_slice(&garbage);
        let s = wal::scan(&bytes);
        prop_assert!(s.intact_len >= valid_len);
        prop_assert!(s.records.len() >= records.len());
        prop_assert_eq!(&s.records[..records.len()], &records[..]);
    }

    /// Hex round-trips losslessly; an odd length or one non-hex byte is
    /// a structured `None`.
    #[test]
    fn hex_round_trips_and_mangling_is_rejected(
        bytes in prop::collection::vec(0u8..=255, 1..64),
        pos in 0usize..128,
        make_odd in 0u8..2,
    ) {
        let hex = to_hex(&bytes);
        prop_assert_eq!(from_hex(&hex).as_deref(), Some(&bytes[..]));
        let mut mangled = hex.into_bytes();
        if make_odd == 1 {
            mangled.pop();
        } else {
            let i = pos % mangled.len();
            mangled[i] = b'g';
        }
        prop_assert_eq!(from_hex(&String::from_utf8(mangled).unwrap()), None);
    }
}

// ---------------------------------------------------------------------
// 2. apply_sync is total
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A replica fed arbitrary reply lines stays up: `apply_sync`
    /// returns a structured error (or an empty report), never panics,
    /// and the daemon still answers probes afterwards.
    #[test]
    fn apply_sync_is_total_on_arbitrary_lines(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let dir = tmp_dir("apply-fuzz");
        let daemon = Daemon::new(options(&dir)).unwrap();
        daemon.set_role(Role::Replica);
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = daemon.apply_sync(&line);
        prop_assert!(daemon.handle("GET /livez").contains("\"live\":true"));
        prop_assert!(daemon.handle("GET /readyz").contains("\"role\":\"replica\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One flipped hex character anywhere in a genuine frame batch is
    /// caught by the end-to-end FNV-1a framing (or the hex decode)
    /// before anything reaches the step path: the batch is rejected
    /// with a structured error and the replica applies nothing.
    #[test]
    fn flipped_sync_frames_are_rejected_before_the_step_path(
        loads in prop::collection::vec(0.0..3.0_f64, 1..6),
        flip_at in 0usize..4096,
    ) {
        let primary_dir = tmp_dir("flip-primary");
        let primary = Daemon::new(options(&primary_dir)).unwrap();
        assert!(primary.handle(&register_line("t")).contains("\"ok\":true"));
        for (i, &l) in loads.iter().enumerate() {
            primary.handle(&tick_line("t", i as u64, l));
        }
        let reply = primary.handle(r#"{"op":"repl.sync","replica":"r1","have":{}}"#);

        // Locate the frames hex inside the reply and flip one digit.
        let v = json::parse(&reply).unwrap();
        let hex = v
            .get("tenants")
            .and_then(|t| t.get("t"))
            .and_then(|t| t.get("frames"))
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        let i = flip_at % hex.len();
        let old = hex.as_bytes()[i];
        let new = if old == b'0' { b'1' } else { b'0' };
        let mut flipped = hex.clone().into_bytes();
        flipped[i] = new;
        let mangled = reply.replace(&hex, &String::from_utf8(flipped).unwrap());

        let replica_dir = tmp_dir("flip-replica");
        let replica = Daemon::new(options(&replica_dir)).unwrap();
        replica.set_role(Role::Replica);
        let report = replica.apply_sync(&mangled).unwrap();
        prop_assert_eq!(report.applied, 0, "corrupt batch must apply nothing");
        prop_assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
        prop_assert_eq!(replica.counters.repl_frame_rejects.load(Ordering::Relaxed), 1);
        // The clean original still applies afterwards — full recovery.
        let report = replica.apply_sync(&reply).unwrap();
        prop_assert_eq!(report.applied, loads.len() as u64);
        prop_assert!(report.errors.is_empty(), "{:?}", report.errors);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    /// Reordered tick frames (a misbehaving primary) surface as a
    /// structured sequence-gap error; the contiguous prefix before the
    /// reorder point still applies and the replica stays serviceable.
    #[test]
    fn reordered_sync_frames_error_structurally(
        loads in prop::collection::vec(0.0..3.0_f64, 2..6),
        a in 0usize..8,
        b in 0usize..8,
    ) {
        let a = a % loads.len();
        let b = b % loads.len();
        prop_assume!(a != b);
        let mut frames = Vec::new();
        frames.extend_from_slice(&wal::frame(&WalRecord::Register(spec())));
        let mut order: Vec<usize> = (0..loads.len()).collect();
        order.swap(a, b);
        for &i in &order {
            frames.extend_from_slice(&wal::frame(&WalRecord::Tick {
                seq: i as u64,
                load: loads[i],
            }));
        }
        let reply = format!(
            r#"{{"ok":true,"role":"primary","replica":"r1","tenants":{{"t":{{"ticks":{},"snap_k":0,"frames":"{}","fps":[]}}}}}}"#,
            loads.len(),
            to_hex(&frames)
        );
        let dir = tmp_dir("reorder");
        let replica = Daemon::new(options(&dir)).unwrap();
        replica.set_role(Role::Replica);
        let report = replica.apply_sync(&reply).unwrap();
        prop_assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
        // The contiguous prefix before the swap applied; the first
        // out-of-order seq is a gap and stops the batch there.
        prop_assert_eq!(report.applied, a.min(b) as u64);
        prop_assert!(replica.handle("GET /livez").contains("\"live\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// 3. Failover idempotency
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The property that makes client failover safe: send every tick
    /// once, then retransmit an arbitrary subset in arbitrary order
    /// (what a client replaying against a promoted replica does). The
    /// committed prefix is never double-applied — every retransmit is
    /// flagged `replayed` with a bit-identical config, and the daemon's
    /// accepted-tick count equals the horizon exactly.
    #[test]
    fn committed_prefix_is_never_double_applied(
        loads in prop::collection::vec(0.0..3.0_f64, 1..10),
        mask in prop::collection::vec(0u8..2, 10),
        rot in 0usize..10,
    ) {
        let dir = tmp_dir("idem");
        let daemon = Daemon::new(options(&dir)).unwrap();
        assert!(daemon.handle(&register_line("t")).contains("\"ok\":true"));
        let mut first: Vec<String> = Vec::new();
        for (i, &l) in loads.iter().enumerate() {
            let v = json::parse(&daemon.handle(&tick_line("t", i as u64, l))).unwrap();
            prop_assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
            prop_assert_eq!(v.get("replayed").and_then(Json::as_bool), Some(false));
            first.push(format!("{:?}", v.get("config")));
        }
        let before = daemon.counters.decisions.load(Ordering::Relaxed);

        // Retransmit the masked subset, rotated so order varies.
        let mut subset: Vec<usize> =
            (0..loads.len()).filter(|&i| mask[i % mask.len()] == 1).collect();
        let pivot = rot % subset.len().max(1);
        subset.rotate_left(pivot);
        for &i in &subset {
            let v = json::parse(&daemon.handle(&tick_line("t", i as u64, loads[i]))).unwrap();
            prop_assert_eq!(
                v.get("replayed").and_then(Json::as_bool),
                Some(true),
                "seq {} must replay, not re-decide",
                i
            );
            prop_assert_eq!(
                format!("{:?}", v.get("config")),
                first[i].clone(),
                "seq {} replay diverged",
                i
            );
        }
        prop_assert_eq!(
            daemon.counters.decisions.load(Ordering::Relaxed),
            before,
            "retransmits must not decide"
        );
        let v = json::parse(&daemon.handle(&register_line("t"))).unwrap();
        prop_assert_eq!(v.get("resumed_ticks").and_then(Json::as_u64), Some(loads.len() as u64));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

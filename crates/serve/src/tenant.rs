//! Per-tenant state: committed history, controller, quarantine.
//!
//! A tenant is always in one of two phases. **Live**: the controller is
//! up and ticks step it. **Quarantined**: a structured reason explains
//! what went wrong, a deterministic backoff gates when the daemon may
//! try to bring the tenant back, and — crucially — the *daemon* and
//! every other tenant keep running. Quarantine is per-tenant fault
//! isolation, not an error path.

use std::time::{Duration, Instant};

use rsz_core::{Config, Instance, ServerType};
use rsz_offline::GridMode;
use rsz_online::{DegradeOptions, GracefulDegrader};

use crate::protocol::ErrorCode;
use crate::spec::{BoxController, TenantSpec};
use crate::wal::WalWriter;

/// The coarse-twin factory the degrader rebuilds controllers with.
pub type ControllerFactory = Box<dyn FnMut(&Instance, GridMode) -> BoxController + Send>;

/// The degrader every tenant wraps its boxed controller in.
pub type TenantDegrader = GracefulDegrader<BoxController, ControllerFactory>;

/// Why a tenant was quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A tick failed validation (poisoned load, impossible volume).
    Input,
    /// The controller failed — a panic caught at the step boundary or a
    /// solver error.
    Solver,
    /// The tenant's WAL failed an integrity check.
    WalCorrupt,
    /// The tenant's snapshot failed its checksum or decoded to garbage
    /// *and* WAL replay could not take over.
    SnapshotCorrupt,
    /// The state directory stopped cooperating (I/O error on append or
    /// snapshot write).
    Io,
    /// A replication fingerprint check failed: this replica's state for
    /// the tenant disagrees with the primary's. Not revivable from
    /// local storage — the local WAL would replay the same divergent
    /// state — so the tenant stays gated until a fresh resync.
    Divergence,
}

impl QuarantineReason {
    /// The wire error code reported for ticks while quarantined for
    /// this reason.
    #[must_use]
    pub fn code(self) -> ErrorCode {
        match self {
            QuarantineReason::Input => ErrorCode::Input,
            QuarantineReason::Solver => ErrorCode::Solver,
            QuarantineReason::WalCorrupt => ErrorCode::WalCorrupt,
            QuarantineReason::SnapshotCorrupt => ErrorCode::SnapshotCorrupt,
            QuarantineReason::Io => ErrorCode::Quarantined,
            QuarantineReason::Divergence => ErrorCode::Quarantined,
        }
    }

    /// Stable name used in `/metrics` and quarantine details.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            QuarantineReason::Input => "input",
            QuarantineReason::Solver => "solver",
            QuarantineReason::WalCorrupt => "wal_corrupt",
            QuarantineReason::SnapshotCorrupt => "snapshot_corrupt",
            QuarantineReason::Io => "io",
            QuarantineReason::Divergence => "divergence",
        }
    }
}

/// An active quarantine.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// Structured reason.
    pub reason: QuarantineReason,
    /// Human-readable detail (what failed, byte ranges for corruption).
    pub detail: String,
    /// How many times recovery has been attempted since entering.
    pub attempts: u32,
    /// The earliest instant a retry is allowed.
    pub until: Instant,
}

/// Deterministic decorrelated-jitter backoff: exponential in the
/// attempt count with a jitter factor derived (reproducibly) from the
/// tenant name and attempt, clamped to `[base, cap]`.
#[must_use]
pub fn backoff_delay(tenant: &str, attempts: u32, base: Duration, cap: Duration) -> Duration {
    // FNV-1a of the tenant name, mixed with the attempt, drives an
    // xorshift step — same tenant and attempt, same jitter, so chaos
    // runs reproduce their timelines from the seed alone.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(attempts).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    let jitter = 1.0 + (h % 1000) as f64 / 1000.0; // in [1, 2)
    let exp = 2u32.saturating_pow(attempts.min(16));
    let nanos = base.as_nanos() as f64 * f64::from(exp) * jitter;
    Duration::from_nanos(nanos as u64).clamp(base, cap)
}

/// Rolling counters for one tenant, exported via `/metrics`.
#[derive(Clone, Debug, Default)]
pub struct TenantCounters {
    /// Fresh decisions made (excludes replays and restored prefix).
    pub decisions: u64,
    /// Duplicate-seq ticks answered from committed history.
    pub replays: u64,
    /// Ticks rejected by validation.
    pub rejected: u64,
    /// Times this tenant entered quarantine.
    pub quarantines: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Recoveries that had to ignore a bad snapshot and fall back to
    /// full WAL replay.
    pub snapshot_fallbacks: u64,
    /// Decision latencies (seconds, `LatencyProfile` convention) of
    /// fresh decisions, most recent last, bounded.
    pub latencies: Vec<f64>,
}

impl TenantCounters {
    /// Record one fresh-decision latency (seconds), keeping a bounded
    /// window.
    pub fn push_latency(&mut self, seconds: f64) {
        const WINDOW: usize = 4096;
        if self.latencies.len() == WINDOW {
            self.latencies.remove(0);
        }
        self.latencies.push(seconds);
    }
}

/// One periodic state fingerprint: FNV-1a over the tenant's sealed
/// `RSZSNAP` canonical-state snapshot at `k` accepted ticks. `full`
/// records whether committed decisions were folded in (they are iff the
/// degradation ladder was off when the fingerprint was taken — with the
/// ladder armed, decisions depend on wall-clock timings and a faithful
/// replica may legitimately differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Accepted-tick count the fingerprint covers.
    pub k: u64,
    /// FNV-1a over the sealed canonical-state bytes.
    pub fp: u64,
    /// Whether committed decisions are part of the covered state.
    pub full: bool,
}

/// Everything the daemon holds for one tenant.
pub struct TenantState {
    /// The registration spec (also the WAL's first record).
    pub spec: TenantSpec,
    /// The fleet the spec names, parsed once.
    pub types: Vec<ServerType>,
    /// Accepted loads, in seq order — the committed prefix.
    pub loads: Vec<f64>,
    /// Committed decisions, one per accepted load.
    pub decisions: Vec<Config>,
    /// The live controller; `None` after a panic dropped it (rebuilt
    /// from WAL + snapshot on the next recovery attempt).
    pub controller: Option<TenantDegrader>,
    /// Open WAL appender; `None` while quarantined for I/O.
    pub wal: Option<WalWriter>,
    /// Fresh decisions since the last snapshot.
    pub fresh_since_snapshot: usize,
    /// Active quarantine, if any.
    pub quarantine: Option<Quarantine>,
    /// Rolling counters.
    pub counters: TenantCounters,
    /// Recent periodic state fingerprints, oldest first, bounded —
    /// what a primary ships to replicas for divergence checks.
    pub fingerprints: Vec<Fingerprint>,
    /// Accepted ticks the newest sealed WAL segment runs through (0
    /// when the log has never rotated). Guards against sealing two
    /// segments at the same boundary.
    pub last_sealed_through: u64,
    /// Accepted ticks the latest durable snapshot covers — the
    /// compaction horizon, and the `snap_k` announced to replicas.
    pub last_snapshot_k: usize,
    /// Highest `k` already fingerprint-checked against a primary (a
    /// replica-side cursor so stale sync replies are not re-checked).
    pub fp_checked: u64,
}

impl TenantState {
    /// Record a periodic fingerprint, keeping a bounded ring.
    pub fn push_fingerprint(&mut self, fp: Fingerprint) {
        const RING: usize = 16;
        if self.fingerprints.len() == RING {
            self.fingerprints.remove(0);
        }
        self.fingerprints.push(fp);
    }
}

impl TenantState {
    /// Validate one load against this tenant's fleet: finite,
    /// non-negative, and within the fleet's maximum capacity. This runs
    /// *before* the WAL append — the log only ever holds accepted
    /// ticks.
    pub fn validate_load(&self, load: f64) -> Result<(), String> {
        if !load.is_finite() {
            return Err("load must be a finite number".into());
        }
        if load < 0.0 {
            return Err(format!("load {load} is negative"));
        }
        let capacity: f64 = self.types.iter().map(|ty| f64::from(ty.count) * ty.capacity).sum();
        if load > capacity {
            return Err(format!("load {load} exceeds fleet capacity {capacity}"));
        }
        Ok(())
    }

    /// The prefix instance for deciding slot `self.loads.len() - 1`:
    /// the committed loads over this tenant's fleet. Rebuilding per
    /// tick is the prefix-revelation discipline — the controller can
    /// only ever see what has actually arrived.
    pub fn prefix_instance(&self) -> Result<Instance, String> {
        Instance::builder()
            .server_types(self.types.iter().cloned())
            .loads(self.loads.clone())
            .build()
            .map_err(|e| format!("prefix instance invalid: {e}"))
    }

    /// The degrade options this tenant's spec selects, given the daemon
    /// default deadline.
    #[must_use]
    pub fn degrade_options(
        &self,
        daemon_deadline: Option<Duration>,
        coarse_gamma: f64,
    ) -> DegradeOptions {
        DegradeOptions { deadline: self.spec.effective_deadline(daemon_deadline), coarse_gamma }
    }

    /// Enter quarantine: structured reason, detail, backoff-gated
    /// retry. Subsequent attempts stretch the gate exponentially.
    pub fn enter_quarantine(
        &mut self,
        reason: QuarantineReason,
        detail: String,
        base: Duration,
        cap: Duration,
        tenant: &str,
    ) {
        let attempts = self.quarantine.as_ref().map_or(0, |q| q.attempts + 1);
        let delay = backoff_delay(tenant, attempts, base, cap);
        self.counters.quarantines += 1;
        self.quarantine =
            Some(Quarantine { reason, detail, attempts, until: Instant::now() + delay });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_monotone_and_capped() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let a0 = backoff_delay("t1", 0, base, cap);
        assert_eq!(a0, backoff_delay("t1", 0, base, cap));
        assert!(a0 >= base && a0 <= cap);
        // Ample attempts always hit the cap.
        assert_eq!(backoff_delay("t1", 30, base, cap), cap);
        // Different tenants jitter differently somewhere in the ladder.
        let differs =
            (0..8).any(|k| backoff_delay("t1", k, base, cap) != backoff_delay("t2", k, base, cap));
        assert!(differs, "jitter should depend on the tenant name");
    }

    #[test]
    fn latency_window_is_bounded() {
        let mut c = TenantCounters::default();
        for i in 0..5000 {
            c.push_latency(f64::from(i));
        }
        assert_eq!(c.latencies.len(), 4096);
        assert_eq!(c.latencies[0], 5000.0 - 4096.0);
    }
}

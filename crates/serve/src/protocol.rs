//! The daemon's line protocol: requests in, replies out.
//!
//! One request per line, one reply per line, both JSON objects. The
//! request names an `op`; replies are `{"ok":true,...}` on success and
//! `{"ok":false,"error":CODE,"detail":MSG}` on failure, where `CODE` is
//! one of the stable [`ErrorCode`] strings clients dispatch on.
//!
//! Two plain-text escapes — `GET /health` and `GET /metrics` — answer
//! with the same JSON bodies so a curl or a load-balancer probe works
//! without speaking the protocol.

use rsz_core::Config;
use rsz_offline::{Decoder, SnapshotError};
use rsz_online::Rung;

use crate::json::{self, Json};
use crate::spec::{GridSpec, TenantSpec};

/// Stable error codes. Clients retry on [`ErrorCode::Overloaded`],
/// surface [`ErrorCode::Quarantined`] with its detail, and treat the
/// rest as request bugs or tenant-fatal conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a well-formed request (attributed to no tenant).
    BadRequest,
    /// The named tenant is not registered.
    UnknownTenant,
    /// The request was well-formed but its payload is invalid for this
    /// tenant (non-finite load, load beyond fleet capacity, seq gap).
    Input,
    /// The tenant's controller failed (panic caught at the step
    /// boundary, solver error).
    Solver,
    /// A snapshot failed its checksum or decoded to garbage.
    SnapshotCorrupt,
    /// The tenant's WAL failed its record checksum.
    WalCorrupt,
    /// Admission control shed this request; retry with backoff.
    Overloaded,
    /// The tenant is quarantined; the detail carries the reason and the
    /// earliest retry time.
    Quarantined,
    /// This daemon is a replica (or mid-promotion) and does not accept
    /// writes; retry against the primary — or another peer, if the
    /// primary is what just died.
    NotPrimary,
}

impl ErrorCode {
    /// The wire string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::Input => "input",
            ErrorCode::Solver => "solver",
            ErrorCode::SnapshotCorrupt => "snapshot_corrupt",
            ErrorCode::WalCorrupt => "wal_corrupt",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::NotPrimary => "not_primary",
        }
    }

    /// Parse a wire string back into a code (client side).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_tenant" => ErrorCode::UnknownTenant,
            "input" => ErrorCode::Input,
            "solver" => ErrorCode::Solver,
            "snapshot_corrupt" => ErrorCode::SnapshotCorrupt,
            "wal_corrupt" => ErrorCode::WalCorrupt,
            "overloaded" => ErrorCode::Overloaded,
            "quarantined" => ErrorCode::Quarantined,
            "not_primary" => ErrorCode::NotPrimary,
            _ => return None,
        })
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Create (or idempotently re-attach to) a tenant.
    Register { tenant: String, spec: TenantSpec },
    /// One telemetry tick. A load that arrived malformed (JSON cannot
    /// carry NaN; clients send null/strings instead) parses to NaN here
    /// and fails load validation downstream — attributed to the tenant,
    /// as a poisoned trace should be.
    Tick { tenant: String, seq: u64, load: f64 },
    /// Legacy combined health probe (liveness + a tenant summary).
    Health,
    /// Pure liveness: is the process up and answering?
    Livez,
    /// Readiness: role, replication lag, quarantined tenants — what an
    /// external supervisor gates traffic and failover on.
    Readyz,
    /// Counter export.
    Metrics,
    /// Orderly daemon stop (stop admission, flush + fsync WALs, final
    /// snapshots, close listeners).
    Shutdown,
    /// Replication pull: a replica reports how many ticks it holds per
    /// tenant (`have`) and the primary answers with the WAL frames it
    /// is missing plus recent state fingerprints.
    ReplSync {
        /// The requesting replica's self-chosen identifier (logged and
        /// echoed, not interpreted).
        replica: String,
        /// `(tenant, accepted-tick count)` pairs the replica holds.
        have: Vec<(String, u64)>,
    },
}

/// Why a line failed to parse as a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Always a request-shape problem, never a tenant payload problem.
    pub detail: String,
}

/// Parse one request line. Accepts the JSON protocol plus the
/// `GET /health` / `GET /metrics` plain-text escapes.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let line = line.trim();
    match line {
        "GET /health" | "GET /health HTTP/1.1" | "GET /health HTTP/1.0" => {
            return Ok(Request::Health)
        }
        "GET /livez" | "GET /livez HTTP/1.1" | "GET /livez HTTP/1.0" => return Ok(Request::Livez),
        "GET /readyz" | "GET /readyz HTTP/1.1" | "GET /readyz HTTP/1.0" => {
            return Ok(Request::Readyz)
        }
        "GET /metrics" | "GET /metrics HTTP/1.1" | "GET /metrics HTTP/1.0" => {
            return Ok(Request::Metrics)
        }
        _ => {}
    }
    let v =
        json::parse(line).map_err(|e| ParseError { detail: format!("not a JSON request: {e}") })?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ParseError { detail: "missing string field `op`".into() })?;
    match op {
        "register" => {
            let tenant = req_tenant(&v)?;
            let fleet = v
                .get("fleet")
                .and_then(Json::as_str)
                .ok_or_else(|| ParseError { detail: "register needs a `fleet` string".into() })?
                .to_owned();
            let algo = v.get("algo").and_then(Json::as_str).unwrap_or("b").to_owned();
            let engine = v.get("engine").and_then(Json::as_bool).unwrap_or(true);
            let cache = v.get("cache").and_then(Json::as_bool).unwrap_or(false);
            let grid = match v.get("grid").and_then(Json::as_str) {
                None => GridSpec::Full,
                Some(s) => GridSpec::parse(s).map_err(|detail| ParseError { detail })?,
            };
            let deadline_us = match v.get("deadline_us") {
                None | Some(Json::Null) => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| ParseError {
                    detail: "`deadline_us` must be a non-negative integer".into(),
                })?),
            };
            let snapshot_every = match v.get("snapshot_every") {
                None | Some(Json::Null) => 0,
                Some(d) => d.as_u64().ok_or_else(|| ParseError {
                    detail: "`snapshot_every` must be a non-negative integer".into(),
                })? as usize,
            };
            Ok(Request::Register {
                tenant,
                spec: TenantSpec { fleet, algo, engine, cache, grid, deadline_us, snapshot_every },
            })
        }
        "tick" => {
            let tenant = req_tenant(&v)?;
            let seq = v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| ParseError { detail: "tick needs an integer `seq`".into() })?;
            // A missing or non-numeric load is the tenant's data being
            // bad, not the request being unparseable: map it to NaN so
            // it flows through load validation and quarantines the
            // tenant instead of bouncing as bad_request.
            let load = v.get("load").and_then(Json::as_f64).unwrap_or(f64::NAN);
            Ok(Request::Tick { tenant, seq, load })
        }
        "health" => Ok(Request::Health),
        "livez" => Ok(Request::Livez),
        "readyz" => Ok(Request::Readyz),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "repl.sync" => {
            let replica = v
                .get("replica")
                .and_then(Json::as_str)
                .ok_or_else(|| ParseError { detail: "repl.sync needs a `replica` string".into() })?
                .to_owned();
            let have = match v.get("have") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Obj(fields)) => {
                    let mut have = Vec::with_capacity(fields.len());
                    for (tenant, count) in fields {
                        let n = count.as_u64().ok_or_else(|| ParseError {
                            detail: format!("repl.sync `have.{tenant}` must be an integer"),
                        })?;
                        have.push((tenant.clone(), n));
                    }
                    have
                }
                Some(_) => {
                    return Err(ParseError { detail: "repl.sync `have` must be an object".into() })
                }
            };
            Ok(Request::ReplSync { replica, have })
        }
        other => Err(ParseError { detail: format!("unknown op `{other}`") }),
    }
}

fn req_tenant(v: &Json) -> Result<String, ParseError> {
    let name = v
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| ParseError { detail: "missing string field `tenant`".into() })?;
    if name.is_empty() || name.len() > 128 {
        return Err(ParseError { detail: "tenant name must be 1..=128 bytes".into() });
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.') {
        return Err(ParseError { detail: "tenant name may only contain [A-Za-z0-9._-]".into() });
    }
    Ok(name.to_owned())
}

/// `{"ok":false,"error":CODE,"detail":MSG}` as a reply line.
#[must_use]
pub fn error_line(code: ErrorCode, detail: &str) -> String {
    json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", json::s(code.as_str())),
        ("detail", json::s(detail)),
    ])
    .to_line()
}

/// The successful reply to a tick: the decided configuration, echoing
/// the sequence number, flagged when it replays an already-committed
/// decision, with the degradation rung that produced it.
#[must_use]
pub fn decision_line(seq: u64, config: &Config, rung: Rung, replayed: bool) -> String {
    let counts = Json::Arr(config.counts().iter().map(|&c| json::n(f64::from(c))).collect());
    json::obj(vec![
        ("ok", Json::Bool(true)),
        ("seq", json::n(seq as f64)),
        ("config", counts),
        ("rung", json::s(rung_str(rung))),
        ("replayed", Json::Bool(replayed)),
    ])
    .to_line()
}

/// Wire name of a degradation rung.
#[must_use]
pub fn rung_str(rung: Rung) -> &'static str {
    match rung {
        Rung::Exact => "exact",
        Rung::Coarse => "coarse",
        Rung::Hold => "hold",
    }
}

/// Shared codec helpers for serve payloads.
pub mod wire {
    use super::{Decoder, SnapshotError};

    /// Read a length-prefixed UTF-8 string; `bad` is the corruption
    /// message used when the bytes are not UTF-8.
    pub fn take_str(dec: &mut Decoder<'_>, bad: &'static str) -> Result<String, SnapshotError> {
        std::str::from_utf8(dec.take_bytes()?)
            .map(str::to_owned)
            .map_err(|_| SnapshotError::Corrupt(bad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults() {
        let r = parse_request(r#"{"op":"register","tenant":"t1","fleet":"cpu-gpu:3,1"}"#).unwrap();
        match r {
            Request::Register { tenant, spec } => {
                assert_eq!(tenant, "t1");
                assert_eq!(spec.algo, "b");
                assert!(spec.engine);
                assert!(!spec.cache);
                assert_eq!(spec.grid, GridSpec::Full);
                assert_eq!(spec.deadline_us, None);
            }
            other => panic!("wrong request: {other:?}"),
        }
        let r = parse_request(r#"{"op":"tick","tenant":"t1","seq":7,"load":2.5}"#).unwrap();
        assert_eq!(r, Request::Tick { tenant: "t1".into(), seq: 7, load: 2.5 });
        assert_eq!(parse_request("GET /health").unwrap(), Request::Health);
        assert_eq!(parse_request("GET /metrics HTTP/1.1").unwrap(), Request::Metrics);
        assert_eq!(parse_request("GET /livez").unwrap(), Request::Livez);
        assert_eq!(parse_request("GET /readyz HTTP/1.0").unwrap(), Request::Readyz);
    }

    #[test]
    fn repl_sync_parses_and_rejects_malformed_have() {
        let r =
            parse_request(r#"{"op":"repl.sync","replica":"r1","have":{"t1":5,"t2":0}}"#).unwrap();
        match r {
            Request::ReplSync { replica, have } => {
                assert_eq!(replica, "r1");
                assert_eq!(have, vec![("t1".to_owned(), 5), ("t2".to_owned(), 0)]);
            }
            other => panic!("wrong request: {other:?}"),
        }
        // `have` may be absent (a cold replica knows nothing yet).
        let r = parse_request(r#"{"op":"repl.sync","replica":"r1"}"#).unwrap();
        assert!(matches!(r, Request::ReplSync { ref have, .. } if have.is_empty()), "{r:?}");
        for bad in [
            r#"{"op":"repl.sync"}"#,
            r#"{"op":"repl.sync","replica":"r1","have":[1]}"#,
            r#"{"op":"repl.sync","replica":"r1","have":{"t":"x"}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn malformed_lines_are_bad_requests_not_panics() {
        for line in [
            "",
            "{",
            "null",
            "[1,2]",
            r#"{"op":"warp"}"#,
            r#"{"op":"tick"}"#,
            r#"{"op":"tick","tenant":"t"}"#,
            r#"{"op":"tick","tenant":"","seq":0}"#,
            r#"{"op":"tick","tenant":"a b","seq":0}"#,
            r#"{"op":"register","tenant":"t"}"#,
            r#"{"op":"register","tenant":"t","fleet":"x","grid":"mesh"}"#,
            r#"{"op":"register","tenant":"t","fleet":"x","deadline_us":-3}"#,
        ] {
            assert!(parse_request(line).is_err(), "{line:?} should be rejected");
        }
    }

    #[test]
    fn poisoned_loads_become_nan_ticks_not_bad_requests() {
        for line in [
            r#"{"op":"tick","tenant":"t","seq":0,"load":null}"#,
            r#"{"op":"tick","tenant":"t","seq":0,"load":"NaN"}"#,
            r#"{"op":"tick","tenant":"t","seq":0}"#,
        ] {
            match parse_request(line).unwrap() {
                Request::Tick { load, .. } => assert!(load.is_nan(), "{line}"),
                other => panic!("wrong request: {other:?}"),
            }
        }
        // JSON can spell infinity as an overflow literal; it parses and
        // then fails load validation downstream.
        match parse_request(r#"{"op":"tick","tenant":"t","seq":0,"load":1e999}"#).unwrap() {
            Request::Tick { load, .. } => assert!(load.is_infinite()),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownTenant,
            ErrorCode::Input,
            ErrorCode::Solver,
            ErrorCode::SnapshotCorrupt,
            ErrorCode::WalCorrupt,
            ErrorCode::Overloaded,
            ErrorCode::Quarantined,
            ErrorCode::NotPrimary,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("teapot"), None);
        let line = error_line(ErrorCode::Overloaded, "queue full");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
    }
}

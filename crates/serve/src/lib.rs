//! `rsz-serve`: a crash-safe, multi-tenant serving daemon for the
//! right-sizing controllers.
//!
//! The library behind `rsz serve`. Each *tenant* is an independent
//! stream: a fleet (server types + cost models), an online controller
//! (Algorithm A/B/C, LCP, or the receding-horizon baseline), and a
//! telemetry sequence stepped one tick at a time. The daemon hosts many
//! tenants over one line-delimited JSON protocol and keeps four
//! promises:
//!
//! 1. **Crash safety** — accepted ticks go to a checksummed write-ahead
//!    log *before* the controller decides, and controller state is
//!    periodically sealed into `RSZSNAP` snapshots. `kill -9` at any
//!    byte offset recovers to a state whose subsequent decisions are
//!    bit-identical to the uninterrupted run.
//! 2. **Fault isolation** — a poisoned trace, solver failure, storage
//!    corruption, or outright controller panic quarantines *that*
//!    tenant with a structured reason and backoff-gated retries; the
//!    daemon and every other tenant keep serving.
//! 3. **Overload behavior** — per-decision deadlines drive the
//!    [`rsz_online::GracefulDegrader`] ladder (exact → coarse grid →
//!    hold) before admission control sheds anything; shedding is
//!    explicit (`overloaded`), bounded per tenant, and retryable.
//! 4. **Shared pricing** — tenants whose `(fleet, grid)` keys collide
//!    share one priced-slot pool. Pricing is a pure function of
//!    `(partition, λ, grid)`, so sharing changes hit rates and never
//!    decisions — including when a pool co-tenant is quarantined
//!    mid-storm.
//!
//! The TCP layer is deliberately a veneer: every behavior above lives
//! behind [`Daemon::handle`] (one request line in, one reply line out),
//! which is also how the chaos suite drives the daemon in-process.

//! A fifth promise arrived with replication: **availability** — a
//! primary streams its per-tenant WAL frames and state fingerprints to
//! pull-based replicas ([`replication`]); replicas apply them through
//! the identical step path, cross-check fingerprints (silent divergence
//! quarantines the tenant rather than serving a wrong plan), and
//! promote themselves after a deterministic lease expiry with zero
//! accepted-tick loss.

pub mod client;
pub mod daemon;
pub mod json;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod spec;
pub mod tenant;
pub mod wal;

pub use client::{Client, ClientError, ClientOptions, Decision};
pub use daemon::{describe_snapshot_error, Daemon, ServeOptions};
pub use protocol::{ErrorCode, Request};
pub use replication::{
    from_hex, run_replica, state_fingerprint, to_hex, ApplyReport, ReplicaOptions, Replicator, Role,
};
pub use server::{install_sigterm_handler, Server};
pub use spec::{build_controller, BoxController, GridSpec, ServeController, TenantSpec};
pub use tenant::{Fingerprint, QuarantineReason, TenantState};

//! A resilient client for the serve protocol.
//!
//! Used by `rsz simulate --remote`: connects with a timeout, retries
//! transient failures (connection refused/reset, `overloaded` replies)
//! with decorrelated-jitter backoff, and relies on idempotent sequence
//! numbers to make retransmission safe — a tick re-sent after a lost
//! reply is answered from the daemon's committed history, bit-identical
//! to the first answer.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rsz_core::Config;

use crate::json::{self, Json};
use crate::protocol::ErrorCode;
use crate::spec::TenantSpec;
use crate::tenant::backoff_delay;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
    /// Attempts per request before giving up.
    pub max_attempts: u32,
    /// First retry gate (stretched with decorrelated jitter).
    pub backoff_base: Duration,
    /// Retry gate ceiling.
    pub backoff_cap: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(5),
            max_attempts: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// A client error after retries were exhausted.
#[derive(Debug)]
pub enum ClientError {
    /// Transport never recovered.
    Io(std::io::Error),
    /// The daemon answered with a non-retryable error.
    Daemon {
        /// Parsed error code, when the reply carried a known one.
        code: Option<ErrorCode>,
        /// The daemon's detail string.
        detail: String,
    },
    /// The reply was not a valid protocol line.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Daemon { code, detail } => match code {
                Some(c) => write!(f, "daemon error ({}): {detail}", c.as_str()),
                None => write!(f, "daemon error: {detail}"),
            },
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

/// One decided tick, as the daemon reported it.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Echoed sequence number.
    pub seq: u64,
    /// The configuration to actuate.
    pub config: Config,
    /// The degradation rung that produced it.
    pub rung: String,
    /// Whether this was replayed from committed history (a retransmit).
    pub replayed: bool,
}

/// A connected protocol client. Reconnects transparently between
/// attempts; state lives on the daemon, not here.
///
/// Knows the whole replica set: a transport failure or a `not_primary`
/// reply rotates to the next peer and retries there, and idempotent
/// sequence numbers make the retransmit safe — the committed prefix is
/// never double-applied, so a failover is invisible to the caller
/// beyond latency.
pub struct Client {
    peers: Vec<String>,
    current: usize,
    options: ClientOptions,
    stream: Option<BufReader<TcpStream>>,
    retries: u64,
    rotations: u64,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    #[must_use]
    pub fn new(addr: &str, options: ClientOptions) -> Self {
        Self::with_peers(&[addr.to_owned()], options)
    }

    /// A client over a replica set. The first peer is tried first;
    /// failures and `not_primary` replies rotate through the rest.
    #[must_use]
    pub fn with_peers(peers: &[String], options: ClientOptions) -> Self {
        let mut peers: Vec<String> = peers.iter().filter(|p| !p.is_empty()).cloned().collect();
        if peers.is_empty() {
            // Degenerate but non-panicking: connect() will fail with
            // NotFound and surface through the normal error path.
            peers.push(String::new());
        }
        Self { peers, current: 0, options, stream: None, retries: 0, rotations: 0 }
    }

    /// The peer currently being targeted.
    #[must_use]
    pub fn current_peer(&self) -> &str {
        &self.peers[self.current]
    }

    /// Total retries performed so far (transport + overload).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Peer rotations performed so far (failovers, as the client saw
    /// them).
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Drop the connection and advance to the next peer (no-op with a
    /// single peer beyond the reconnect).
    fn rotate(&mut self) {
        self.stream = None;
        if self.peers.len() > 1 {
            self.current = (self.current + 1) % self.peers.len();
            self.rotations += 1;
        }
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let addr = self.peers[self.current]
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
            let stream = TcpStream::connect_timeout(&addr, self.options.timeout)?;
            stream.set_read_timeout(Some(self.options.timeout))?;
            stream.set_write_timeout(Some(self.options.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn round_trip_once(&mut self, line: &str) -> std::io::Result<String> {
        let reader = self.connect()?;
        let outcome = (|| {
            reader.get_mut().write_all(line.as_bytes())?;
            reader.get_mut().write_all(b"\n")?;
            reader.get_mut().flush()?;
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            Ok(reply)
        })();
        if outcome.is_err() {
            self.stream = None; // reconnect on the next attempt
        }
        outcome
    }

    /// Send one request line, retrying transport failures and
    /// `overloaded` replies with decorrelated-jitter backoff, and
    /// failing over to the next peer on dead connections and
    /// `not_primary` replies. Safe for ticks because sequence numbers
    /// make them idempotent.
    pub fn round_trip(&mut self, line: &str) -> Result<Json, ClientError> {
        let mut last_io: Option<std::io::Error> = None;
        let mut last_daemon: Option<ClientError> = None;
        for attempt in 0..self.options.max_attempts {
            if attempt > 0 {
                self.retries += 1;
                let delay = backoff_delay(
                    self.current_peer(),
                    attempt - 1,
                    self.options.backoff_base,
                    self.options.backoff_cap,
                );
                std::thread::sleep(delay);
            }
            let reply = match self.round_trip_once(line) {
                Ok(r) => r,
                Err(e) => {
                    last_io = Some(e);
                    self.rotate(); // the peer may be dead: try the next
                    continue;
                }
            };
            let v = json::parse(reply.trim())
                .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                return Ok(v);
            }
            let code = v.get("error").and_then(Json::as_str).and_then(ErrorCode::parse);
            let detail = v.get("detail").and_then(Json::as_str).unwrap_or("(no detail)").to_owned();
            match code {
                Some(ErrorCode::Overloaded) => {
                    // Shed or shutting down: with peers available, a
                    // sibling may have capacity right now.
                    if self.peers.len() > 1 {
                        self.rotate();
                    }
                    last_daemon = Some(ClientError::Daemon { code, detail });
                    continue;
                }
                Some(ErrorCode::NotPrimary) => {
                    last_daemon = Some(ClientError::Daemon { code, detail });
                    self.rotate();
                    continue;
                }
                _ => return Err(ClientError::Daemon { code, detail }),
            }
        }
        Err(match (last_daemon, last_io) {
            (Some(e), _) => e,
            (None, Some(e)) => ClientError::Io(e),
            (None, None) => ClientError::Daemon {
                code: Some(ErrorCode::Overloaded),
                detail: "still overloaded after retries".into(),
            },
        })
    }

    /// Register (or idempotently re-attach to) a tenant. Returns the
    /// number of ticks the daemon already holds — the seq to resume at.
    pub fn register(&mut self, tenant: &str, spec: &TenantSpec) -> Result<u64, ClientError> {
        let mut fields = vec![
            ("op", json::s("register")),
            ("tenant", json::s(tenant)),
            ("fleet", json::s(&spec.fleet)),
            ("algo", json::s(&spec.algo)),
            ("engine", Json::Bool(spec.engine)),
            ("cache", Json::Bool(spec.cache)),
            ("grid", json::s(spec.grid.to_wire())),
        ];
        if let Some(us) = spec.deadline_us {
            fields.push(("deadline_us", json::n(us as f64)));
        }
        if spec.snapshot_every > 0 {
            fields.push(("snapshot_every", json::n(spec.snapshot_every as f64)));
        }
        let v = self.round_trip(&json::obj(fields).to_line())?;
        v.get("resumed_ticks")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("register reply missing resumed_ticks".into()))
    }

    /// Send one tick and return the decision. Retransmits transparently;
    /// a replayed decision is flagged but otherwise identical.
    pub fn tick(&mut self, tenant: &str, seq: u64, load: f64) -> Result<Decision, ClientError> {
        let line = json::obj(vec![
            ("op", json::s("tick")),
            ("tenant", json::s(tenant)),
            ("seq", json::n(seq as f64)),
            ("load", json::n(load)),
        ])
        .to_line();
        let v = self.round_trip(&line)?;
        let counts: Option<Vec<u32>> = v.get("config").and_then(|c| match c {
            Json::Arr(items) => items
                .iter()
                .map(|i| i.as_u64().map(|u| u32::try_from(u).unwrap_or(u32::MAX)))
                .collect(),
            _ => None,
        });
        let config = Config::new(
            counts.ok_or_else(|| ClientError::Protocol("tick reply missing config".into()))?,
        );
        Ok(Decision {
            seq: v.get("seq").and_then(Json::as_u64).unwrap_or(seq),
            config,
            rung: v.get("rung").and_then(Json::as_str).unwrap_or("exact").to_owned(),
            replayed: v.get("replayed").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Ask the daemon for its health line.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.round_trip(&json::obj(vec![("op", json::s("health"))]).to_line())
    }

    /// Ask the daemon for its metrics line.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.round_trip(&json::obj(vec![("op", json::s("metrics"))]).to_line())
    }

    /// Request an orderly daemon shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(&json::obj(vec![("op", json::s("shutdown"))]).to_line())?;
        Ok(())
    }

    /// Total time budget a full retry ladder can take (used by callers
    /// sizing their own deadlines).
    #[must_use]
    pub fn worst_case_latency(&self) -> Duration {
        let mut total = self.options.timeout * self.options.max_attempts;
        for attempt in 0..self.options.max_attempts.saturating_sub(1) {
            total += backoff_delay(
                self.current_peer(),
                attempt,
                self.options.backoff_base,
                self.options.backoff_cap,
            );
        }
        total
    }
}

/// Convenience: elapse-bounded wait for a daemon to come up (tests).
pub fn wait_until_healthy(addr: &str, deadline: Duration) -> bool {
    let start = Instant::now();
    let mut client = Client::new(
        addr,
        ClientOptions {
            timeout: Duration::from_millis(250),
            max_attempts: 1,
            ..Default::default()
        },
    );
    while start.elapsed() < deadline {
        if client.health().is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

//! Primary/replica replication for the serve daemon.
//!
//! The paper's DP is deterministic — a property every layer since the
//! kernel work is property-tested on, bit for bit — so the daemon is a
//! textbook replicated state machine: ship the *inputs* (the per-tenant
//! WAL records, with their end-to-end FNV-1a frames intact) and the
//! replica reproduces the *outputs* by applying them through the
//! identical tenant step path. Replication is **pull-based** over the
//! same line-JSON protocol production traffic uses: the replica sends
//! `repl.sync` with how many ticks it holds per tenant, the primary
//! answers with the missing frames, its latest durable-snapshot
//! coverage (`snap_k`), and a ring of periodic state fingerprints.
//!
//! **Divergence detection.** Every `fingerprint_every` accepted ticks
//! the daemon seals its canonical committed state — spec, bit-exact
//! loads, and (when the degradation ladder is off) committed decisions
//! — into an `RSZSNAP` envelope and records the FNV-1a over those
//! bytes. The replica recomputes the same fingerprint from its own
//! state and compares; a mismatch — a bit flip, a non-deterministic
//! code path, version skew — quarantines the tenant on the replica
//! with [`crate::tenant::QuarantineReason::Divergence`], so a diverged
//! replica can be promoted but will never serve the divergent plan.
//! Two things are deliberately *outside* the fingerprint: shared-pool
//! counters (aggregated across co-tenants, so they depend on
//! cross-tenant interleaving, not on this tenant's state) and — when
//! the ladder is armed — committed decisions (rung descent follows
//! wall-clock overruns, so a faithful replica may legitimately
//! differ; the load prefix is still covered bit-exactly).
//!
//! **Failover.** The replica counts consecutive failed syncs; once the
//! count crosses the lease threshold the primary is presumed dead and
//! [`Daemon::promote`] flips the role Replica → Promoting → Primary.
//! The lease is deterministic in sync attempts (wall-clock enters only
//! through the sync interval), which is what lets the chaos suite kill
//! the primary at every tick offset and reproduce the exact failover
//! from the seed alone.

use std::sync::Arc;
use std::time::Duration;

use rsz_core::Config;
use rsz_offline::{checksum, Encoder};

use crate::client::{Client, ClientOptions};
use crate::daemon::Daemon;
use crate::json;
use crate::spec::TenantSpec;

/// The daemon's replication role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, serves `repl.sync`.
    Primary,
    /// Applies the primary's stream; rejects writes with `not_primary`.
    Replica,
    /// Mid-failover: the lease expired and promotion is running.
    Promoting,
}

impl Role {
    /// Stable wire/metrics name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
            Role::Promoting => "promoting",
        }
    }

    /// Atomic-storage encoding.
    #[must_use]
    pub fn to_u8(self) -> u8 {
        match self {
            Role::Primary => 0,
            Role::Replica => 1,
            Role::Promoting => 2,
        }
    }

    /// Inverse of [`Role::to_u8`]; unknown values read as `Primary`
    /// (the single-node default).
    #[must_use]
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => Role::Replica,
            2 => Role::Promoting,
            _ => Role::Primary,
        }
    }
}

/// FNV-1a over the sealed `RSZSNAP` canonical-state bytes of one
/// tenant at `loads.len()` accepted ticks. Pass `decisions` only when
/// the degradation ladder is off for this tenant (see the module docs
/// for why); both sides of a sync derive that flag the same way, so
/// the flavors always line up.
#[must_use]
pub fn state_fingerprint(spec: &TenantSpec, loads: &[f64], decisions: Option<&[Config]>) -> u64 {
    let mut enc = Encoder::new();
    enc.put_u8(1); // canonical-state layout version
    spec.encode(&mut enc);
    enc.put_usize(loads.len());
    for &load in loads {
        enc.put_f64(load);
    }
    match decisions {
        None => enc.put_u8(0),
        Some(committed) => {
            enc.put_u8(1);
            enc.put_usize(committed.len());
            for config in committed {
                let counts = config.counts();
                enc.put_usize(counts.len());
                for &c in counts {
                    enc.put_u32(c);
                }
            }
        }
    }
    checksum(&enc.into_sealed())
}

/// Lowercase hex of `bytes` — how WAL frames ride inside a JSON line
/// without losing their end-to-end FNV-1a framing.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode lowercase/uppercase hex; `None` on odd length or a non-hex
/// byte (a structured rejection, never a panic).
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

/// What one applied sync did on the replica.
#[derive(Clone, Debug, Default)]
pub struct ApplyReport {
    /// Tenants the reply carried.
    pub tenants: usize,
    /// Fresh ticks applied through the step path.
    pub applied: u64,
    /// Fingerprints checked against locally recomputed ones.
    pub fp_checks: u64,
    /// Fingerprint mismatches (each quarantines its tenant).
    pub fp_mismatches: u64,
    /// Accepted-tick lag vs the primary after this apply (0 when fully
    /// caught up).
    pub lag: u64,
    /// Per-tenant structured failures (frame integrity, apply errors);
    /// the rest of the reply is still applied.
    pub errors: Vec<String>,
}

/// Options for a [`Replicator`].
#[derive(Clone, Debug)]
pub struct ReplicaOptions {
    /// Self-chosen identifier echoed by the primary (logs/metrics).
    pub replica_id: String,
    /// Consecutive failed syncs before the lease is considered expired
    /// and the replica promotes itself.
    pub lease_failures: u32,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        Self { replica_id: "replica".into(), lease_failures: 5 }
    }
}

/// The replica-side sync driver. Transport-agnostic: the chaos suite
/// drives it with an in-process closure over the primary's
/// [`Daemon::handle`] (injecting drop/partition/delay/reorder faults
/// deterministically), and `rsz serve --replica-of` drives it with a
/// [`Client`] over TCP — the logic in between is identical.
pub struct Replicator {
    daemon: Arc<Daemon>,
    options: ReplicaOptions,
    consecutive_failures: u32,
    /// Successful syncs.
    pub syncs: u64,
    /// Failed syncs (transport or apply).
    pub failures: u64,
}

impl Replicator {
    /// A replicator applying into `daemon` (which should be in
    /// [`Role::Replica`]).
    #[must_use]
    pub fn new(daemon: Arc<Daemon>, options: ReplicaOptions) -> Self {
        Self { daemon, options, consecutive_failures: 0, syncs: 0, failures: 0 }
    }

    /// The `repl.sync` request line for the daemon's current holdings.
    #[must_use]
    pub fn sync_request(&self) -> String {
        let have = self
            .daemon
            .replication_have()
            .into_iter()
            .map(|(tenant, n)| (tenant, json::n(n as f64)))
            .collect();
        json::obj(vec![
            ("op", json::s("repl.sync")),
            ("replica", json::s(&self.options.replica_id)),
            ("have", json::obj_owned(have)),
        ])
        .to_line()
    }

    /// One pull-apply round trip. `transport` carries the request line
    /// to the primary and returns its reply line; any transport or
    /// apply failure counts against the lease.
    pub fn sync_once(
        &mut self,
        transport: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<ApplyReport, String> {
        let request = self.sync_request();
        let outcome = transport(&request).and_then(|reply| self.daemon.apply_sync(&reply));
        match outcome {
            Ok(report) => {
                self.consecutive_failures = 0;
                self.syncs += 1;
                Ok(report)
            }
            Err(e) => {
                self.consecutive_failures += 1;
                self.failures += 1;
                Err(e)
            }
        }
    }

    /// Failed syncs since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether the primary's lease has expired.
    #[must_use]
    pub fn lease_expired(&self) -> bool {
        self.consecutive_failures >= self.options.lease_failures
    }

    /// Promote the daemon if the lease expired and it is still a
    /// replica. Returns whether a promotion happened.
    pub fn maybe_promote(&mut self) -> bool {
        if self.lease_expired() && self.daemon.role() == Role::Replica {
            self.daemon.promote();
            return true;
        }
        false
    }
}

/// The TCP replica loop behind `rsz serve --replica-of`: pull from
/// `primary` every `interval` until the daemon shuts down or promotes
/// itself after the lease expires. Returns whether this replica ended
/// up promoted.
pub fn run_replica(
    daemon: &Arc<Daemon>,
    primary: &str,
    interval: Duration,
    options: ReplicaOptions,
) -> bool {
    let mut client = Client::new(
        primary,
        ClientOptions {
            timeout: interval.max(Duration::from_millis(250)),
            max_attempts: 1,
            ..ClientOptions::default()
        },
    );
    let mut replicator = Replicator::new(Arc::clone(daemon), options);
    while !daemon.shutdown_requested() && daemon.role() == Role::Replica {
        let mut transport =
            |line: &str| client.round_trip(line).map(|v| v.to_line()).map_err(|e| e.to_string());
        let _ = replicator.sync_once(&mut transport);
        if replicator.maybe_promote() {
            return true;
        }
        std::thread::sleep(interval);
    }
    daemon.role() != Role::Replica
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;

    fn spec() -> TenantSpec {
        TenantSpec {
            fleet: "homogeneous:4".into(),
            algo: "b".into(),
            engine: true,
            cache: false,
            grid: GridSpec::Full,
            deadline_us: None,
            snapshot_every: 0,
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [vec![], vec![0u8], vec![0xde, 0xad, 0xbe, 0xef], (0..=255).collect()] {
            assert_eq!(from_hex(&to_hex(&bytes)).as_deref(), Some(&bytes[..]));
        }
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
        assert_eq!(from_hex("ABCD"), from_hex("abcd"), "case-insensitive");
    }

    #[test]
    fn fingerprints_are_deterministic_and_bit_sensitive() {
        let loads = [1.0, 2.5, 0.25];
        let decisions = vec![Config::new(vec![1]), Config::new(vec![2]), Config::new(vec![1])];
        let a = state_fingerprint(&spec(), &loads, Some(&decisions));
        assert_eq!(a, state_fingerprint(&spec(), &loads, Some(&decisions)));
        // One mantissa bit in one load must change the fingerprint.
        let mut flipped = loads;
        flipped[1] = f64::from_bits(flipped[1].to_bits() ^ (1 << 30));
        assert_ne!(a, state_fingerprint(&spec(), &flipped, Some(&decisions)));
        // A different decision must change the full flavor…
        let mut other = decisions.clone();
        other[2] = Config::new(vec![3]);
        assert_ne!(a, state_fingerprint(&spec(), &loads, Some(&other)));
        // …and the loads-only flavor must ignore decisions entirely.
        assert_eq!(
            state_fingerprint(&spec(), &loads, None),
            state_fingerprint(&spec(), &loads, None)
        );
        assert_ne!(a, state_fingerprint(&spec(), &loads, None));
    }

    #[test]
    fn roles_round_trip_their_wire_forms() {
        for role in [Role::Primary, Role::Replica, Role::Promoting] {
            assert_eq!(Role::from_u8(role.to_u8()), role);
            assert!(!role.as_str().is_empty());
        }
        assert_eq!(Role::from_u8(99), Role::Primary);
    }
}

//! Per-tenant write-ahead log of accepted telemetry.
//!
//! Every record the daemon *accepts* — the tenant's registration and
//! each validated tick — is appended here before the controller
//! decides, so a crash between append and reply loses at most the
//! reply, never the tick. Framing per record:
//!
//! ```text
//! [u32 LE payload length][payload][u64 LE FNV-1a(payload)]
//! ```
//!
//! Recovery distinguishes two failure shapes, because they demand
//! opposite responses:
//!
//! * **torn tail** — the file ends mid-record, exactly what `kill -9`
//!   during an append leaves behind. The complete prefix is valid;
//!   recovery truncates the tail and resumes.
//! * **corruption** — a complete record whose checksum does not match,
//!   or framing that cannot be (a declared length beyond
//!   [`MAX_RECORD`]). The log cannot be trusted past this point;
//!   recovery quarantines the tenant and reports the byte range that
//!   failed the check.
//!
//! The log is **segmented**: the active file `<tenant>.wal` is sealed
//! (renamed to `<tenant>.NNNNNNNNNNNN.walseg`, the number being the
//! count of accepted ticks it runs through) once it crosses a size
//! threshold, and a fresh active segment opens with its own
//! registration record so every segment is self-describing. Sealing
//! happens only at record boundaries, so a torn tail is legal **only**
//! in the active segment — a short sealed segment is corruption.
//! Sealed segments fully covered by a durable snapshot are deleted
//! (compaction), which is what bounds the log's size.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use rsz_offline::{checksum, Decoder, Encoder, SnapshotError};

use crate::spec::TenantSpec;

/// Sanity bound on a single record's payload. Registrations are a few
/// hundred bytes, ticks seventeen; anything claiming more is framing
/// damage, not a long record.
pub const MAX_RECORD: usize = 1 << 20;

/// One accepted event.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// The tenant registered with this spec (always the first record).
    Register(TenantSpec),
    /// One accepted telemetry tick.
    Tick {
        /// Client sequence number; contiguous from 0 in a valid log.
        seq: u64,
        /// The validated load (finite, non-negative, within capacity).
        load: f64,
    },
}

/// How the log ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a complete, checksummed record.
    Clean,
    /// The file ends mid-record at this offset; the prefix before it is
    /// intact. Crash-consistent — truncate and resume.
    Torn { at: usize },
    /// The byte range `start..end` failed its integrity check (FNV-1a
    /// mismatch or impossible framing). Not crash-consistent —
    /// quarantine.
    Corrupt { start: usize, end: usize, what: &'static str },
}

/// The outcome of scanning a WAL image.
#[derive(Clone, Debug)]
pub struct WalScan {
    /// Records recovered from the intact prefix.
    pub records: Vec<WalRecord>,
    /// Number of bytes of intact prefix (where a torn tail would be
    /// truncated to).
    pub intact_len: usize,
    /// How the scan ended.
    pub tail: WalTail,
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut enc = Encoder::new();
    match record {
        WalRecord::Register(spec) => {
            enc.put_u8(1);
            spec.encode(&mut enc);
        }
        WalRecord::Tick { seq, load } => {
            enc.put_u8(2);
            enc.put_u64(*seq);
            enc.put_f64(*load);
        }
    }
    enc.payload().to_vec()
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, SnapshotError> {
    let mut dec = Decoder::over(payload);
    let record = match dec.take_u8()? {
        1 => WalRecord::Register(TenantSpec::decode(&mut dec)?),
        2 => WalRecord::Tick { seq: dec.take_u64()?, load: dec.take_f64()? },
        _ => return Err(SnapshotError::Corrupt("unknown WAL record tag")),
    };
    if !dec.is_empty() {
        return Err(SnapshotError::Corrupt("trailing bytes inside a WAL record"));
    }
    Ok(record)
}

/// Frame one record: length, payload, checksum.
#[must_use]
pub fn frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record fits u32").to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out
}

/// Scan a WAL image into records plus a tail classification. Never
/// fails: damage is reported in [`WalScan::tail`], and the records of
/// the intact prefix are always returned.
#[must_use]
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        if at == bytes.len() {
            return WalScan { records, intact_len: at, tail: WalTail::Clean };
        }
        let rest = &bytes[at..];
        if rest.len() < 4 {
            return WalScan { records, intact_len: at, tail: WalTail::Torn { at } };
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            return WalScan {
                records,
                intact_len: at,
                tail: WalTail::Corrupt { start: at, end: at + 4, what: "impossible record length" },
            };
        }
        let framed = 4 + len + 8;
        if rest.len() < framed {
            return WalScan { records, intact_len: at, tail: WalTail::Torn { at } };
        }
        let payload = &rest[4..4 + len];
        let stored = u64::from_le_bytes(rest[4 + len..framed].try_into().expect("8 bytes"));
        if checksum(payload) != stored {
            return WalScan {
                records,
                intact_len: at,
                tail: WalTail::Corrupt {
                    start: at + 4,
                    end: at + 4 + len,
                    what: "record failed its FNV-1a check",
                },
            };
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                return WalScan {
                    records,
                    intact_len: at,
                    tail: WalTail::Corrupt {
                        start: at + 4,
                        end: at + 4 + len,
                        what: "record checksum ok but contents undecodable",
                    },
                }
            }
        }
        at += framed;
    }
}

/// An open, append-only WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    fsync: bool,
    bytes: u64,
}

impl WalWriter {
    /// Open (creating if absent) the WAL at `path` for appending.
    pub fn open(path: &Path, fsync: bool) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Self { file, fsync, bytes })
    }

    /// Append one record and flush it to the OS. With `fsync` the write
    /// is also forced to stable storage — survives power loss, not just
    /// process death.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let framed = frame(record);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.bytes += framed.len() as u64;
        Ok(())
    }

    /// Size of the file this writer has appended through, in bytes —
    /// what segment rotation checks against its threshold.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Force everything appended so far to stable storage (graceful
    /// shutdown does this even when per-append `fsync` is off).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// Read a whole WAL file; a missing file is an empty log.
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            Ok(buf)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Truncate the WAL at `path` to `len` bytes (drop a torn tail).
pub fn truncate_file(path: &Path, len: usize) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len as u64)
}

/// `<dir>/<tenant>.wal`
#[must_use]
pub fn wal_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.wal"))
}

/// `<dir>/<tenant>.snap`
#[must_use]
pub fn snap_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.snap"))
}

/// `<dir>/<tenant>.NNNNNNNNNNNN.walseg` — a sealed segment running
/// through `through` accepted ticks (zero-padded so the lexicographic
/// order of segment files is their numeric order).
#[must_use]
pub fn seg_path(dir: &Path, tenant: &str, through: u64) -> PathBuf {
    dir.join(format!("{tenant}.{through:012}.walseg"))
}

/// The sealed segments of `tenant` under `dir`, as `(through, path)`
/// pairs in ascending `through` order. A missing directory is an empty
/// list; files whose names don't parse are ignored (they are not ours).
#[must_use]
pub fn list_segments(dir: &Path, tenant: &str) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let prefix = format!("{tenant}.");
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else { continue };
        let Some(digits) = rest.strip_suffix(".walseg") else { continue };
        if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        if let Ok(through) = digits.parse::<u64>() {
            out.push((through, path));
        }
    }
    out.sort_by_key(|&(through, _)| through);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;

    fn spec() -> TenantSpec {
        TenantSpec {
            fleet: "homogeneous:4".into(),
            algo: "b".into(),
            engine: true,
            cache: false,
            grid: GridSpec::Full,
            deadline_us: None,
            snapshot_every: 0,
        }
    }

    fn sample_log() -> (Vec<WalRecord>, Vec<u8>) {
        let records = vec![
            WalRecord::Register(spec()),
            WalRecord::Tick { seq: 0, load: 1.5 },
            WalRecord::Tick { seq: 1, load: 0.0 },
            WalRecord::Tick { seq: 2, load: 2.25 },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&frame(r));
        }
        (records, bytes)
    }

    #[test]
    fn clean_logs_round_trip() {
        let (records, bytes) = sample_log();
        let s = scan(&bytes);
        assert_eq!(s.tail, WalTail::Clean);
        assert_eq!(s.records, records);
        assert_eq!(s.intact_len, bytes.len());
        assert_eq!(scan(&[]).tail, WalTail::Clean);
    }

    #[test]
    fn every_truncation_point_is_torn_or_clean_never_corrupt() {
        let (records, bytes) = sample_log();
        let boundaries: Vec<usize> = {
            let mut v = vec![0];
            let mut at = 0;
            for r in &records {
                at += frame(r).len();
                v.push(at);
            }
            v
        };
        for cut in 0..bytes.len() {
            let s = scan(&bytes[..cut]);
            if boundaries.contains(&cut) {
                assert_eq!(s.tail, WalTail::Clean, "cut at boundary {cut}");
            } else {
                let at = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
                assert_eq!(s.tail, WalTail::Torn { at }, "cut at {cut}");
                assert_eq!(s.intact_len, at);
            }
            // The recovered prefix is always a prefix of the original.
            assert_eq!(s.records[..], records[..s.records.len()]);
        }
    }

    #[test]
    fn bit_flips_in_payload_or_checksum_are_corrupt() {
        let (_, bytes) = sample_log();
        // Flip a bit inside the first record's payload.
        let mut dirty = bytes.clone();
        dirty[6] ^= 0x10;
        let s = scan(&dirty);
        match s.tail {
            WalTail::Corrupt { start, end, .. } => {
                assert!(start <= 6 && 6 < end, "range {start}..{end} must cover the flip");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert!(s.records.is_empty());

        // An impossible declared length is corruption, not a torn tail.
        let mut huge = bytes;
        huge[0..4].copy_from_slice(&(MAX_RECORD as u32 + 1).to_le_bytes());
        assert!(matches!(scan(&huge).tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn segment_listing_orders_and_filters() {
        let dir = std::env::temp_dir().join(format!("rsz-walseg-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for through in [12u64, 3, 7] {
            std::fs::write(seg_path(&dir, "t1", through), b"x").unwrap();
        }
        // Another tenant's segment and unrelated files must not leak in.
        std::fs::write(seg_path(&dir, "t2", 1), b"x").unwrap();
        std::fs::write(dir.join("t1.wal"), b"x").unwrap();
        std::fs::write(dir.join("t1.notdigits.walseg"), b"x").unwrap();
        let segs = list_segments(&dir, "t1");
        let throughs: Vec<u64> = segs.iter().map(|&(t, _)| t).collect();
        assert_eq!(throughs, vec![3, 7, 12]);
        assert!(list_segments(&dir.join("missing"), "t1").is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_tracks_bytes_across_reopen() {
        let dir = std::env::temp_dir().join(format!("rsz-walbytes-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "t");
        let mut w = WalWriter::open(&path, false).unwrap();
        assert_eq!(w.bytes(), 0);
        w.append(&WalRecord::Tick { seq: 0, load: 1.0 }).unwrap();
        let after_one = w.bytes();
        assert_eq!(after_one as usize, frame(&WalRecord::Tick { seq: 0, load: 1.0 }).len());
        drop(w);
        let w = WalWriter::open(&path, false).unwrap();
        assert_eq!(w.bytes(), after_one, "reopen must resume the on-disk size");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_appends_scannable_records() {
        let dir = std::env::temp_dir().join(format!("rsz-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "t1");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, false).unwrap();
        w.append(&WalRecord::Register(spec())).unwrap();
        w.append(&WalRecord::Tick { seq: 0, load: 3.0 }).unwrap();
        drop(w);
        // Re-open appends, as a restarted daemon would.
        let mut w = WalWriter::open(&path, false).unwrap();
        w.append(&WalRecord::Tick { seq: 1, load: 1.0 }).unwrap();
        drop(w);
        let bytes = read_file(&path).unwrap();
        let s = scan(&bytes);
        assert_eq!(s.tail, WalTail::Clean);
        assert_eq!(s.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Tenant specifications and boxed controllers.
//!
//! A tenant registers with a *spec*: fleet preset, algorithm, grid,
//! engine/cache toggles, an optional per-decision deadline and a
//! snapshot cadence. The spec is the unit of determinism — the WAL
//! records it verbatim, recovery rebuilds the controller from it, and
//! two tenants with byte-equal `(fleet, grid)` halves share one priced
//! slot pool.
//!
//! [`BoxController`] erases the concrete controller type (five
//! algorithms × two oracles) behind one object that still implements
//! [`OnlineAlgorithm`] and [`Checkpoint`], so the daemon wraps every
//! tenant in the same `GracefulDegrader<BoxController, _>` ladder.

use rsz_core::{Config, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::{Decoder, Encoder, EngineStats, GridMode, SharedSlotPool, SnapshotError};
use rsz_online::algo_a::AOptions;
use rsz_online::algo_c::COptions;
use rsz_online::{
    AlgorithmA, AlgorithmB, AlgorithmC, Checkpoint, LazyCapacityProvisioning, OnlineAlgorithm,
    RecedingHorizon,
};
use rsz_workloads::fleet;

use crate::protocol::wire;

/// The grid half of a tenant spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GridSpec {
    /// The exact full grid.
    Full,
    /// The geometric `Γ(γ)` grid.
    Gamma(f64),
}

impl GridSpec {
    /// The offline [`GridMode`] this spec selects.
    #[must_use]
    pub fn mode(self) -> GridMode {
        match self {
            GridSpec::Full => GridMode::Full,
            GridSpec::Gamma(g) => GridMode::Gamma(g),
        }
    }

    /// Parse `"full"` or `"gamma:G"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "full" {
            return Ok(GridSpec::Full);
        }
        if let Some(g) = s.strip_prefix("gamma:") {
            let g: f64 = g.parse().map_err(|e| format!("bad gamma: {e}"))?;
            if !(g > 1.0 && g.is_finite()) {
                return Err("gamma must be a finite number > 1".into());
            }
            return Ok(GridSpec::Gamma(g));
        }
        Err(format!("unknown grid `{s}` (expected `full` or `gamma:G`)"))
    }

    /// The wire form [`GridSpec::parse`] accepts.
    #[must_use]
    pub fn to_wire(self) -> String {
        match self {
            GridSpec::Full => "full".into(),
            GridSpec::Gamma(g) => format!("gamma:{g}"),
        }
    }
}

/// Everything needed to (re)build one tenant's controller
/// deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Fleet preset spec (`rsz_workloads::fleet::parse` syntax). Also
    /// the tenant's pool-sharing key together with `grid`.
    pub fleet: String,
    /// Algorithm spec: `a`, `b`, `c[:EPS]`, `lcp`, `rhc[:WINDOW]` —
    /// plus the fault hook `panic:T` when the daemon allows it.
    pub algo: String,
    /// Price through the online decision engine (priced-slot pool).
    pub engine: bool,
    /// Wrap the oracle in a `CachedDispatcher`.
    pub cache: bool,
    /// Prefix-solver grid.
    pub grid: GridSpec,
    /// Per-decision budget in µs: `None` inherits the daemon default,
    /// `Some(0)` disables the ladder for this tenant (bit-transparent).
    pub deadline_us: Option<u64>,
    /// Snapshot after every `K` fresh decisions (`0` = daemon default).
    pub snapshot_every: usize,
}

impl TenantSpec {
    /// Validate the spec against nothing but itself (fleet parse,
    /// algorithm name, grid) — the checks that can fail before any
    /// telemetry arrives.
    pub fn validate(&self, allow_fault_hooks: bool) -> Result<(), String> {
        let types = fleet::parse(&self.fleet)?;
        let algo = base_algo(&self.algo);
        match algo {
            "a" | "b" | "c" | "rhc" => {}
            "lcp" => {
                if types.len() != 1 {
                    return Err("lcp requires a homogeneous fleet (d = 1)".into());
                }
            }
            "panic" => {
                if !allow_fault_hooks {
                    return Err("fault hooks are not enabled on this daemon".into());
                }
            }
            _ => return Err(format!("unknown algorithm `{}`", self.algo)),
        }
        algo_param(&self.algo)?;
        Ok(())
    }

    /// The key under which this tenant's priced-slot pool is shared:
    /// tenants with equal keys have identical cost models and grids, so
    /// their `(partition, λ, grid)` pricings are interchangeable.
    #[must_use]
    pub fn pool_key(&self) -> String {
        format!("{}/{}", self.fleet, self.grid.to_wire())
    }

    /// The fleet this spec names.
    pub fn server_types(&self) -> Result<Vec<ServerType>, String> {
        fleet::parse(&self.fleet)
    }

    /// The per-decision deadline this spec selects under a daemon-wide
    /// default: `None` inherits the default, `Some(0)` disables the
    /// ladder outright, anything else is the tenant's own budget.
    ///
    /// When this resolves to `None` the degradation ladder is a
    /// bit-transparent shim, which is what makes re-stepping this
    /// tenant's ticks — recovery replay and replication apply alike —
    /// reproduce its decisions bit-identically.
    #[must_use]
    pub fn effective_deadline(
        &self,
        daemon_default: Option<std::time::Duration>,
    ) -> Option<std::time::Duration> {
        match self.deadline_us {
            None => daemon_default,
            Some(0) => None,
            Some(us) => Some(std::time::Duration::from_micros(us)),
        }
    }

    /// Serialize into a WAL/snapshot payload.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.fleet.as_bytes());
        enc.put_bytes(self.algo.as_bytes());
        enc.put_u8(u8::from(self.engine));
        enc.put_u8(u8::from(self.cache));
        match self.grid {
            GridSpec::Full => enc.put_u8(0),
            GridSpec::Gamma(g) => {
                enc.put_u8(1);
                enc.put_f64(g);
            }
        }
        enc.put_u64(self.deadline_us.map_or(u64::MAX, |v| v.min(u64::MAX - 1)));
        enc.put_usize(self.snapshot_every);
    }

    /// Decode a payload written by [`TenantSpec::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let fleet = wire::take_str(dec, "fleet spec")?;
        let algo = wire::take_str(dec, "algo spec")?;
        let engine = dec.take_u8()? != 0;
        let cache = dec.take_u8()? != 0;
        let grid = match dec.take_u8()? {
            0 => GridSpec::Full,
            1 => GridSpec::Gamma(dec.take_f64()?),
            _ => return Err(SnapshotError::Corrupt("unknown grid tag")),
        };
        let deadline_us = match dec.take_u64()? {
            u64::MAX => None,
            v => Some(v),
        };
        let snapshot_every = dec.take_usize()?;
        Ok(Self { fleet, algo, engine, cache, grid, deadline_us, snapshot_every })
    }
}

/// `"c:0.25"` → `"c"`, `"rhc:4"` → `"rhc"`.
fn base_algo(algo: &str) -> &str {
    algo.split_once(':').map_or(algo, |(base, _)| base)
}

/// The numeric parameter of a parameterized algo spec, validated.
fn algo_param(algo: &str) -> Result<Option<f64>, String> {
    match algo.split_once(':') {
        None => Ok(None),
        Some((base, param)) => {
            let v: f64 = param.parse().map_err(|e| format!("bad parameter for `{base}`: {e}"))?;
            let ok = match base {
                "c" => v > 0.0 && v.is_finite(),
                "rhc" | "panic" => v >= 1.0 && v.fract() == 0.0 && v <= 1e9,
                _ => return Err(format!("algorithm `{base}` takes no parameter")),
            };
            if !ok {
                return Err(format!("parameter {param} out of range for `{base}`"));
            }
            Ok(Some(v))
        }
    }
}

/// Object-safe view of a checkpointable controller — what the daemon
/// needs from all ten concrete controller types.
pub trait ServeController: Send {
    fn ctl_name(&self) -> String;
    fn ctl_decide(&mut self, instance: &Instance, t: usize) -> Config;
    fn ctl_tag(&self) -> &'static str;
    fn ctl_save(&self, enc: &mut Encoder);
    fn ctl_restore(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError>;
    fn ctl_engine_stats(&self) -> Option<EngineStats>;
    /// Install a shared pricing pool; `false` when the controller does
    /// not pool (engine off, or a windowed solver with internal pools).
    fn ctl_share_pool(&mut self, pool: SharedSlotPool) -> bool;
}

macro_rules! impl_serve_controller {
    ($ty:ty) => {
        impl ServeController for $ty {
            fn ctl_name(&self) -> String {
                OnlineAlgorithm::name(self)
            }
            fn ctl_decide(&mut self, instance: &Instance, t: usize) -> Config {
                OnlineAlgorithm::decide(self, instance, t)
            }
            fn ctl_tag(&self) -> &'static str {
                Checkpoint::algo_tag(self)
            }
            fn ctl_save(&self, enc: &mut Encoder) {
                Checkpoint::save_state(self, enc);
            }
            fn ctl_restore(
                &mut self,
                instance: &Instance,
                dec: &mut Decoder<'_>,
            ) -> Result<(), SnapshotError> {
                Checkpoint::restore_state(self, instance, dec)
            }
            fn ctl_engine_stats(&self) -> Option<EngineStats> {
                self.engine_stats()
            }
            fn ctl_share_pool(&mut self, pool: SharedSlotPool) -> bool {
                self.share_pool(pool)
            }
        }
    };
}

impl_serve_controller!(AlgorithmA<Dispatcher>);
impl_serve_controller!(AlgorithmA<CachedDispatcher>);
impl_serve_controller!(AlgorithmB<Dispatcher>);
impl_serve_controller!(AlgorithmB<CachedDispatcher>);
impl_serve_controller!(AlgorithmC<Dispatcher>);
impl_serve_controller!(AlgorithmC<CachedDispatcher>);
impl_serve_controller!(LazyCapacityProvisioning<Dispatcher>);
impl_serve_controller!(LazyCapacityProvisioning<CachedDispatcher>);

// The receding-horizon baseline pools per window internally and does
// not expose pool injection; everything else forwards.
macro_rules! impl_serve_controller_rhc {
    ($ty:ty) => {
        impl ServeController for $ty {
            fn ctl_name(&self) -> String {
                OnlineAlgorithm::name(self)
            }
            fn ctl_decide(&mut self, instance: &Instance, t: usize) -> Config {
                OnlineAlgorithm::decide(self, instance, t)
            }
            fn ctl_tag(&self) -> &'static str {
                Checkpoint::algo_tag(self)
            }
            fn ctl_save(&self, enc: &mut Encoder) {
                Checkpoint::save_state(self, enc);
            }
            fn ctl_restore(
                &mut self,
                instance: &Instance,
                dec: &mut Decoder<'_>,
            ) -> Result<(), SnapshotError> {
                Checkpoint::restore_state(self, instance, dec)
            }
            fn ctl_engine_stats(&self) -> Option<EngineStats> {
                self.engine_stats()
            }
            fn ctl_share_pool(&mut self, _pool: SharedSlotPool) -> bool {
                false
            }
        }
    };
}

impl_serve_controller_rhc!(RecedingHorizon<Dispatcher>);
impl_serve_controller_rhc!(RecedingHorizon<CachedDispatcher>);

/// A fault-injection hook: behaves exactly like Algorithm B but panics
/// on the decision for slot `at`. Only constructible when the daemon
/// was started with fault hooks enabled — the serve chaos suite uses it
/// to prove a per-tenant panic is caught at the step boundary and
/// quarantines that tenant, never the daemon.
struct PanicAt<O> {
    at: usize,
    inner: AlgorithmB<O>,
}

impl<O: rsz_core::GtOracle + Sync + Send> ServeController for PanicAt<O>
where
    AlgorithmB<O>: ServeController,
{
    fn ctl_name(&self) -> String {
        format!("panic@{}({})", self.at, self.inner.ctl_name())
    }
    fn ctl_decide(&mut self, instance: &Instance, t: usize) -> Config {
        assert!(t != self.at, "injected fault: controller panic at slot {t}");
        self.inner.ctl_decide(instance, t)
    }
    fn ctl_tag(&self) -> &'static str {
        self.inner.ctl_tag()
    }
    fn ctl_save(&self, enc: &mut Encoder) {
        self.inner.ctl_save(enc);
    }
    fn ctl_restore(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.inner.ctl_restore(instance, dec)
    }
    fn ctl_engine_stats(&self) -> Option<EngineStats> {
        self.inner.ctl_engine_stats()
    }
    fn ctl_share_pool(&mut self, pool: SharedSlotPool) -> bool {
        self.inner.ctl_share_pool(pool)
    }
}

/// A boxed controller that is itself an [`OnlineAlgorithm`] and a
/// [`Checkpoint`] — the uniform currency the daemon's degrader wraps.
pub struct BoxController(pub Box<dyn ServeController>);

impl OnlineAlgorithm for BoxController {
    fn name(&self) -> String {
        self.0.ctl_name()
    }
    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        self.0.ctl_decide(instance, t)
    }
}

impl Checkpoint for BoxController {
    fn algo_tag(&self) -> &'static str {
        self.0.ctl_tag()
    }
    fn save_state(&self, enc: &mut Encoder) {
        self.0.ctl_save(enc);
    }
    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.0.ctl_restore(instance, dec)
    }
}

impl BoxController {
    /// Pricing counters of the wrapped controller's engine.
    #[must_use]
    pub fn engine_stats(&self) -> Option<EngineStats> {
        self.0.ctl_engine_stats()
    }

    /// Install a shared pricing pool on the wrapped controller.
    pub fn share_pool(&mut self, pool: SharedSlotPool) -> bool {
        self.0.ctl_share_pool(pool)
    }
}

/// Build the controller a spec names, against `instance`, on `grid`
/// (the degrader overrides the spec grid for its coarse twin). The spec
/// must already have passed [`TenantSpec::validate`].
pub fn build_controller(
    spec: &TenantSpec,
    instance: &Instance,
    grid: GridMode,
) -> Result<BoxController, String> {
    let aopts = AOptions { grid, engine: spec.engine, ..AOptions::default() };
    let param = algo_param(&spec.algo)?;
    let boxed: Box<dyn ServeController> = match (base_algo(&spec.algo), spec.cache) {
        ("a", false) => Box::new(AlgorithmA::new(instance, Dispatcher::new(), aopts)),
        ("a", true) => Box::new(AlgorithmA::new(instance, CachedDispatcher::new(instance), aopts)),
        ("b", false) => Box::new(AlgorithmB::new(instance, Dispatcher::new(), aopts)),
        ("b", true) => Box::new(AlgorithmB::new(instance, CachedDispatcher::new(instance), aopts)),
        ("c", cache) => {
            let copts =
                COptions { epsilon: param.unwrap_or(0.5), base: aopts, ..COptions::default() };
            if cache {
                Box::new(AlgorithmC::new(instance, CachedDispatcher::new(instance), copts))
            } else {
                Box::new(AlgorithmC::new(instance, Dispatcher::new(), copts))
            }
        }
        ("lcp", false) => Box::new(LazyCapacityProvisioning::with_options(
            instance,
            Dispatcher::new(),
            aopts.dp_options(),
        )),
        ("lcp", true) => Box::new(LazyCapacityProvisioning::with_options(
            instance,
            CachedDispatcher::new(instance),
            aopts.dp_options(),
        )),
        ("rhc", cache) => {
            let window = param.unwrap_or(4.0) as usize;
            if cache {
                Box::new(
                    RecedingHorizon::new(CachedDispatcher::new(instance), window)
                        .with_options(aopts.dp_options()),
                )
            } else {
                Box::new(
                    RecedingHorizon::new(Dispatcher::new(), window)
                        .with_options(aopts.dp_options()),
                )
            }
        }
        ("panic", cache) => {
            let at = param.ok_or("panic:T needs a slot index")? as usize;
            if cache {
                Box::new(PanicAt {
                    at,
                    inner: AlgorithmB::new(instance, CachedDispatcher::new(instance), aopts),
                })
            } else {
                Box::new(PanicAt { at, inner: AlgorithmB::new(instance, Dispatcher::new(), aopts) })
            }
        }
        _ => return Err(format!("unknown algorithm `{}`", spec.algo)),
    };
    Ok(BoxController(boxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(algo: &str) -> TenantSpec {
        TenantSpec {
            fleet: "cpu-gpu:3,1".into(),
            algo: algo.into(),
            engine: true,
            cache: false,
            grid: GridSpec::Full,
            deadline_us: None,
            snapshot_every: 0,
        }
    }

    #[test]
    fn specs_validate_and_round_trip() {
        for algo in ["a", "b", "c", "c:0.25", "rhc", "rhc:6"] {
            let s = spec(algo);
            s.validate(false).unwrap();
            let mut enc = Encoder::new();
            s.encode(&mut enc);
            let sealed = enc.into_sealed();
            let mut dec = Decoder::from_sealed(&sealed).unwrap();
            assert_eq!(TenantSpec::decode(&mut dec).unwrap(), s);
        }
        let mut lcp = spec("lcp");
        assert!(lcp.validate(false).is_err(), "lcp on d=2 must fail");
        lcp.fleet = "homogeneous:4".into();
        lcp.validate(false).unwrap();
        assert!(spec("zeus").validate(false).is_err());
        assert!(spec("panic:3").validate(false).is_err(), "fault hooks off by default");
        spec("panic:3").validate(true).unwrap();
        assert!(spec("c:-1").validate(false).is_err());
        assert!(spec("rhc:0").validate(false).is_err());
    }

    #[test]
    fn grid_specs_parse() {
        assert_eq!(GridSpec::parse("full").unwrap(), GridSpec::Full);
        assert_eq!(GridSpec::parse("gamma:1.5").unwrap(), GridSpec::Gamma(1.5));
        assert!(GridSpec::parse("gamma:1.0").is_err());
        assert!(GridSpec::parse("mesh").is_err());
        for g in [GridSpec::Full, GridSpec::Gamma(2.5)] {
            assert_eq!(GridSpec::parse(&g.to_wire()).unwrap(), g);
        }
    }

    #[test]
    fn pool_keys_separate_fleet_and_grid() {
        let a = spec("b");
        let mut b = spec("a"); // different algo, same fleet+grid: same key
        b.cache = true;
        assert_eq!(a.pool_key(), b.pool_key());
        let mut c = spec("b");
        c.grid = GridSpec::Gamma(2.0);
        assert_ne!(a.pool_key(), c.pool_key());
    }
}

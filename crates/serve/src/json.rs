//! Minimal line-protocol JSON — parse and serialize without any
//! dependency (the workspace builds offline; there is no serde).
//!
//! The daemon's protocol needs exactly what RFC 8259 defines and
//! nothing more: objects, arrays, strings with escapes, `f64` numbers,
//! booleans, null. Objects preserve insertion order (replies read
//! naturally in logs) and duplicate keys keep the last value, matching
//! the common parser behavior clients will test against. Parsing is
//! depth-bounded so a hostile request line cannot blow the stack —
//! malformed input of any kind surfaces as a [`JsonError`] with a byte
//! offset, never a panic (the serve chaos suite feeds this parser
//! fuzz-split garbage).

use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages are
/// depth ≤ 3; anything deeper is hostile or broken input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Why a line failed to parse, with the byte offset it failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Member lookup on an object (`None` on non-objects too — lookups
    /// on a mistyped message read as "field absent", which the protocol
    /// layer reports uniformly).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact `u64` value (protocol sequence numbers must round-trip).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a single line (no trailing newline). Non-finite
    /// numbers — unrepresentable in JSON — serialize as `null`, which
    /// is only reachable if a caller builds such a value explicitly;
    /// the daemon never does.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips — exactly what a wire format wants.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON value from `input`, requiring it to span the whole
/// string (modulo surrounding whitespace) — a request line is one
/// message, so trailing garbage is an error, not a second message.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u`-escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or(self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or(self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or(self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() < self.pos + 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits, sign, dot and exponent are ascii");
        // Overflowing literals (1e999) become ±inf here; the protocol
        // layer's load validation rejects non-finite values with a
        // structured error, which is the behavior the poisoned-λ chaos
        // tests drive.
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, what: "invalid number" })
    }
}

/// Convenience constructors for reply assembly.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// An object from owned keys — for maps keyed by runtime names (the
/// replication protocol's per-tenant sections).
#[must_use]
pub fn obj_owned(members: Vec<(String, Json)>) -> Json {
    Json::Obj(members)
}

/// A string member value.
pub fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

/// A numeric member value.
pub fn n(v: f64) -> Json {
    Json::Num(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"op":"tick","tenant":"t-1","seq":7,"load":2.5,"tags":["a","b"],"deep":{"x":null,"y":false}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("tick"));
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("load").and_then(Json::as_f64), Some(2.5));
        let reparsed = parse(&v.to_line()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f→".into());
        let back = parse(&v.to_line()).unwrap();
        assert_eq!(back, v);
        assert_eq!(parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
    }

    #[test]
    fn numbers_round_trip_shortest() {
        for x in [0.0, -0.0, 1.5, 0.1, 1e-12, 123456789.0, -3.25] {
            let v = parse(&Json::Num(x).to_line()).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
        // Overflowing literal → infinity, for the validation layer to reject.
        assert!(parse("1e999").unwrap().as_f64().unwrap().is_infinite());
    }

    #[test]
    fn malformed_input_errors_never_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "nul",
            "tru",
            "--1",
            "1.2.3",
            r#""unterminated"#,
            "\u{1}",
            r#"{"a":1}x"#,
            "[1 2]",
            r#""\q""#,
            r#""\ud800""#,
            "0x12",
            "\"tab\tliteral-ok\"",
        ] {
            let _ = parse(bad); // must return, not panic
        }
        assert!(parse(r#"{"a":1}x"#).is_err());
        assert_eq!(parse("\"tab\tliteral-ok\"").unwrap_err().what, "control character in string");
    }

    #[test]
    fn depth_is_bounded() {
        let mut hostile = String::new();
        for _ in 0..10_000 {
            hostile.push('[');
        }
        assert_eq!(parse(&hostile).unwrap_err().what, "nesting too deep");
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }
}

//! The TCP front of the daemon: a line-oriented accept loop.
//!
//! Deliberately thin — every request line is handed to
//! [`Daemon::handle`], which is where all behavior lives. One thread
//! per connection (tenant counts are bounded by fleets, not by C10K
//! ambitions); the listener polls in non-blocking mode so an orderly
//! shutdown request can actually stop the loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::Daemon;

/// Set by the `SIGTERM` handler; the accept loop polls it and turns it
/// into [`Daemon::graceful_shutdown`] on the next iteration.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // Async-signal-safe: one relaxed store, nothing else.
    SIGTERM_RECEIVED.store(true, Ordering::Relaxed);
}

/// Install a `SIGTERM` handler that requests an orderly shutdown (stop
/// admission, flush + fsync WALs, seal final snapshots, exit 0). No-op
/// off Unix. Uses the libc `signal` symbol directly — no crate
/// dependency — which is fine for a handler this trivial.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store is async-signal-safe; SIGTERM is 15 on every
        // Unix this builds for.
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            const SIGTERM: i32 = 15;
            signal(SIGTERM, on_sigterm);
        }
    }
}

/// Whether a `SIGTERM` has been received since the handler was
/// installed (visible for tests).
#[must_use]
pub fn sigterm_received() -> bool {
    SIGTERM_RECEIVED.load(Ordering::Relaxed)
}

/// A serving daemon bound to a TCP address.
pub struct Server {
    daemon: Arc<Daemon>,
    listener: TcpListener,
    local: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port).
    pub fn bind(daemon: Arc<Daemon>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(Self { daemon, listener, local })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The daemon this server fronts.
    #[must_use]
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.daemon
    }

    /// Accept and serve until a `shutdown` request flips the daemon's
    /// flag. Each connection gets its own thread; a connection error
    /// (including a client dropping mid-line) kills that connection
    /// only.
    pub fn run(&self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        while !self.daemon.shutdown_requested() {
            if SIGTERM_RECEIVED.load(Ordering::Relaxed) {
                self.daemon.graceful_shutdown();
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let daemon = Arc::clone(&self.daemon);
                    workers.push(std::thread::spawn(move || serve_connection(&daemon, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serve one connection: read lines, answer lines, until EOF or error.
/// A half-written request (connection dropped mid-line) simply ends the
/// connection — nothing was accepted, nothing is lost.
fn serve_connection(daemon: &Daemon, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return, // dropped mid-line or timed out
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = daemon.handle(&line);
        if writer.write_all(reply.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
        if daemon.shutdown_requested() {
            return;
        }
    }
}

//! The multi-tenant serving daemon.
//!
//! [`Daemon::handle`] is the whole protocol: one request line in, one
//! reply line out. The TCP layer ([`crate::server`]) is a thin loop
//! around it, which is what makes the chaos suite honest — tests drive
//! the daemon in-process through the same entry point production
//! traffic uses, and "kill -9" is dropping the daemon value on the
//! floor mid-stream.
//!
//! Robustness layers, in the order a tick meets them:
//!
//! 1. **admission control** — a bounded per-tenant waiting counter;
//!    beyond the bound the daemon sheds with `overloaded` instead of
//!    queueing unboundedly (the degradation ladder, driven by the
//!    per-decision deadline, engages *before* shedding: slow tenants
//!    get cheaper decisions first, and only sustained overload sheds).
//! 2. **WAL-before-decide** — a validated tick is appended to the
//!    tenant's log before the controller runs, so a crash loses
//!    replies, never accepted telemetry.
//! 3. **the step boundary** — the controller runs under
//!    `catch_unwind`; a panic quarantines that tenant and the daemon
//!    answers the next request as if nothing happened.
//! 4. **recovery** — on restart (or per-tenant revive) the snapshot
//!    restores the controller and the WAL suffix replays through the
//!    normal step path, bit-identical to the uninterrupted run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rsz_core::{Config, Instance, Schedule};
use rsz_offline::{payload_range, shared_pool, Decoder, Encoder, SharedSlotPool, SnapshotError};
use rsz_online::{restore_run, save_run, DegradeStats, GracefulDegrader, LatencyProfile};

use crate::json::{self, Json};
use crate::protocol::{self, decision_line, error_line, parse_request, wire, ErrorCode, Request};
use crate::spec::{build_controller, TenantSpec};
use crate::tenant::{QuarantineReason, TenantCounters, TenantDegrader, TenantState};
use crate::wal::{self, WalRecord, WalScan, WalTail, WalWriter};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Directory for per-tenant WALs and snapshots.
    pub state_dir: PathBuf,
    /// Default per-decision budget (the global per-tick deadline);
    /// tenants may override via `deadline_us`.
    pub deadline: Option<Duration>,
    /// `γ₀` for the coarse degradation rung.
    pub coarse_gamma: f64,
    /// Default snapshot cadence: seal state after every `K` fresh
    /// decisions.
    pub snapshot_every: usize,
    /// Bound on concurrently waiting requests per tenant before
    /// shedding.
    pub queue_bound: usize,
    /// Priced-slot pool retention bound for shared pools.
    pub pool_capacity: usize,
    /// Quarantine backoff: first retry gate.
    pub backoff_base: Duration,
    /// Quarantine backoff: gate ceiling.
    pub backoff_cap: Duration,
    /// Force WAL appends to stable storage (`sync_data`) — survives
    /// power loss, not just process death. Off by default: the tests'
    /// crash model is process death.
    pub fsync: bool,
    /// Allow the `panic:T` fault-hook algorithm (chaos tests only).
    pub allow_fault_hooks: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            state_dir: PathBuf::from("rsz-state"),
            deadline: None,
            coarse_gamma: 2.0,
            snapshot_every: 16,
            queue_bound: 4,
            pool_capacity: rsz_offline::DEFAULT_POOL_CAP,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            fsync: false,
            allow_fault_hooks: false,
        }
    }
}

/// Daemon-wide counters, all monotone, exported via `/metrics`.
#[derive(Debug, Default)]
pub struct DaemonCounters {
    /// Request lines handled (any op).
    pub requests: AtomicU64,
    /// Lines rejected as `bad_request`.
    pub bad_requests: AtomicU64,
    /// Tick requests (fresh + replayed + rejected).
    pub ticks: AtomicU64,
    /// Fresh decisions made.
    pub decisions: AtomicU64,
    /// Duplicate-seq ticks answered from committed history.
    pub replays: AtomicU64,
    /// Ticks shed by admission control.
    pub shed: AtomicU64,
    /// Quarantine entries (any tenant, any reason).
    pub quarantines: AtomicU64,
    /// Successful revivals out of quarantine.
    pub revives: AtomicU64,
    /// Torn WAL tails truncated during recovery.
    pub wal_truncations: AtomicU64,
    /// Recoveries that ignored a bad snapshot and replayed the full WAL.
    pub snapshot_fallbacks: AtomicU64,
    /// Snapshots sealed.
    pub snapshots: AtomicU64,
    /// Tenants recovered from disk at startup.
    pub recovered: AtomicU64,
}

/// One tenant's concurrency gate plus its state.
pub struct TenantSlot {
    waiting: AtomicUsize,
    state: Mutex<TenantState>,
}

/// Decrements the waiting counter even when the handler bails early.
struct QueueGuard<'a>(&'a AtomicUsize);

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Lock a mutex, shrugging off poisoning: a panicked handler thread
/// must never take the tenant (or the daemon) down with it.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The serving daemon. Thread-safe: the TCP layer calls
/// [`Daemon::handle`] from one thread per connection.
pub struct Daemon {
    options: ServeOptions,
    started: Instant,
    tenants: Mutex<HashMap<String, Arc<TenantSlot>>>,
    pools: Mutex<HashMap<String, SharedSlotPool>>,
    /// Counters, public for the bench harness.
    pub counters: DaemonCounters,
    shutdown: AtomicBool,
}

impl Daemon {
    /// Start a daemon over `options.state_dir`, recovering every tenant
    /// whose WAL survives there. Recovery failures quarantine the
    /// tenant in question; they never fail daemon startup.
    pub fn new(options: ServeOptions) -> std::io::Result<Self> {
        std::fs::create_dir_all(&options.state_dir)?;
        let daemon = Self {
            options,
            started: Instant::now(),
            tenants: Mutex::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            counters: DaemonCounters::default(),
            shutdown: AtomicBool::new(false),
        };
        daemon.recover_all();
        Ok(daemon)
    }

    /// The options the daemon runs with.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Whether an orderly shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line, returning one reply line. Never panics
    /// on any input; never returns more or less than one line.
    pub fn handle(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                return error_line(ErrorCode::BadRequest, &e.detail);
            }
        };
        match request {
            Request::Register { tenant, spec } => self.handle_register(&tenant, spec),
            Request::Tick { tenant, seq, load } => self.handle_tick(&tenant, seq, load),
            Request::Health => self.health_line(),
            Request::Metrics => self.metrics_line(),
            Request::Shutdown => {
                self.snapshot_all();
                self.shutdown.store(true, Ordering::SeqCst);
                json::obj(vec![("ok", Json::Bool(true)), ("stopping", Json::Bool(true))]).to_line()
            }
        }
    }

    fn handle_register(&self, name: &str, spec: TenantSpec) -> String {
        if let Err(detail) = spec.validate(self.options.allow_fault_hooks) {
            return error_line(ErrorCode::Input, &detail);
        }
        let slot = {
            let tenants = lock_clean(&self.tenants);
            tenants.get(name).cloned()
        };
        if let Some(slot) = slot {
            // Idempotent re-attach: same spec resumes; a different spec
            // for a live name is a caller bug.
            let st = lock_clean(&slot.state);
            if st.spec != spec {
                return error_line(
                    ErrorCode::Input,
                    "tenant already registered with a different spec",
                );
            }
            return json::obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", json::s(name)),
                ("resumed_ticks", json::n(st.loads.len() as f64)),
                ("quarantined", Json::Bool(st.quarantine.is_some())),
            ])
            .to_line();
        }
        // Fresh tenant: open its WAL and log the registration first.
        let types = match spec.server_types() {
            Ok(t) => t,
            Err(detail) => return error_line(ErrorCode::Input, &detail),
        };
        let path = wal::wal_path(&self.options.state_dir, name);
        let mut writer = match WalWriter::open(&path, self.options.fsync) {
            Ok(w) => w,
            Err(e) => return error_line(ErrorCode::Quarantined, &format!("WAL open failed: {e}")),
        };
        if let Err(e) = writer.append(&WalRecord::Register(spec.clone())) {
            return error_line(ErrorCode::Quarantined, &format!("WAL append failed: {e}"));
        }
        let state = TenantState {
            spec,
            types,
            loads: Vec::new(),
            decisions: Vec::new(),
            controller: None,
            wal: Some(writer),
            fresh_since_snapshot: 0,
            quarantine: None,
            counters: TenantCounters::default(),
        };
        lock_clean(&self.tenants).insert(
            name.to_owned(),
            Arc::new(TenantSlot { waiting: AtomicUsize::new(0), state: Mutex::new(state) }),
        );
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("tenant", json::s(name)),
            ("resumed_ticks", json::n(0.0)),
            ("quarantined", Json::Bool(false)),
        ])
        .to_line()
    }

    fn handle_tick(&self, name: &str, seq: u64, load: f64) -> String {
        self.counters.ticks.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let tenants = lock_clean(&self.tenants);
            match tenants.get(name) {
                Some(s) => s.clone(),
                None => return error_line(ErrorCode::UnknownTenant, "register first"),
            }
        };
        // Admission control: bounded waiting per tenant, shed beyond.
        let admitted = slot
            .waiting
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| {
                (w < self.options.queue_bound).then_some(w + 1)
            })
            .is_ok();
        if !admitted {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return error_line(ErrorCode::Overloaded, "tenant queue full; retry with backoff");
        }
        let _guard = QueueGuard(&slot.waiting);
        let mut st = lock_clean(&slot.state);

        // Quarantine gate: bounce until the backoff expires, then try
        // to revive; a failed revival re-enters with a longer gate.
        if let Some(q) = st.quarantine.clone() {
            if Instant::now() < q.until {
                return error_line(
                    q.reason.code(),
                    &format!(
                        "tenant quarantined ({}): {}; retry in {:?}",
                        q.reason.as_str(),
                        q.detail,
                        q.until.saturating_duration_since(Instant::now())
                    ),
                );
            }
            match self.revive(&mut st, name) {
                Ok(()) => {
                    st.quarantine = None;
                    self.counters.revives.fetch_add(1, Ordering::Relaxed);
                }
                Err((reason, detail)) => {
                    self.quarantine(&mut st, name, reason, detail.clone());
                    return error_line(reason.code(), &detail);
                }
            }
        }

        // Idempotent sequencing: a duplicate replays its committed
        // decision, a gap is the client's bug (no quarantine — nothing
        // was accepted).
        let expected = st.loads.len() as u64;
        if seq < expected {
            let config = match st.decisions.get(seq as usize) {
                Some(c) => c.clone(),
                // The decision for this accepted tick is still pending
                // (its first attempt panicked and we just revived): the
                // client should re-send the *next* seq; report the gap.
                None => {
                    return error_line(
                        ErrorCode::Input,
                        &format!("seq {seq} accepted but undecided; resend seq {expected}"),
                    )
                }
            };
            st.counters.replays += 1;
            self.counters.replays.fetch_add(1, Ordering::Relaxed);
            let rung = st.controller.as_ref().map_or(rsz_online::Rung::Exact, |c| c.rung());
            return decision_line(seq, &config, rung, true);
        }
        if seq > expected {
            return error_line(
                ErrorCode::Input,
                &format!("seq gap: expected {expected}, got {seq}"),
            );
        }

        // Validation before the WAL: the log holds only accepted ticks.
        if let Err(detail) = st.validate_load(load) {
            st.counters.rejected += 1;
            self.quarantine(&mut st, name, QuarantineReason::Input, detail.clone());
            return error_line(ErrorCode::Input, &detail);
        }
        match st.wal.as_mut() {
            Some(w) => {
                if let Err(e) = w.append(&WalRecord::Tick { seq, load }) {
                    let detail = format!("WAL append failed: {e}");
                    self.quarantine(&mut st, name, QuarantineReason::Io, detail.clone());
                    return error_line(ErrorCode::Quarantined, &detail);
                }
            }
            None => {
                let detail = "WAL writer unavailable".to_owned();
                self.quarantine(&mut st, name, QuarantineReason::Io, detail.clone());
                return error_line(ErrorCode::Quarantined, &detail);
            }
        }
        st.loads.push(load);

        match self.step(&mut st, name) {
            Ok((config, rung, elapsed)) => {
                st.counters.decisions += 1;
                st.counters.push_latency(elapsed.as_secs_f64());
                self.counters.decisions.fetch_add(1, Ordering::Relaxed);
                st.fresh_since_snapshot += 1;
                let cadence = if st.spec.snapshot_every == 0 {
                    self.options.snapshot_every
                } else {
                    st.spec.snapshot_every
                };
                if cadence > 0 && st.fresh_since_snapshot >= cadence {
                    self.write_snapshot(&mut st, name);
                }
                decision_line(seq, &config, rung, false)
            }
            Err((reason, detail)) => {
                self.quarantine(&mut st, name, reason, detail.clone());
                error_line(reason.code(), &detail)
            }
        }
    }

    /// Decide the latest accepted slot. The controller runs under
    /// `catch_unwind`: a panic here is the tenant's problem, never the
    /// daemon's.
    fn step(
        &self,
        st: &mut TenantState,
        name: &str,
    ) -> Result<(Config, rsz_online::Rung, Duration), (QuarantineReason, String)> {
        if st.controller.is_none() {
            self.build_tenant_controller(st, name)?;
        }
        let instance = st.prefix_instance().map_err(|e| (QuarantineReason::Solver, e))?;
        let t = st.loads.len() - 1;
        let controller = st.controller.as_mut().expect("just built");
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rsz_online::OnlineAlgorithm::decide(controller, &instance, t)
        }));
        let elapsed = start.elapsed();
        match outcome {
            Ok(config) => {
                let rung = controller.rung();
                st.decisions.push(config.clone());
                Ok((config, rung, elapsed))
            }
            Err(payload) => {
                // The controller is gone; recovery rebuilds it from the
                // snapshot + WAL. The tick stays accepted.
                st.controller = None;
                let what = panic_message(payload);
                Err((
                    QuarantineReason::Solver,
                    format!("controller panicked deciding slot {t}: {what}"),
                ))
            }
        }
    }

    /// Build (or rebuild) the tenant's degrader for its current prefix
    /// and install the shared pricing pool.
    fn build_tenant_controller(
        &self,
        st: &mut TenantState,
        _name: &str,
    ) -> Result<(), (QuarantineReason, String)> {
        let instance = st.prefix_instance().map_err(|e| (QuarantineReason::Solver, e))?;
        let spec = st.spec.clone();
        let inner =
            catch_unwind(AssertUnwindSafe(|| build_controller(&spec, &instance, spec.grid.mode())))
                .map_err(|p| (QuarantineReason::Solver, panic_message(p)))?
                .map_err(|e| (QuarantineReason::Solver, e))?;
        let factory_spec = st.spec.clone();
        let factory: crate::tenant::ControllerFactory = Box::new(move |inst, grid| {
            build_controller(&factory_spec, inst, grid).expect("spec validated at registration")
        });
        let mut degrader = GracefulDegrader::new(
            inner,
            factory,
            st.degrade_options(self.options.deadline, self.options.coarse_gamma),
        );
        self.install_pool(st, &instance, &mut degrader);
        st.controller = Some(degrader);
        Ok(())
    }

    /// Point the tenant's engine at the pool shared by every tenant
    /// with the same `(fleet, grid)` key. Sound because pricing is a
    /// pure function of `(partition, λ, grid)`: pool contents change
    /// hit rates, never decisions.
    fn install_pool(&self, st: &TenantState, instance: &Instance, degrader: &mut TenantDegrader) {
        if !st.spec.engine {
            return;
        }
        let key = st.spec.pool_key();
        let pool = {
            let mut pools = lock_clean(&self.pools);
            pools
                .entry(key)
                .or_insert_with(|| shared_pool(instance, self.options.pool_capacity))
                .clone()
        };
        degrader.inner_mut().share_pool(pool);
    }

    /// Bring a tenant back from quarantine (or rebuild a controller a
    /// panic destroyed): restore from the snapshot when possible, fall
    /// back to a full WAL replay, then replay any undecided suffix
    /// through the normal step path.
    fn revive(&self, st: &mut TenantState, name: &str) -> Result<(), (QuarantineReason, String)> {
        // Input quarantines keep the controller: the bad tick was never
        // applied, so the state is intact and the gate alone suffices.
        if st.quarantine.as_ref().is_some_and(|q| q.reason == QuarantineReason::Input)
            && st.controller.is_some()
            && st.decisions.len() == st.loads.len()
        {
            return Ok(());
        }
        if st.wal.is_none() {
            let path = wal::wal_path(&self.options.state_dir, name);
            st.wal = Some(
                WalWriter::open(&path, self.options.fsync)
                    .map_err(|e| (QuarantineReason::Io, format!("WAL reopen failed: {e}")))?,
            );
        }
        st.controller = None;
        st.decisions.clear();
        self.restore_from_snapshot(st, name);
        // Replay the undecided suffix through the very same step path a
        // live tick takes — this is what makes resume bit-identical.
        while st.decisions.len() < st.loads.len() {
            let have = st.decisions.len();
            let full = std::mem::take(&mut st.loads);
            st.loads = full[..=have].to_vec();
            let result = self.step(st, name);
            st.loads = full;
            result?;
        }
        Ok(())
    }

    /// Try to restore controller + committed decisions from the
    /// snapshot file. Any failure falls back to a fresh controller
    /// (full WAL replay) — a bad snapshot degrades recovery time, not
    /// correctness, and is counted + detailed.
    fn restore_from_snapshot(&self, st: &mut TenantState, name: &str) {
        let path = wal::snap_path(&self.options.state_dir, name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return, // no snapshot: full replay
        };
        if self.try_restore(st, name, &bytes).is_err() {
            // Quarantine would be wrong here: the WAL still recovers
            // this tenant fully, just slower. Count the fallback.
            st.controller = None;
            st.decisions.clear();
            st.counters.snapshot_fallbacks += 1;
            self.counters.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_restore(&self, st: &mut TenantState, name: &str, bytes: &[u8]) -> Result<(), String> {
        let mut dec =
            Decoder::from_sealed(bytes).map_err(|e| describe_snapshot_error(bytes, &e))?;
        let snap_name =
            wire::take_str(&mut dec, "snapshot tenant name is not UTF-8").map_err(stringify)?;
        if snap_name != name {
            return Err(format!("snapshot belongs to tenant `{snap_name}`"));
        }
        let snap_spec = TenantSpec::decode(&mut dec).map_err(stringify)?;
        if snap_spec != st.spec {
            return Err("snapshot was taken under a different spec".into());
        }
        let k = dec.take_usize().map_err(stringify)?;
        if k == 0 || k > st.loads.len() {
            return Err(format!("snapshot covers {k} slots but the WAL holds {}", st.loads.len()));
        }
        let inner = dec.take_bytes().map_err(stringify)?.to_vec();
        let full = std::mem::take(&mut st.loads);
        st.loads = full[..k].to_vec();
        let built = self.build_tenant_controller(st, name);
        let result = (|| {
            built.map_err(|(_, e)| e)?;
            let instance = st.prefix_instance()?;
            let controller = st.controller.as_mut().expect("just built");
            let committed = restore_run(controller, &instance, &inner)
                .map_err(|e| describe_snapshot_error(&inner, &e))?;
            if committed.len() != k {
                return Err("snapshot committed length disagrees with its header".into());
            }
            st.decisions = committed.iter().map(|(_, c)| c.clone()).collect();
            Ok(())
        })();
        st.loads = full;
        match &result {
            Ok(()) => {
                // restore_state rebuilds internal pools as owned, so
                // the shared handle must be re-installed after restore.
                if let Ok(instance) = st.prefix_instance() {
                    if let Some(mut degrader) = st.controller.take() {
                        self.install_pool(st, &instance, &mut degrader);
                        st.controller = Some(degrader);
                    }
                }
            }
            Err(_) => {
                st.controller = None;
                st.decisions.clear();
            }
        }
        result
    }

    /// Seal the tenant's state: `(name, spec, k, save_run bytes)` in a
    /// checksummed envelope, written via tmp + rename so a crash leaves
    /// either the old snapshot or the new one, never a hybrid.
    fn write_snapshot(&self, st: &mut TenantState, name: &str) {
        let Some(controller) = st.controller.as_ref() else { return };
        let k = st.decisions.len();
        if k == 0 || k != st.loads.len() {
            return;
        }
        let instance = match st.prefix_instance() {
            Ok(i) => i,
            Err(_) => return,
        };
        let mut committed = Schedule::empty();
        for c in &st.decisions {
            committed.push(c.clone());
        }
        let inner = save_run(controller, &instance, &committed);
        let mut enc = Encoder::new();
        enc.put_bytes(name.as_bytes());
        st.spec.encode(&mut enc);
        enc.put_usize(k);
        enc.put_bytes(&inner);
        let sealed = enc.into_sealed();
        let path = wal::snap_path(&self.options.state_dir, name);
        let tmp = path.with_extension("snap.tmp");
        let io = std::fs::write(&tmp, &sealed).and_then(|()| std::fs::rename(&tmp, &path));
        match io {
            Ok(()) => {
                st.fresh_since_snapshot = 0;
                st.counters.snapshots += 1;
                self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Snapshot write failure is not fatal: the WAL still
                // recovers everything, just slower.
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Snapshot every live tenant (orderly shutdown).
    pub fn snapshot_all(&self) {
        let slots: Vec<(String, Arc<TenantSlot>)> = {
            let tenants = lock_clean(&self.tenants);
            tenants.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        for (name, slot) in slots {
            let mut st = lock_clean(&slot.state);
            if st.quarantine.is_none() {
                self.write_snapshot(&mut st, &name);
            }
        }
    }

    /// Scan the state directory for surviving WALs and recover each
    /// tenant. Per-tenant failures quarantine that tenant; nothing here
    /// aborts startup.
    fn recover_all(&self) {
        let entries = match std::fs::read_dir(&self.options.state_dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("wal") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            if let Some(state) = self.recover_tenant(&name) {
                self.counters.recovered.fetch_add(1, Ordering::Relaxed);
                lock_clean(&self.tenants).insert(
                    name,
                    Arc::new(TenantSlot { waiting: AtomicUsize::new(0), state: Mutex::new(state) }),
                );
            }
        }
    }

    /// Recover one tenant from its WAL (+snapshot). Returns `None` only
    /// when the log holds nothing usable at all (no registration).
    fn recover_tenant(&self, name: &str) -> Option<TenantState> {
        let path = wal::wal_path(&self.options.state_dir, name);
        let bytes = wal::read_file(&path).ok()?;
        if bytes.is_empty() {
            return None;
        }
        let WalScan { records, intact_len, tail } = wal::scan(&bytes);
        let mut corrupt_detail = None;
        match tail {
            WalTail::Clean => {}
            WalTail::Torn { .. } => {
                // Crash-consistent: drop the torn tail and resume from
                // the intact prefix.
                let _ = wal::truncate_file(&path, intact_len);
                self.counters.wal_truncations.fetch_add(1, Ordering::Relaxed);
            }
            WalTail::Corrupt { start, end, what } => {
                corrupt_detail = Some(format!("WAL bytes {start}..{end} failed integrity: {what}"));
            }
        }
        let mut records = records.into_iter();
        let spec = match records.next() {
            Some(WalRecord::Register(spec)) => spec,
            // No usable registration: nothing to attach a tenant to.
            _ => return None,
        };
        let types = spec.server_types().ok()?;
        let mut state = TenantState {
            spec,
            types,
            loads: Vec::new(),
            decisions: Vec::new(),
            controller: None,
            wal: None,
            fresh_since_snapshot: 0,
            quarantine: None,
            counters: TenantCounters::default(),
        };
        for record in records {
            match record {
                WalRecord::Tick { seq, load } if seq == state.loads.len() as u64 => {
                    if state.validate_load(load).is_err() {
                        corrupt_detail.get_or_insert_with(|| {
                            format!("WAL holds an invalid accepted load at seq {seq}")
                        });
                        break;
                    }
                    state.loads.push(load);
                }
                _ => {
                    corrupt_detail.get_or_insert_with(|| "WAL records out of sequence".to_owned());
                    break;
                }
            }
        }
        if let Some(detail) = corrupt_detail {
            self.quarantine(&mut state, name, QuarantineReason::WalCorrupt, detail);
            return Some(state);
        }
        match WalWriter::open(&path, self.options.fsync) {
            Ok(w) => state.wal = Some(w),
            Err(e) => {
                self.quarantine(
                    &mut state,
                    name,
                    QuarantineReason::Io,
                    format!("WAL reopen failed: {e}"),
                );
                return Some(state);
            }
        }
        if !state.loads.is_empty() {
            if let Err((reason, detail)) = self.revive(&mut state, name) {
                self.quarantine(&mut state, name, reason, detail);
            }
        }
        Some(state)
    }

    fn quarantine(
        &self,
        st: &mut TenantState,
        name: &str,
        reason: QuarantineReason,
        detail: String,
    ) {
        self.counters.quarantines.fetch_add(1, Ordering::Relaxed);
        st.enter_quarantine(
            reason,
            detail,
            self.options.backoff_base,
            self.options.backoff_cap,
            name,
        );
    }

    fn health_line(&self) -> String {
        let (total, quarantined) = {
            let tenants = lock_clean(&self.tenants);
            let q = tenants.values().filter(|s| lock_clean(&s.state).quarantine.is_some()).count();
            (tenants.len(), q)
        };
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("status", json::s(if quarantined == 0 { "ok" } else { "degraded" })),
            ("uptime_us", json::n(self.started.elapsed().as_micros() as f64)),
            ("tenants", json::n(total as f64)),
            ("quarantined", json::n(quarantined as f64)),
        ])
        .to_line()
    }

    fn metrics_line(&self) -> String {
        let c = &self.counters;
        let mut daemon_degrade = DegradeStats::default();
        let mut tenant_objs: Vec<(String, Json)> = Vec::new();
        let mut pool_pricings = 0u64;
        let mut pool_hits = 0u64;
        {
            let tenants = lock_clean(&self.tenants);
            let mut names: Vec<&String> = tenants.keys().collect();
            names.sort();
            for name in names {
                let slot = &tenants[name];
                let st = lock_clean(&slot.state);
                let profile = LatencyProfile::new(st.counters.latencies.clone());
                let (exact, coarse, hold, rung) = match st.controller.as_ref() {
                    Some(ctl) => {
                        daemon_degrade.absorb(ctl.stats());
                        (
                            ctl.stats().exact,
                            ctl.stats().coarse,
                            ctl.stats().hold,
                            protocol::rung_str(ctl.rung()),
                        )
                    }
                    None => (0, 0, 0, "none"),
                };
                let engine = st.controller.as_ref().and_then(|ctl| ctl.inner().engine_stats());
                if let Some(e) = &engine {
                    pool_pricings += e.pricings;
                    pool_hits += e.pool_hits;
                }
                let mut fields = vec![
                    ("ticks".to_owned(), json::n(st.loads.len() as f64)),
                    ("decisions".to_owned(), json::n(st.counters.decisions as f64)),
                    ("replays".to_owned(), json::n(st.counters.replays as f64)),
                    ("rejected".to_owned(), json::n(st.counters.rejected as f64)),
                    ("quarantines".to_owned(), json::n(st.counters.quarantines as f64)),
                    ("snapshots".to_owned(), json::n(st.counters.snapshots as f64)),
                    ("snapshot_lag".to_owned(), json::n(st.fresh_since_snapshot as f64)),
                    ("rung".to_owned(), json::s(rung)),
                    ("rung_exact".to_owned(), json::n(exact as f64)),
                    ("rung_coarse".to_owned(), json::n(coarse as f64)),
                    ("rung_hold".to_owned(), json::n(hold as f64)),
                    ("latency_p50_us".to_owned(), json::n(profile.quantile(0.5) * 1e6)),
                    ("latency_p99_us".to_owned(), json::n(profile.quantile(0.99) * 1e6)),
                ];
                if let Some(e) = engine {
                    fields.push(("pool_pricings".to_owned(), json::n(e.pricings as f64)));
                    fields.push(("pool_hits".to_owned(), json::n(e.pool_hits as f64)));
                }
                if let Some(q) = &st.quarantine {
                    fields.push(("quarantined".to_owned(), json::s(q.reason.as_str())));
                    fields.push(("quarantine_detail".to_owned(), json::s(&q.detail)));
                }
                tenant_objs.push((name.clone(), Json::Obj(fields)));
            }
        }
        let total_lookups = pool_pricings + pool_hits;
        let hit_rate =
            if total_lookups == 0 { 0.0 } else { pool_hits as f64 / total_lookups as f64 };
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("requests", json::n(c.requests.load(Ordering::Relaxed) as f64)),
            ("bad_requests", json::n(c.bad_requests.load(Ordering::Relaxed) as f64)),
            ("ticks", json::n(c.ticks.load(Ordering::Relaxed) as f64)),
            ("decisions", json::n(c.decisions.load(Ordering::Relaxed) as f64)),
            ("replays", json::n(c.replays.load(Ordering::Relaxed) as f64)),
            ("shed", json::n(c.shed.load(Ordering::Relaxed) as f64)),
            ("quarantines", json::n(c.quarantines.load(Ordering::Relaxed) as f64)),
            ("revives", json::n(c.revives.load(Ordering::Relaxed) as f64)),
            ("wal_truncations", json::n(c.wal_truncations.load(Ordering::Relaxed) as f64)),
            ("snapshot_fallbacks", json::n(c.snapshot_fallbacks.load(Ordering::Relaxed) as f64)),
            ("snapshots", json::n(c.snapshots.load(Ordering::Relaxed) as f64)),
            ("recovered", json::n(c.recovered.load(Ordering::Relaxed) as f64)),
            ("pool_hit_rate", json::n(hit_rate)),
            ("rung_exact", json::n(daemon_degrade.exact as f64)),
            ("rung_coarse", json::n(daemon_degrade.coarse as f64)),
            ("rung_hold", json::n(daemon_degrade.hold as f64)),
            ("tenants", Json::Obj(tenant_objs)),
        ])
        .to_line()
    }
}

fn stringify(e: SnapshotError) -> String {
    format!("{e}")
}

/// Human-readable snapshot failure, including the byte range that
/// failed the FNV-1a check when that is what happened.
pub fn describe_snapshot_error(bytes: &[u8], e: &SnapshotError) -> String {
    if matches!(e, SnapshotError::ChecksumMismatch) {
        if let Some(range) = payload_range(bytes) {
            return format!("{e} (bytes {}..{} failed the FNV-1a check)", range.start, range.end);
        }
    }
    format!("{e}")
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsz-serve-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options(dir: &std::path::Path) -> ServeOptions {
        ServeOptions { state_dir: dir.to_path_buf(), ..ServeOptions::default() }
    }

    fn decided_counts(reply: &str) -> Vec<u64> {
        let v = json::parse(reply).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
        match v.get("config").unwrap() {
            Json::Arr(items) => items.iter().map(|i| i.as_u64().unwrap()).collect(),
            other => panic!("bad config: {other:?}"),
        }
    }

    #[test]
    fn register_tick_and_kill_restart_resume_bit_identically() {
        let dir = tmp_dir("resume");
        let loads = [1.0, 2.5, 0.5, 3.0, 1.5, 0.0, 2.0, 2.75];

        // Uninterrupted baseline.
        let daemon = Daemon::new(options(&dir)).unwrap();
        let reg = r#"{"op":"register","tenant":"t1","fleet":"cpu-gpu:2,1","algo":"b","snapshot_every":3}"#;
        let v = json::parse(&daemon.handle(reg)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let mut baseline = Vec::new();
        for (i, l) in loads.iter().enumerate() {
            let line = format!(r#"{{"op":"tick","tenant":"t1","seq":{i},"load":{l}}}"#);
            baseline.push(decided_counts(&daemon.handle(&line)));
        }
        drop(daemon); // kill -9: no shutdown, no final snapshot

        // Restart over the same state dir: recovery must replay the WAL
        // (+snapshot) and answer duplicate seqs from committed history.
        let daemon = Daemon::new(options(&dir)).unwrap();
        assert_eq!(daemon.counters.recovered.load(Ordering::Relaxed), 1);
        let v = json::parse(&daemon.handle(reg)).unwrap();
        assert_eq!(v.get("resumed_ticks").and_then(Json::as_u64), Some(loads.len() as u64));
        for (i, _) in loads.iter().enumerate() {
            let line = format!(r#"{{"op":"tick","tenant":"t1","seq":{i},"load":99.0}}"#);
            let reply = daemon.handle(&line);
            let v = json::parse(&reply).unwrap();
            assert_eq!(v.get("replayed").and_then(Json::as_bool), Some(true), "{reply}");
            assert_eq!(decided_counts(&reply), baseline[i], "seq {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_loads_quarantine_the_tenant_not_the_daemon() {
        let dir = tmp_dir("poison");
        let daemon = Daemon::new(options(&dir)).unwrap();
        for name in ["good", "bad"] {
            let reg = format!(r#"{{"op":"register","tenant":"{name}","fleet":"homogeneous:3"}}"#);
            assert!(daemon.handle(&reg).contains("\"ok\":true"));
        }
        daemon.handle(r#"{"op":"tick","tenant":"good","seq":0,"load":1.0}"#);
        daemon.handle(r#"{"op":"tick","tenant":"bad","seq":0,"load":1.0}"#);
        // Poisoned λ: null load → NaN → input quarantine for `bad` only.
        let reply = daemon.handle(r#"{"op":"tick","tenant":"bad","seq":1,"load":null}"#);
        assert!(reply.contains("\"error\":\"input\""), "{reply}");
        // `bad` is gated…
        let reply = daemon.handle(r#"{"op":"tick","tenant":"bad","seq":1,"load":1.0}"#);
        assert!(reply.contains("quarantined"), "{reply}");
        // …while `good` keeps deciding.
        let reply = daemon.handle(r#"{"op":"tick","tenant":"good","seq":1,"load":2.0}"#);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let health = daemon.handle("GET /health");
        assert!(health.contains("\"quarantined\":1"), "{health}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn controller_panics_are_caught_at_the_step_boundary() {
        let dir = tmp_dir("panic");
        let daemon =
            Daemon::new(ServeOptions { allow_fault_hooks: true, ..options(&dir) }).unwrap();
        let reg = r#"{"op":"register","tenant":"t","fleet":"homogeneous:3","algo":"panic:2"}"#;
        assert!(daemon.handle(reg).contains("\"ok\":true"));
        for i in 0..2 {
            let line = format!(r#"{{"op":"tick","tenant":"t","seq":{i},"load":1.0}}"#);
            assert!(daemon.handle(&line).contains("\"ok\":true"));
        }
        let reply = daemon.handle(r#"{"op":"tick","tenant":"t","seq":2,"load":1.0}"#);
        assert!(reply.contains("\"error\":\"solver\""), "{reply}");
        assert!(reply.contains("injected fault"), "{reply}");
        // The daemon itself stays healthy.
        assert!(daemon.handle("GET /health").contains("\"ok\":true"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_hooks_are_rejected_unless_enabled() {
        let dir = tmp_dir("hooks");
        let daemon = Daemon::new(options(&dir)).unwrap();
        let reg = r#"{"op":"register","tenant":"t","fleet":"homogeneous:3","algo":"panic:2"}"#;
        let reply = daemon.handle(reg);
        assert!(reply.contains("\"error\":\"input\""), "{reply}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The multi-tenant serving daemon.
//!
//! [`Daemon::handle`] is the whole protocol: one request line in, one
//! reply line out. The TCP layer ([`crate::server`]) is a thin loop
//! around it, which is what makes the chaos suite honest — tests drive
//! the daemon in-process through the same entry point production
//! traffic uses, and "kill -9" is dropping the daemon value on the
//! floor mid-stream.
//!
//! Robustness layers, in the order a tick meets them:
//!
//! 1. **admission control** — a bounded per-tenant waiting counter;
//!    beyond the bound the daemon sheds with `overloaded` instead of
//!    queueing unboundedly (the degradation ladder, driven by the
//!    per-decision deadline, engages *before* shedding: slow tenants
//!    get cheaper decisions first, and only sustained overload sheds).
//! 2. **WAL-before-decide** — a validated tick is appended to the
//!    tenant's log before the controller runs, so a crash loses
//!    replies, never accepted telemetry.
//! 3. **the step boundary** — the controller runs under
//!    `catch_unwind`; a panic quarantines that tenant and the daemon
//!    answers the next request as if nothing happened.
//! 4. **recovery** — on restart (or per-tenant revive) the snapshot
//!    restores the controller and the WAL suffix replays through the
//!    normal step path, bit-identical to the uninterrupted run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rsz_core::{Config, Instance, Schedule};
use rsz_offline::{payload_range, shared_pool, Decoder, Encoder, SharedSlotPool, SnapshotError};
use rsz_online::{restore_run, save_run, DegradeStats, GracefulDegrader, LatencyProfile};

use crate::json::{self, Json};
use crate::protocol::{self, decision_line, error_line, parse_request, wire, ErrorCode, Request};
use crate::replication::{from_hex, state_fingerprint, to_hex, ApplyReport, Role};
use crate::spec::{build_controller, TenantSpec};
use crate::tenant::{Fingerprint, QuarantineReason, TenantCounters, TenantDegrader, TenantState};
use crate::wal::{self, WalRecord, WalScan, WalTail, WalWriter};

/// Snapshot envelope layout version. Version 2 added the bit-exact
/// accepted-load prefix, which is what makes WAL compaction safe: a
/// tenant whose early segments were deleted recovers its loads from
/// the snapshot and only the suffix from the surviving log.
const SNAP_FORMAT: u8 = 2;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Directory for per-tenant WALs and snapshots.
    pub state_dir: PathBuf,
    /// Default per-decision budget (the global per-tick deadline);
    /// tenants may override via `deadline_us`.
    pub deadline: Option<Duration>,
    /// `γ₀` for the coarse degradation rung.
    pub coarse_gamma: f64,
    /// Default snapshot cadence: seal state after every `K` fresh
    /// decisions.
    pub snapshot_every: usize,
    /// Bound on concurrently waiting requests per tenant before
    /// shedding.
    pub queue_bound: usize,
    /// Priced-slot pool retention bound for shared pools.
    pub pool_capacity: usize,
    /// Quarantine backoff: first retry gate.
    pub backoff_base: Duration,
    /// Quarantine backoff: gate ceiling.
    pub backoff_cap: Duration,
    /// Force WAL appends to stable storage (`sync_data`) — survives
    /// power loss, not just process death. Off by default: the tests'
    /// crash model is process death.
    pub fsync: bool,
    /// Allow the `panic:T` fault-hook algorithm (chaos tests only).
    pub allow_fault_hooks: bool,
    /// Seal the active WAL segment once it crosses this many bytes and
    /// start a fresh one (`0` disables rotation, and with it
    /// compaction).
    pub segment_bytes: usize,
    /// Record a state fingerprint every `K` accepted ticks (`0`
    /// disables fingerprints, and with them divergence detection).
    pub fingerprint_every: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            state_dir: PathBuf::from("rsz-state"),
            deadline: None,
            coarse_gamma: 2.0,
            snapshot_every: 16,
            queue_bound: 4,
            pool_capacity: rsz_offline::DEFAULT_POOL_CAP,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            fsync: false,
            allow_fault_hooks: false,
            segment_bytes: 1 << 20,
            fingerprint_every: 8,
        }
    }
}

/// Daemon-wide counters, all monotone, exported via `/metrics`.
#[derive(Debug, Default)]
pub struct DaemonCounters {
    /// Request lines handled (any op).
    pub requests: AtomicU64,
    /// Lines rejected as `bad_request`.
    pub bad_requests: AtomicU64,
    /// Tick requests (fresh + replayed + rejected).
    pub ticks: AtomicU64,
    /// Fresh decisions made.
    pub decisions: AtomicU64,
    /// Duplicate-seq ticks answered from committed history.
    pub replays: AtomicU64,
    /// Ticks shed by admission control.
    pub shed: AtomicU64,
    /// Quarantine entries (any tenant, any reason).
    pub quarantines: AtomicU64,
    /// Successful revivals out of quarantine.
    pub revives: AtomicU64,
    /// Torn WAL tails truncated during recovery.
    pub wal_truncations: AtomicU64,
    /// Recoveries that ignored a bad snapshot and replayed the full WAL.
    pub snapshot_fallbacks: AtomicU64,
    /// Snapshots sealed.
    pub snapshots: AtomicU64,
    /// Tenants recovered from disk at startup.
    pub recovered: AtomicU64,
    /// WAL segments sealed (rotation).
    pub segments_sealed: AtomicU64,
    /// Sealed WAL segments deleted because a durable snapshot covers
    /// them (compaction).
    pub segments_compacted: AtomicU64,
    /// `repl.sync` requests served (primary side).
    pub repl_syncs: AtomicU64,
    /// Replicated ticks applied through the step path (replica side).
    pub repl_applied: AtomicU64,
    /// Replication frame batches rejected by their FNV-1a framing
    /// (transit corruption never reaches the step path).
    pub repl_frame_rejects: AtomicU64,
    /// State fingerprints checked against the primary's.
    pub fingerprint_checks: AtomicU64,
    /// Fingerprint mismatches (each quarantines its tenant as
    /// diverged).
    pub fingerprint_mismatches: AtomicU64,
    /// Promotions this process performed (replica → primary).
    pub failovers: AtomicU64,
}

/// One tenant's concurrency gate plus its state.
pub struct TenantSlot {
    waiting: AtomicUsize,
    state: Mutex<TenantState>,
}

/// Decrements the waiting counter even when the handler bails early.
struct QueueGuard<'a>(&'a AtomicUsize);

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Lock a mutex, shrugging off poisoning: a panicked handler thread
/// must never take the tenant (or the daemon) down with it.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The serving daemon. Thread-safe: the TCP layer calls
/// [`Daemon::handle`] from one thread per connection.
pub struct Daemon {
    options: ServeOptions,
    started: Instant,
    tenants: Mutex<HashMap<String, Arc<TenantSlot>>>,
    pools: Mutex<HashMap<String, SharedSlotPool>>,
    /// Counters, public for the bench harness.
    pub counters: DaemonCounters,
    shutdown: AtomicBool,
    role: std::sync::atomic::AtomicU8,
    /// Accepted-tick lag behind the primary after the latest applied
    /// sync (a gauge; meaningful on replicas).
    repl_lag: AtomicU64,
}

impl Daemon {
    /// Start a daemon over `options.state_dir`, recovering every tenant
    /// whose WAL survives there. Recovery failures quarantine the
    /// tenant in question; they never fail daemon startup.
    pub fn new(options: ServeOptions) -> std::io::Result<Self> {
        std::fs::create_dir_all(&options.state_dir)?;
        let daemon = Self {
            options,
            started: Instant::now(),
            tenants: Mutex::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            counters: DaemonCounters::default(),
            shutdown: AtomicBool::new(false),
            role: std::sync::atomic::AtomicU8::new(Role::Primary.to_u8()),
            repl_lag: AtomicU64::new(0),
        };
        daemon.recover_all();
        Ok(daemon)
    }

    /// The options the daemon runs with.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Whether an orderly shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// This daemon's replication role.
    #[must_use]
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::SeqCst))
    }

    /// Set the replication role (a fresh daemon starts as `Primary`;
    /// `rsz serve --replica-of` flips it to `Replica` before serving).
    pub fn set_role(&self, role: Role) {
        self.role.store(role.to_u8(), Ordering::SeqCst);
    }

    /// Handle one request line, returning one reply line. Never panics
    /// on any input; never returns more or less than one line.
    pub fn handle(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                return error_line(ErrorCode::BadRequest, &e.detail);
            }
        };
        match request {
            Request::Register { .. } | Request::Tick { .. } if self.shutdown_requested() => {
                // Admission stops the moment a graceful shutdown
                // begins: clients back off and fail over to a peer.
                error_line(ErrorCode::Overloaded, "daemon is shutting down")
            }
            Request::Register { .. } | Request::Tick { .. } if self.role() != Role::Primary => {
                error_line(
                    ErrorCode::NotPrimary,
                    &format!(
                        "this daemon is a {}; send writes to the primary",
                        self.role().as_str()
                    ),
                )
            }
            Request::Register { tenant, spec } => self.handle_register(&tenant, spec),
            Request::Tick { tenant, seq, load } => self.handle_tick(&tenant, seq, load),
            Request::Health => self.health_line(),
            Request::Livez => self.livez_line(),
            Request::Readyz => self.readyz_line(),
            Request::Metrics => self.metrics_line(),
            Request::Shutdown => {
                self.graceful_shutdown();
                json::obj(vec![("ok", Json::Bool(true)), ("stopping", Json::Bool(true))]).to_line()
            }
            Request::ReplSync { replica, have } => {
                if self.role() == Role::Primary {
                    self.sync_reply(&replica, &have)
                } else {
                    error_line(
                        ErrorCode::NotPrimary,
                        &format!("cannot serve repl.sync as a {}", self.role().as_str()),
                    )
                }
            }
        }
    }

    fn handle_register(&self, name: &str, spec: TenantSpec) -> String {
        match self.do_register(name, spec) {
            Ok((resumed, quarantined)) => json::obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", json::s(name)),
                ("resumed_ticks", json::n(resumed as f64)),
                ("quarantined", Json::Bool(quarantined)),
            ])
            .to_line(),
            Err((code, detail)) => error_line(code, &detail),
        }
    }

    /// Register (or idempotently re-attach) a tenant. Shared between
    /// the protocol path and replication apply (a replica registers
    /// tenants from the primary's shipped `Register` frames). Returns
    /// `(resumed ticks, quarantined)`.
    fn do_register(
        &self,
        name: &str,
        spec: TenantSpec,
    ) -> Result<(u64, bool), (ErrorCode, String)> {
        if let Err(detail) = spec.validate(self.options.allow_fault_hooks) {
            return Err((ErrorCode::Input, detail));
        }
        let slot = {
            let tenants = lock_clean(&self.tenants);
            tenants.get(name).cloned()
        };
        if let Some(slot) = slot {
            // Idempotent re-attach: same spec resumes; a different spec
            // for a live name is a caller bug.
            let st = lock_clean(&slot.state);
            if st.spec != spec {
                return Err((
                    ErrorCode::Input,
                    "tenant already registered with a different spec".into(),
                ));
            }
            return Ok((st.loads.len() as u64, st.quarantine.is_some()));
        }
        // Fresh tenant: open its WAL and log the registration first.
        let types = spec.server_types().map_err(|detail| (ErrorCode::Input, detail))?;
        let path = wal::wal_path(&self.options.state_dir, name);
        let mut writer = WalWriter::open(&path, self.options.fsync)
            .map_err(|e| (ErrorCode::Quarantined, format!("WAL open failed: {e}")))?;
        writer
            .append(&WalRecord::Register(spec.clone()))
            .map_err(|e| (ErrorCode::Quarantined, format!("WAL append failed: {e}")))?;
        let state = TenantState {
            spec,
            types,
            loads: Vec::new(),
            decisions: Vec::new(),
            controller: None,
            wal: Some(writer),
            fresh_since_snapshot: 0,
            quarantine: None,
            counters: TenantCounters::default(),
            fingerprints: Vec::new(),
            last_sealed_through: 0,
            last_snapshot_k: 0,
            fp_checked: 0,
        };
        lock_clean(&self.tenants).insert(
            name.to_owned(),
            Arc::new(TenantSlot { waiting: AtomicUsize::new(0), state: Mutex::new(state) }),
        );
        Ok((0, false))
    }

    fn handle_tick(&self, name: &str, seq: u64, load: f64) -> String {
        self.counters.ticks.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let tenants = lock_clean(&self.tenants);
            match tenants.get(name) {
                Some(s) => s.clone(),
                None => return error_line(ErrorCode::UnknownTenant, "register first"),
            }
        };
        // Admission control: bounded waiting per tenant, shed beyond.
        let admitted = slot
            .waiting
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| {
                (w < self.options.queue_bound).then_some(w + 1)
            })
            .is_ok();
        if !admitted {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return error_line(ErrorCode::Overloaded, "tenant queue full; retry with backoff");
        }
        let _guard = QueueGuard(&slot.waiting);
        let mut st = lock_clean(&slot.state);
        match self.tick_core(&mut st, name, seq, load) {
            Ok((config, rung, replayed)) => decision_line(seq, &config, rung, replayed),
            Err((code, detail)) => error_line(code, &detail),
        }
    }

    /// The full accepted-tick path for one tenant, shared between the
    /// protocol handler and replication apply (a replica applies the
    /// primary's shipped ticks through exactly this path — that is what
    /// makes failover bit-identical): quarantine gate → idempotent
    /// sequencing → validation → WAL append (+rotation) → step →
    /// snapshot and fingerprint cadences. The returned `bool` is true
    /// when the decision was replayed from committed history.
    fn tick_core(
        &self,
        st: &mut TenantState,
        name: &str,
        seq: u64,
        load: f64,
    ) -> Result<(Config, rsz_online::Rung, bool), (ErrorCode, String)> {
        // Quarantine gate: bounce until the backoff expires, then try
        // to revive; a failed revival re-enters with a longer gate.
        if let Some(q) = st.quarantine.clone() {
            if Instant::now() < q.until {
                return Err((
                    q.reason.code(),
                    format!(
                        "tenant quarantined ({}): {}; retry in {:?}",
                        q.reason.as_str(),
                        q.detail,
                        q.until.saturating_duration_since(Instant::now())
                    ),
                ));
            }
            match self.revive(st, name, &[]) {
                Ok(()) => {
                    st.quarantine = None;
                    self.counters.revives.fetch_add(1, Ordering::Relaxed);
                }
                Err((reason, detail)) => {
                    self.quarantine(st, name, reason, detail.clone());
                    return Err((reason.code(), detail));
                }
            }
        }

        // Idempotent sequencing: a duplicate replays its committed
        // decision, a gap is the client's bug (no quarantine — nothing
        // was accepted).
        let expected = st.loads.len() as u64;
        if seq < expected {
            let config = match st.decisions.get(seq as usize) {
                Some(c) => c.clone(),
                // The decision for this accepted tick is still pending
                // (its first attempt panicked and we just revived): the
                // client should re-send the *next* seq; report the gap.
                None => {
                    return Err((
                        ErrorCode::Input,
                        format!("seq {seq} accepted but undecided; resend seq {expected}"),
                    ))
                }
            };
            st.counters.replays += 1;
            self.counters.replays.fetch_add(1, Ordering::Relaxed);
            let rung = st.controller.as_ref().map_or(rsz_online::Rung::Exact, |c| c.rung());
            return Ok((config, rung, true));
        }
        if seq > expected {
            return Err((ErrorCode::Input, format!("seq gap: expected {expected}, got {seq}")));
        }

        // Validation before the WAL: the log holds only accepted ticks.
        if let Err(detail) = st.validate_load(load) {
            st.counters.rejected += 1;
            self.quarantine(st, name, QuarantineReason::Input, detail.clone());
            return Err((ErrorCode::Input, detail));
        }
        match st.wal.as_mut() {
            Some(w) => {
                if let Err(e) = w.append(&WalRecord::Tick { seq, load }) {
                    let detail = format!("WAL append failed: {e}");
                    self.quarantine(st, name, QuarantineReason::Io, detail.clone());
                    return Err((ErrorCode::Quarantined, detail));
                }
            }
            None => {
                let detail = "WAL writer unavailable".to_owned();
                self.quarantine(st, name, QuarantineReason::Io, detail.clone());
                return Err((ErrorCode::Quarantined, detail));
            }
        }
        st.loads.push(load);
        self.maybe_rotate(st, name);

        match self.step(st, name) {
            Ok((config, rung, elapsed)) => {
                st.counters.decisions += 1;
                st.counters.push_latency(elapsed.as_secs_f64());
                self.counters.decisions.fetch_add(1, Ordering::Relaxed);
                st.fresh_since_snapshot += 1;
                let cadence = if st.spec.snapshot_every == 0 {
                    self.options.snapshot_every
                } else {
                    st.spec.snapshot_every
                };
                if cadence > 0 && st.fresh_since_snapshot >= cadence {
                    self.write_snapshot(st, name);
                }
                let fe = self.options.fingerprint_every;
                if fe > 0 && st.loads.len().is_multiple_of(fe) {
                    // With a deadline armed the ladder may descend on
                    // wall-clock overruns, so committed decisions are
                    // not replica-comparable; the fingerprint then
                    // covers the spec + accepted loads only.
                    let full = st.spec.effective_deadline(self.options.deadline).is_none();
                    let decisions = if full { Some(st.decisions.as_slice()) } else { None };
                    let fp = state_fingerprint(&st.spec, &st.loads, decisions);
                    st.push_fingerprint(Fingerprint { k: st.loads.len() as u64, fp, full });
                }
                Ok((config, rung, false))
            }
            Err((reason, detail)) => {
                self.quarantine(st, name, reason, detail.clone());
                Err((reason.code(), detail))
            }
        }
    }

    /// Seal the active WAL once it crosses the size threshold: rename
    /// it to `<tenant>.<through>.walseg` and start a fresh active log
    /// whose first record re-states the registration, so every segment
    /// is self-describing. Rotation only happens between appends, hence
    /// always at a record boundary — a torn tail can only ever live in
    /// the active file.
    fn maybe_rotate(&self, st: &mut TenantState, name: &str) {
        let limit = self.options.segment_bytes;
        if limit == 0 {
            return;
        }
        let through = st.loads.len() as u64;
        let Some(w) = st.wal.as_ref() else { return };
        if (w.bytes() as usize) < limit || through <= st.last_sealed_through {
            return;
        }
        let active = wal::wal_path(&self.options.state_dir, name);
        let sealed = wal::seg_path(&self.options.state_dir, name, through);
        st.wal = None; // close the appender before the rename
        if std::fs::rename(&active, &sealed).is_err() {
            // Rotation is an optimisation: keep appending to the old
            // active file and try again at the next boundary.
            st.wal = WalWriter::open(&active, self.options.fsync).ok();
            return;
        }
        st.last_sealed_through = through;
        self.counters.segments_sealed.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut w) = WalWriter::open(&active, self.options.fsync) {
            // An append failure here leaves the active log empty;
            // recovery re-states the registration, and the next tick's
            // append surfaces the I/O error through quarantine.
            let _ = w.append(&WalRecord::Register(st.spec.clone()));
            st.wal = Some(w);
        }
    }

    /// Decide the latest accepted slot. The controller runs under
    /// `catch_unwind`: a panic here is the tenant's problem, never the
    /// daemon's.
    fn step(
        &self,
        st: &mut TenantState,
        name: &str,
    ) -> Result<(Config, rsz_online::Rung, Duration), (QuarantineReason, String)> {
        if st.controller.is_none() {
            self.build_tenant_controller(st, name)?;
        }
        let instance = st.prefix_instance().map_err(|e| (QuarantineReason::Solver, e))?;
        let t = st.loads.len() - 1;
        let controller = st.controller.as_mut().expect("just built");
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rsz_online::OnlineAlgorithm::decide(controller, &instance, t)
        }));
        let elapsed = start.elapsed();
        match outcome {
            Ok(config) => {
                let rung = controller.rung();
                st.decisions.push(config.clone());
                Ok((config, rung, elapsed))
            }
            Err(payload) => {
                // The controller is gone; recovery rebuilds it from the
                // snapshot + WAL. The tick stays accepted.
                st.controller = None;
                let what = panic_message(payload);
                Err((
                    QuarantineReason::Solver,
                    format!("controller panicked deciding slot {t}: {what}"),
                ))
            }
        }
    }

    /// Build (or rebuild) the tenant's degrader for its current prefix
    /// and install the shared pricing pool.
    fn build_tenant_controller(
        &self,
        st: &mut TenantState,
        _name: &str,
    ) -> Result<(), (QuarantineReason, String)> {
        let instance = st.prefix_instance().map_err(|e| (QuarantineReason::Solver, e))?;
        let spec = st.spec.clone();
        let inner =
            catch_unwind(AssertUnwindSafe(|| build_controller(&spec, &instance, spec.grid.mode())))
                .map_err(|p| (QuarantineReason::Solver, panic_message(p)))?
                .map_err(|e| (QuarantineReason::Solver, e))?;
        let factory_spec = st.spec.clone();
        let factory: crate::tenant::ControllerFactory = Box::new(move |inst, grid| {
            build_controller(&factory_spec, inst, grid).expect("spec validated at registration")
        });
        let mut degrader = GracefulDegrader::new(
            inner,
            factory,
            st.degrade_options(self.options.deadline, self.options.coarse_gamma),
        );
        self.install_pool(st, &instance, &mut degrader);
        st.controller = Some(degrader);
        Ok(())
    }

    /// Point the tenant's engine at the pool shared by every tenant
    /// with the same `(fleet, grid)` key. Sound because pricing is a
    /// pure function of `(partition, λ, grid)`: pool contents change
    /// hit rates, never decisions.
    fn install_pool(&self, st: &TenantState, instance: &Instance, degrader: &mut TenantDegrader) {
        if !st.spec.engine {
            return;
        }
        let key = st.spec.pool_key();
        let pool = {
            let mut pools = lock_clean(&self.pools);
            pools
                .entry(key)
                .or_insert_with(|| shared_pool(instance, self.options.pool_capacity))
                .clone()
        };
        degrader.inner_mut().share_pool(pool);
    }

    /// Bring a tenant back from quarantine (or rebuild a controller a
    /// panic destroyed): restore from the snapshot when possible, merge
    /// the WAL's tick suffix (which may start past zero once segments
    /// have been compacted away), fall back to a full WAL replay, then
    /// replay any undecided suffix through the normal step path.
    ///
    /// A diverged tenant is *not* revivable from local storage — its
    /// own WAL would faithfully replay the same divergent state — so
    /// `Divergence` stays quarantined until a fresh resync replaces the
    /// state wholesale.
    fn revive(
        &self,
        st: &mut TenantState,
        name: &str,
        wal_suffix: &[(u64, f64)],
    ) -> Result<(), (QuarantineReason, String)> {
        if st.quarantine.as_ref().is_some_and(|q| q.reason == QuarantineReason::Divergence) {
            return Err((
                QuarantineReason::Divergence,
                "diverged from the primary; local replay would reproduce the divergence".into(),
            ));
        }
        // Input quarantines keep the controller: the bad tick was never
        // applied, so the state is intact and the gate alone suffices.
        if wal_suffix.is_empty()
            && st.quarantine.as_ref().is_some_and(|q| q.reason == QuarantineReason::Input)
            && st.controller.is_some()
            && st.decisions.len() == st.loads.len()
        {
            return Ok(());
        }
        if st.wal.is_none() {
            let path = wal::wal_path(&self.options.state_dir, name);
            st.wal = Some(
                WalWriter::open(&path, self.options.fsync)
                    .map_err(|e| (QuarantineReason::Io, format!("WAL reopen failed: {e}")))?,
            );
        }
        st.controller = None;
        st.decisions.clear();
        self.restore_from_snapshot(st, name);
        // Merge the WAL ticks over whatever prefix the snapshot (or
        // live memory) established: overlap must agree bit-for-bit, the
        // contiguous extension is validated and accepted, and a gap
        // means compaction deleted segments the snapshot was supposed
        // to cover — unrecoverable locally.
        for &(seq, load) in wal_suffix {
            let len = st.loads.len() as u64;
            if seq < len {
                if st.loads[seq as usize].to_bits() != load.to_bits() {
                    return Err((
                        QuarantineReason::WalCorrupt,
                        format!("WAL tick at seq {seq} disagrees with the snapshot prefix"),
                    ));
                }
            } else if seq == len {
                st.validate_load(load).map_err(|e| {
                    (
                        QuarantineReason::WalCorrupt,
                        format!("WAL holds an invalid accepted load at seq {seq}: {e}"),
                    )
                })?;
                st.loads.push(load);
            } else {
                return Err((
                    QuarantineReason::WalCorrupt,
                    format!(
                        "WAL resumes at seq {seq} but only {len} ticks are recoverable \
                         (compacted log without its snapshot)"
                    ),
                ));
            }
        }
        // Replay the undecided suffix through the very same step path a
        // live tick takes — this is what makes resume bit-identical.
        while st.decisions.len() < st.loads.len() {
            let have = st.decisions.len();
            let full = std::mem::take(&mut st.loads);
            st.loads = full[..=have].to_vec();
            let result = self.step(st, name);
            st.loads = full;
            result?;
        }
        Ok(())
    }

    /// Try to restore controller + committed decisions from the
    /// snapshot file. Any failure falls back to a fresh controller
    /// (full WAL replay) — a bad snapshot degrades recovery time, not
    /// correctness, and is counted + detailed.
    fn restore_from_snapshot(&self, st: &mut TenantState, name: &str) {
        let path = wal::snap_path(&self.options.state_dir, name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return, // no snapshot: full replay
        };
        if self.try_restore(st, name, &bytes).is_err() {
            // Quarantine would be wrong here: the WAL still recovers
            // this tenant fully, just slower. Count the fallback.
            st.controller = None;
            st.decisions.clear();
            st.counters.snapshot_fallbacks += 1;
            self.counters.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_restore(&self, st: &mut TenantState, name: &str, bytes: &[u8]) -> Result<(), String> {
        let mut dec =
            Decoder::from_sealed(bytes).map_err(|e| describe_snapshot_error(bytes, &e))?;
        let version = dec.take_u8().map_err(stringify)?;
        if version != SNAP_FORMAT {
            return Err(format!("snapshot format {version} (this daemon writes {SNAP_FORMAT})"));
        }
        let snap_name =
            wire::take_str(&mut dec, "snapshot tenant name is not UTF-8").map_err(stringify)?;
        if snap_name != name {
            return Err(format!("snapshot belongs to tenant `{snap_name}`"));
        }
        let snap_spec = TenantSpec::decode(&mut dec).map_err(stringify)?;
        if snap_spec != st.spec {
            return Err("snapshot was taken under a different spec".into());
        }
        let k = dec.take_usize().map_err(stringify)?;
        if k == 0 {
            return Err("snapshot covers zero slots".into());
        }
        let mut snap_loads = Vec::with_capacity(k);
        for _ in 0..k {
            snap_loads.push(dec.take_f64().map_err(stringify)?);
        }
        // The accepted loads already in memory (live revive) or already
        // replayed from the WAL are ground truth: the snapshot's prefix
        // must agree with them bit-for-bit. When the snapshot reaches
        // *past* what the WAL still holds (compaction deleted covered
        // segments), the snapshot supplies the missing prefix.
        let overlap = k.min(st.loads.len());
        for (i, snap) in snap_loads.iter().enumerate().take(overlap) {
            if st.loads[i].to_bits() != snap.to_bits() {
                return Err(format!("snapshot load at seq {i} disagrees with the WAL"));
            }
        }
        let inner = dec.take_bytes().map_err(stringify)?.to_vec();
        let original = std::mem::take(&mut st.loads);
        // Controller rebuild + inner restore see exactly the snapshot's
        // k-slot prefix.
        st.loads = if k > original.len() { snap_loads } else { original[..k].to_vec() };
        let built = self.build_tenant_controller(st, name);
        let result = (|| {
            built.map_err(|(_, e)| e)?;
            let instance = st.prefix_instance()?;
            let controller = st.controller.as_mut().expect("just built");
            let committed = restore_run(controller, &instance, &inner)
                .map_err(|e| describe_snapshot_error(&inner, &e))?;
            if committed.len() != k {
                return Err("snapshot committed length disagrees with its header".into());
            }
            st.decisions = committed.iter().map(|(_, c)| c.clone()).collect();
            Ok(())
        })();
        match &result {
            Ok(()) => {
                // Keep whichever committed prefix reaches further: the
                // in-memory/WAL loads past k survive the restore.
                if original.len() > k {
                    st.loads = original;
                }
                st.last_snapshot_k = st.last_snapshot_k.max(k);
                // restore_state rebuilds internal pools as owned, so
                // the shared handle must be re-installed after restore.
                if let Ok(instance) = st.prefix_instance() {
                    if let Some(mut degrader) = st.controller.take() {
                        self.install_pool(st, &instance, &mut degrader);
                        st.controller = Some(degrader);
                    }
                }
            }
            Err(_) => {
                // A failed restore must leave the loads exactly as the
                // WAL established them — never the snapshot's.
                st.loads = original;
                st.controller = None;
                st.decisions.clear();
            }
        }
        result
    }

    /// Seal the tenant's state: `(format, name, spec, k, loads[..k],
    /// save_run bytes)` in a checksummed envelope, written via tmp +
    /// rename so a crash leaves either the old snapshot or the new one,
    /// never a hybrid. A durable snapshot then compacts the WAL: every
    /// sealed segment it fully covers is deleted.
    fn write_snapshot(&self, st: &mut TenantState, name: &str) {
        let Some(controller) = st.controller.as_ref() else { return };
        let k = st.decisions.len();
        if k == 0 || k != st.loads.len() {
            return;
        }
        let instance = match st.prefix_instance() {
            Ok(i) => i,
            Err(_) => return,
        };
        let mut committed = Schedule::empty();
        for c in &st.decisions {
            committed.push(c.clone());
        }
        let inner = save_run(controller, &instance, &committed);
        let mut enc = Encoder::new();
        enc.put_u8(SNAP_FORMAT);
        enc.put_bytes(name.as_bytes());
        st.spec.encode(&mut enc);
        enc.put_usize(k);
        for load in &st.loads[..k] {
            enc.put_f64(*load);
        }
        enc.put_bytes(&inner);
        let sealed = enc.into_sealed();
        let path = wal::snap_path(&self.options.state_dir, name);
        let tmp = path.with_extension("snap.tmp");
        let io = std::fs::write(&tmp, &sealed).and_then(|()| {
            if self.options.fsync {
                let f = std::fs::File::open(&tmp)?;
                f.sync_data()?;
            }
            std::fs::rename(&tmp, &path)
        });
        match io {
            Ok(()) => {
                st.fresh_since_snapshot = 0;
                st.last_snapshot_k = k;
                st.counters.snapshots += 1;
                self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
                self.compact_segments(st, name, k as u64);
            }
            Err(_) => {
                // Snapshot write failure is not fatal: the WAL still
                // recovers everything, just slower.
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Delete sealed WAL segments the durable snapshot fully covers:
    /// a segment running through `through ≤ k` contributes nothing the
    /// snapshot's bit-exact load prefix does not already hold.
    fn compact_segments(&self, _st: &mut TenantState, name: &str, k: u64) {
        for (through, path) in wal::list_segments(&self.options.state_dir, name) {
            if through <= k && std::fs::remove_file(&path).is_ok() {
                self.counters.segments_compacted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot every live tenant (orderly shutdown).
    pub fn snapshot_all(&self) {
        let slots: Vec<(String, Arc<TenantSlot>)> = {
            let tenants = lock_clean(&self.tenants);
            tenants.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        for (name, slot) in slots {
            let mut st = lock_clean(&slot.state);
            if st.quarantine.is_none() {
                self.write_snapshot(&mut st, &name);
            }
        }
    }

    /// Scan the state directory for surviving state and recover each
    /// tenant. A tenant is discoverable through its active WAL, any
    /// sealed segment, or its snapshot — a crash between seal-rename
    /// and fresh-active-open leaves no `.wal` file, and compaction can
    /// leave a snapshot as the only pre-suffix evidence. Per-tenant
    /// failures quarantine that tenant; nothing here aborts startup.
    fn recover_all(&self) {
        let entries = match std::fs::read_dir(&self.options.state_dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        let mut names = std::collections::BTreeSet::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(file) = path.file_name().and_then(|s| s.to_str()) else { continue };
            if let Some(stem) = file.strip_suffix(".wal").or_else(|| file.strip_suffix(".snap")) {
                names.insert(stem.to_owned());
            } else if let Some(stem) = file.strip_suffix(".walseg") {
                // `<tenant>.NNNNNNNNNNNN.walseg`
                if let Some((tenant, digits)) = stem.rsplit_once('.') {
                    if digits.len() == 12 && digits.bytes().all(|b| b.is_ascii_digit()) {
                        names.insert(tenant.to_owned());
                    }
                }
            }
        }
        for name in names {
            if let Some(state) = self.recover_tenant(&name) {
                self.counters.recovered.fetch_add(1, Ordering::Relaxed);
                lock_clean(&self.tenants).insert(
                    name,
                    Arc::new(TenantSlot { waiting: AtomicUsize::new(0), state: Mutex::new(state) }),
                );
            }
        }
    }

    /// Recover one tenant from its sealed WAL segments + active WAL
    /// (+snapshot). Returns `None` only when nothing usable survives at
    /// all (no registration in any log and no readable snapshot).
    fn recover_tenant(&self, name: &str) -> Option<TenantState> {
        let active = wal::wal_path(&self.options.state_dir, name);
        let segments = wal::list_segments(&self.options.state_dir, name);
        let last_sealed_through = segments.last().map_or(0, |(t, _)| *t);
        let mut sources: Vec<(PathBuf, bool)> =
            segments.into_iter().map(|(_, p)| (p, false)).collect();
        sources.push((active.clone(), true));

        let mut spec: Option<TenantSpec> = None;
        let mut ticks: Vec<(u64, f64)> = Vec::new();
        let mut corrupt_detail: Option<String> = None;

        'sources: for (path, is_active) in &sources {
            let bytes = match wal::read_file(path) {
                Ok(b) => b,
                // No active file at all: a crash between seal-rename
                // and fresh-active-open. The sealed segments carry the
                // history; a fresh active log is opened below.
                Err(_) if *is_active => Vec::new(),
                Err(e) => {
                    corrupt_detail
                        .get_or_insert_with(|| format!("sealed WAL segment unreadable: {e}"));
                    break;
                }
            };
            if bytes.is_empty() {
                continue;
            }
            let WalScan { records, intact_len, tail } = wal::scan(&bytes);
            match tail {
                WalTail::Clean => {}
                WalTail::Torn { .. } if *is_active => {
                    // Crash-consistent: drop the torn tail and resume
                    // from the intact prefix.
                    let _ = wal::truncate_file(path, intact_len);
                    self.counters.wal_truncations.fetch_add(1, Ordering::Relaxed);
                }
                WalTail::Torn { at } => {
                    // Rotation seals only at record boundaries; a torn
                    // sealed segment means storage lost bytes.
                    corrupt_detail
                        .get_or_insert_with(|| format!("sealed WAL segment torn at byte {at}"));
                }
                WalTail::Corrupt { start, end, what } => {
                    corrupt_detail.get_or_insert_with(|| {
                        format!("WAL bytes {start}..{end} failed integrity: {what}")
                    });
                }
            }
            for record in records {
                match record {
                    WalRecord::Register(s) => match &spec {
                        // Segments re-state the registration so each is
                        // self-describing; re-statements must agree.
                        None => spec = Some(s),
                        Some(prev) if *prev == s => {}
                        Some(_) => {
                            corrupt_detail.get_or_insert_with(|| {
                                "WAL re-registers the tenant with a different spec".to_owned()
                            });
                            break 'sources;
                        }
                    },
                    WalRecord::Tick { seq, load } => {
                        let contiguous = match ticks.last() {
                            // Compaction may have deleted early
                            // segments: any starting seq is legal, the
                            // snapshot must cover the gap (checked in
                            // revive).
                            None => true,
                            Some(&(last, _)) => seq == last + 1,
                        };
                        if !contiguous {
                            corrupt_detail
                                .get_or_insert_with(|| "WAL records out of sequence".to_owned());
                            break 'sources;
                        }
                        ticks.push((seq, load));
                    }
                }
            }
            if corrupt_detail.is_some() {
                break;
            }
        }

        // No usable registration anywhere: nothing to attach to.
        let spec = spec.or_else(|| self.snapshot_spec(name))?;
        let types = spec.server_types().ok()?;
        let mut state = TenantState {
            spec,
            types,
            loads: Vec::new(),
            decisions: Vec::new(),
            controller: None,
            wal: None,
            fresh_since_snapshot: 0,
            quarantine: None,
            counters: TenantCounters::default(),
            fingerprints: Vec::new(),
            last_sealed_through,
            last_snapshot_k: 0,
            fp_checked: 0,
        };
        if let Some(detail) = corrupt_detail {
            self.quarantine(&mut state, name, QuarantineReason::WalCorrupt, detail);
            return Some(state);
        }
        match WalWriter::open(&active, self.options.fsync) {
            Ok(mut w) => {
                if w.bytes() == 0 {
                    // Fresh (or lost) active log: re-state the
                    // registration so the segment is self-describing.
                    let _ = w.append(&WalRecord::Register(state.spec.clone()));
                }
                state.wal = Some(w);
            }
            Err(e) => {
                self.quarantine(
                    &mut state,
                    name,
                    QuarantineReason::Io,
                    format!("WAL reopen failed: {e}"),
                );
                return Some(state);
            }
        }
        if let Err((reason, detail)) = self.revive(&mut state, name, &ticks) {
            self.quarantine(&mut state, name, reason, detail);
        }
        Some(state)
    }

    /// Peek a snapshot's header for the tenant spec — the fallback
    /// registration source when compaction + crash timing left no WAL
    /// holding a `Register` record.
    fn snapshot_spec(&self, name: &str) -> Option<TenantSpec> {
        let bytes = std::fs::read(wal::snap_path(&self.options.state_dir, name)).ok()?;
        let mut dec = Decoder::from_sealed(&bytes).ok()?;
        if dec.take_u8().ok()? != SNAP_FORMAT {
            return None;
        }
        let snap_name = wire::take_str(&mut dec, "snapshot tenant name is not UTF-8").ok()?;
        if snap_name != name {
            return None;
        }
        TenantSpec::decode(&mut dec).ok()
    }

    fn quarantine(
        &self,
        st: &mut TenantState,
        name: &str,
        reason: QuarantineReason,
        detail: String,
    ) {
        self.counters.quarantines.fetch_add(1, Ordering::Relaxed);
        st.enter_quarantine(
            reason,
            detail,
            self.options.backoff_base,
            self.options.backoff_cap,
            name,
        );
    }

    /// Orderly shutdown: stop admitting writes *first* (clients see
    /// `overloaded` and fail over), then flush + fsync every tenant's
    /// WAL and seal a final snapshot. Idempotent.
    pub fn graceful_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let slots: Vec<(String, Arc<TenantSlot>)> = {
            let tenants = lock_clean(&self.tenants);
            tenants.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        for (name, slot) in slots {
            let mut st = lock_clean(&slot.state);
            if let Some(w) = st.wal.as_mut() {
                let _ = w.sync();
            }
            if st.quarantine.is_none() {
                self.write_snapshot(&mut st, &name);
            }
        }
    }

    /// Replica → Primary failover: seal what we have, flip the role,
    /// start accepting writes. The committed prefix was applied through
    /// the identical step path, so every tenant resumes bit-identically
    /// with zero accepted-tick loss.
    pub fn promote(&self) {
        self.set_role(Role::Promoting);
        self.snapshot_all();
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        self.repl_lag.store(0, Ordering::Relaxed);
        self.set_role(Role::Primary);
    }

    /// Accepted-tick counts per tenant, sorted by name — what a replica
    /// reports as `have` in `repl.sync`.
    #[must_use]
    pub fn replication_have(&self) -> Vec<(String, u64)> {
        let tenants = lock_clean(&self.tenants);
        let mut have: Vec<(String, u64)> = tenants
            .iter()
            .map(|(name, slot)| (name.clone(), lock_clean(&slot.state).loads.len() as u64))
            .collect();
        have.sort();
        have
    }

    /// Replication lag gauge (accepted ticks behind the primary after
    /// the latest applied sync).
    #[must_use]
    pub fn repl_lag_ticks(&self) -> u64 {
        self.repl_lag.load(Ordering::Relaxed)
    }

    /// Chaos hook: flip one mantissa bit in a committed load so the
    /// next fingerprint check must trip. Gated on `allow_fault_hooks`;
    /// returns whether a bit was flipped.
    pub fn inject_divergence(&self, name: &str) -> bool {
        if !self.options.allow_fault_hooks {
            return false;
        }
        let slot = {
            let tenants = lock_clean(&self.tenants);
            tenants.get(name).cloned()
        };
        let Some(slot) = slot else { return false };
        let mut st = lock_clean(&slot.state);
        if st.loads.is_empty() {
            return false;
        }
        let mid = st.loads.len() / 2;
        st.loads[mid] = f64::from_bits(st.loads[mid].to_bits() ^ (1 << 30));
        true
    }

    /// The primary's answer to `repl.sync`: per non-quarantined tenant,
    /// the WAL frames the replica is missing (hex, FNV-1a framing
    /// intact end-to-end), the durable-snapshot horizon, and the recent
    /// fingerprint ring.
    fn sync_reply(&self, replica: &str, have: &[(String, u64)]) -> String {
        self.counters.repl_syncs.fetch_add(1, Ordering::Relaxed);
        let have: HashMap<&str, u64> = have.iter().map(|(t, n)| (t.as_str(), *n)).collect();
        let slots: Vec<(String, Arc<TenantSlot>)> = {
            let tenants = lock_clean(&self.tenants);
            let mut v: Vec<_> = tenants.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut tenant_objs: Vec<(String, Json)> = Vec::new();
        for (name, slot) in slots {
            let st = lock_clean(&slot.state);
            // Quarantined state never replicates: the replica keeps its
            // own (healthy or older) view instead of inheriting faults.
            if st.quarantine.is_some() {
                continue;
            }
            let total = st.loads.len() as u64;
            let base = have.get(name.as_str()).copied().unwrap_or(0).min(total);
            let mut frames = Vec::new();
            if base == 0 {
                frames.extend_from_slice(&wal::frame(&WalRecord::Register(st.spec.clone())));
            }
            for seq in base..total {
                frames.extend_from_slice(&wal::frame(&WalRecord::Tick {
                    seq,
                    load: st.loads[seq as usize],
                }));
            }
            let fps: Vec<Json> = st
                .fingerprints
                .iter()
                .map(|f| {
                    Json::Obj(vec![
                        ("k".to_owned(), json::n(f.k as f64)),
                        ("fp".to_owned(), json::s(format!("{:016x}", f.fp))),
                        ("full".to_owned(), Json::Bool(f.full)),
                    ])
                })
                .collect();
            tenant_objs.push((
                name,
                Json::Obj(vec![
                    ("ticks".to_owned(), json::n(total as f64)),
                    ("snap_k".to_owned(), json::n(st.last_snapshot_k as f64)),
                    ("frames".to_owned(), json::s(to_hex(&frames))),
                    ("fps".to_owned(), Json::Arr(fps)),
                ]),
            ));
        }
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("role", json::s(self.role().as_str())),
            ("replica", json::s(replica)),
            ("tenants", Json::Obj(tenant_objs)),
        ])
        .to_line()
    }

    /// Apply one primary sync reply on this (replica) daemon. Frames
    /// ride through [`wal::scan`] so transit corruption is rejected by
    /// the same FNV-1a framing that guards the on-disk log, ticks apply
    /// through `Daemon::tick_core` — the identical path a live tick
    /// takes — and every unchecked fingerprint at or below our tick
    /// count is recomputed and compared. Per-tenant failures land in
    /// the report; only an unusable reply errors out.
    pub fn apply_sync(&self, reply: &str) -> Result<ApplyReport, String> {
        let value = json::parse(reply).map_err(|e| format!("sync reply is not JSON: {e}"))?;
        if value.get("ok").and_then(Json::as_bool) != Some(true) {
            let code = value.get("error").and_then(Json::as_str).unwrap_or("unknown");
            return Err(format!("primary refused sync: {code}"));
        }
        let tenants = match value.get("tenants") {
            Some(Json::Obj(members)) => members.clone(),
            _ => return Err("sync reply lacks a tenants object".into()),
        };
        let mut report = ApplyReport::default();
        for (name, body) in &tenants {
            report.tenants += 1;
            if let Err(e) = self.apply_tenant_sync(name, body, &mut report) {
                report.errors.push(format!("{name}: {e}"));
            }
        }
        self.repl_lag.store(report.lag, Ordering::Relaxed);
        Ok(report)
    }

    fn apply_tenant_sync(
        &self,
        name: &str,
        body: &Json,
        report: &mut ApplyReport,
    ) -> Result<(), String> {
        let primary_ticks =
            body.get("ticks").and_then(Json::as_u64).ok_or("tenant body lacks ticks")?;
        let frames_hex = body.get("frames").and_then(Json::as_str).unwrap_or("");
        let bytes = from_hex(frames_hex).ok_or("frames are not valid hex")?;
        let WalScan { records, tail, .. } = wal::scan(&bytes);
        if !matches!(tail, WalTail::Clean) {
            // A bit flipped in transit: reject the whole batch before
            // anything reaches the step path; the next sync re-ships.
            self.counters.repl_frame_rejects.fetch_add(1, Ordering::Relaxed);
            return Err("frame batch failed its FNV-1a integrity check".into());
        }
        for record in records {
            match record {
                WalRecord::Register(spec) => {
                    self.do_register(name, spec).map_err(|(_, detail)| detail)?;
                }
                WalRecord::Tick { seq, load } => {
                    let slot = {
                        let tenants = lock_clean(&self.tenants);
                        tenants.get(name).cloned()
                    };
                    let Some(slot) = slot else {
                        return Err(format!("tick {seq} for an unregistered tenant"));
                    };
                    let mut st = lock_clean(&slot.state);
                    match self.tick_core(&mut st, name, seq, load) {
                        Ok((_, _, replayed)) => {
                            if !replayed {
                                report.applied += 1;
                                self.counters.repl_applied.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err((_, detail)) => return Err(detail),
                    }
                }
            }
        }
        let slot = {
            let tenants = lock_clean(&self.tenants);
            tenants.get(name).cloned()
        };
        let Some(slot) = slot else { return Ok(()) };
        let mut st = lock_clean(&slot.state);
        report.lag += primary_ticks.saturating_sub(st.loads.len() as u64);
        if st.quarantine.is_some() {
            return Ok(());
        }
        // Cross-check the primary's fingerprints against our own state
        // — every k we have reached and not yet checked.
        if let Some(Json::Arr(fps)) = body.get("fps") {
            for fp_obj in fps {
                let Some(k) = fp_obj.get("k").and_then(Json::as_u64) else { continue };
                let Some(fp_hex) = fp_obj.get("fp").and_then(Json::as_str) else { continue };
                let Ok(theirs) = u64::from_str_radix(fp_hex, 16) else { continue };
                let full = fp_obj.get("full").and_then(Json::as_bool).unwrap_or(false);
                if k == 0 || k <= st.fp_checked || k > st.loads.len() as u64 {
                    continue;
                }
                if full && st.decisions.len() < k as usize {
                    continue; // undecided suffix; the next sync re-checks
                }
                let decisions = if full { Some(&st.decisions[..k as usize]) } else { None };
                let ours = state_fingerprint(&st.spec, &st.loads[..k as usize], decisions);
                st.fp_checked = k;
                report.fp_checks += 1;
                self.counters.fingerprint_checks.fetch_add(1, Ordering::Relaxed);
                if ours != theirs {
                    report.fp_mismatches += 1;
                    self.counters.fingerprint_mismatches.fetch_add(1, Ordering::Relaxed);
                    let detail = format!(
                        "state fingerprint at k={k} is {ours:016x}, primary says {theirs:016x}"
                    );
                    self.quarantine(&mut st, name, QuarantineReason::Divergence, detail.clone());
                    return Err(detail);
                }
            }
        }
        // The primary's durable horizon advanced past ours: seal our
        // own snapshot (which also compacts our sealed segments).
        if let Some(snap_k) = body.get("snap_k").and_then(Json::as_u64) {
            if snap_k > st.last_snapshot_k as u64
                && st.decisions.len() == st.loads.len()
                && st.loads.len() as u64 >= snap_k
            {
                self.write_snapshot(&mut st, name);
            }
        }
        Ok(())
    }

    fn livez_line(&self) -> String {
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("live", Json::Bool(true)),
            ("uptime_us", json::n(self.started.elapsed().as_micros() as f64)),
        ])
        .to_line()
    }

    fn readyz_line(&self) -> String {
        let (total, reasons) = {
            let tenants = lock_clean(&self.tenants);
            let mut names: Vec<&String> = tenants.keys().collect();
            names.sort();
            let mut reasons: Vec<(String, Json)> = Vec::new();
            for name in &names {
                let st = lock_clean(&tenants[*name].state);
                if let Some(q) = &st.quarantine {
                    reasons.push(((*name).clone(), json::s(q.reason.as_str())));
                }
            }
            (tenants.len(), reasons)
        };
        let role = self.role();
        let ready = role == Role::Primary && !self.shutdown_requested();
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("ready", Json::Bool(ready)),
            ("role", json::s(role.as_str())),
            ("repl_lag_ticks", json::n(self.repl_lag.load(Ordering::Relaxed) as f64)),
            ("tenants", json::n(total as f64)),
            ("quarantined", json::n(reasons.len() as f64)),
            ("quarantine_reasons", Json::Obj(reasons)),
        ])
        .to_line()
    }

    fn health_line(&self) -> String {
        let (total, quarantined) = {
            let tenants = lock_clean(&self.tenants);
            let q = tenants.values().filter(|s| lock_clean(&s.state).quarantine.is_some()).count();
            (tenants.len(), q)
        };
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("status", json::s(if quarantined == 0 { "ok" } else { "degraded" })),
            ("uptime_us", json::n(self.started.elapsed().as_micros() as f64)),
            ("tenants", json::n(total as f64)),
            ("quarantined", json::n(quarantined as f64)),
        ])
        .to_line()
    }

    fn metrics_line(&self) -> String {
        let c = &self.counters;
        let mut daemon_degrade = DegradeStats::default();
        let mut tenant_objs: Vec<(String, Json)> = Vec::new();
        let mut pool_pricings = 0u64;
        let mut pool_hits = 0u64;
        {
            let tenants = lock_clean(&self.tenants);
            let mut names: Vec<&String> = tenants.keys().collect();
            names.sort();
            for name in names {
                let slot = &tenants[name];
                let st = lock_clean(&slot.state);
                let profile = LatencyProfile::new(st.counters.latencies.clone());
                let (exact, coarse, hold, rung) = match st.controller.as_ref() {
                    Some(ctl) => {
                        daemon_degrade.absorb(ctl.stats());
                        (
                            ctl.stats().exact,
                            ctl.stats().coarse,
                            ctl.stats().hold,
                            protocol::rung_str(ctl.rung()),
                        )
                    }
                    None => (0, 0, 0, "none"),
                };
                let engine = st.controller.as_ref().and_then(|ctl| ctl.inner().engine_stats());
                if let Some(e) = &engine {
                    pool_pricings += e.pricings;
                    pool_hits += e.pool_hits;
                }
                let mut fields = vec![
                    ("ticks".to_owned(), json::n(st.loads.len() as f64)),
                    ("decisions".to_owned(), json::n(st.counters.decisions as f64)),
                    ("replays".to_owned(), json::n(st.counters.replays as f64)),
                    ("rejected".to_owned(), json::n(st.counters.rejected as f64)),
                    ("quarantines".to_owned(), json::n(st.counters.quarantines as f64)),
                    ("snapshots".to_owned(), json::n(st.counters.snapshots as f64)),
                    ("snapshot_lag".to_owned(), json::n(st.fresh_since_snapshot as f64)),
                    ("rung".to_owned(), json::s(rung)),
                    ("rung_exact".to_owned(), json::n(exact as f64)),
                    ("rung_coarse".to_owned(), json::n(coarse as f64)),
                    ("rung_hold".to_owned(), json::n(hold as f64)),
                    ("latency_p50_us".to_owned(), json::n(profile.quantile(0.5) * 1e6)),
                    ("latency_p99_us".to_owned(), json::n(profile.quantile(0.99) * 1e6)),
                ];
                if let Some(e) = engine {
                    fields.push(("pool_pricings".to_owned(), json::n(e.pricings as f64)));
                    fields.push(("pool_hits".to_owned(), json::n(e.pool_hits as f64)));
                }
                if let Some(q) = &st.quarantine {
                    fields.push(("quarantined".to_owned(), json::s(q.reason.as_str())));
                    fields.push(("quarantine_detail".to_owned(), json::s(&q.detail)));
                }
                tenant_objs.push((name.clone(), Json::Obj(fields)));
            }
        }
        let total_lookups = pool_pricings + pool_hits;
        let hit_rate =
            if total_lookups == 0 { 0.0 } else { pool_hits as f64 / total_lookups as f64 };
        json::obj(vec![
            ("ok", Json::Bool(true)),
            ("requests", json::n(c.requests.load(Ordering::Relaxed) as f64)),
            ("bad_requests", json::n(c.bad_requests.load(Ordering::Relaxed) as f64)),
            ("ticks", json::n(c.ticks.load(Ordering::Relaxed) as f64)),
            ("decisions", json::n(c.decisions.load(Ordering::Relaxed) as f64)),
            ("replays", json::n(c.replays.load(Ordering::Relaxed) as f64)),
            ("shed", json::n(c.shed.load(Ordering::Relaxed) as f64)),
            ("quarantines", json::n(c.quarantines.load(Ordering::Relaxed) as f64)),
            ("revives", json::n(c.revives.load(Ordering::Relaxed) as f64)),
            ("wal_truncations", json::n(c.wal_truncations.load(Ordering::Relaxed) as f64)),
            ("snapshot_fallbacks", json::n(c.snapshot_fallbacks.load(Ordering::Relaxed) as f64)),
            ("snapshots", json::n(c.snapshots.load(Ordering::Relaxed) as f64)),
            ("recovered", json::n(c.recovered.load(Ordering::Relaxed) as f64)),
            ("role", json::s(self.role().as_str())),
            ("repl_lag_ticks", json::n(self.repl_lag.load(Ordering::Relaxed) as f64)),
            ("segments_sealed", json::n(c.segments_sealed.load(Ordering::Relaxed) as f64)),
            ("segments_compacted", json::n(c.segments_compacted.load(Ordering::Relaxed) as f64)),
            ("repl_syncs", json::n(c.repl_syncs.load(Ordering::Relaxed) as f64)),
            ("repl_applied", json::n(c.repl_applied.load(Ordering::Relaxed) as f64)),
            ("repl_frame_rejects", json::n(c.repl_frame_rejects.load(Ordering::Relaxed) as f64)),
            ("fingerprint_checks", json::n(c.fingerprint_checks.load(Ordering::Relaxed) as f64)),
            (
                "fingerprint_mismatches",
                json::n(c.fingerprint_mismatches.load(Ordering::Relaxed) as f64),
            ),
            ("failovers", json::n(c.failovers.load(Ordering::Relaxed) as f64)),
            ("pool_hit_rate", json::n(hit_rate)),
            ("rung_exact", json::n(daemon_degrade.exact as f64)),
            ("rung_coarse", json::n(daemon_degrade.coarse as f64)),
            ("rung_hold", json::n(daemon_degrade.hold as f64)),
            ("tenants", Json::Obj(tenant_objs)),
        ])
        .to_line()
    }
}

fn stringify(e: SnapshotError) -> String {
    format!("{e}")
}

/// Human-readable snapshot failure, including the byte range that
/// failed the FNV-1a check when that is what happened.
pub fn describe_snapshot_error(bytes: &[u8], e: &SnapshotError) -> String {
    if matches!(e, SnapshotError::ChecksumMismatch) {
        if let Some(range) = payload_range(bytes) {
            return format!("{e} (bytes {}..{} failed the FNV-1a check)", range.start, range.end);
        }
    }
    format!("{e}")
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsz-serve-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options(dir: &std::path::Path) -> ServeOptions {
        ServeOptions { state_dir: dir.to_path_buf(), ..ServeOptions::default() }
    }

    fn decided_counts(reply: &str) -> Vec<u64> {
        let v = json::parse(reply).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
        match v.get("config").unwrap() {
            Json::Arr(items) => items.iter().map(|i| i.as_u64().unwrap()).collect(),
            other => panic!("bad config: {other:?}"),
        }
    }

    #[test]
    fn register_tick_and_kill_restart_resume_bit_identically() {
        let dir = tmp_dir("resume");
        let loads = [1.0, 2.5, 0.5, 3.0, 1.5, 0.0, 2.0, 2.75];

        // Uninterrupted baseline.
        let daemon = Daemon::new(options(&dir)).unwrap();
        let reg = r#"{"op":"register","tenant":"t1","fleet":"cpu-gpu:2,1","algo":"b","snapshot_every":3}"#;
        let v = json::parse(&daemon.handle(reg)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let mut baseline = Vec::new();
        for (i, l) in loads.iter().enumerate() {
            let line = format!(r#"{{"op":"tick","tenant":"t1","seq":{i},"load":{l}}}"#);
            baseline.push(decided_counts(&daemon.handle(&line)));
        }
        drop(daemon); // kill -9: no shutdown, no final snapshot

        // Restart over the same state dir: recovery must replay the WAL
        // (+snapshot) and answer duplicate seqs from committed history.
        let daemon = Daemon::new(options(&dir)).unwrap();
        assert_eq!(daemon.counters.recovered.load(Ordering::Relaxed), 1);
        let v = json::parse(&daemon.handle(reg)).unwrap();
        assert_eq!(v.get("resumed_ticks").and_then(Json::as_u64), Some(loads.len() as u64));
        for (i, _) in loads.iter().enumerate() {
            let line = format!(r#"{{"op":"tick","tenant":"t1","seq":{i},"load":99.0}}"#);
            let reply = daemon.handle(&line);
            let v = json::parse(&reply).unwrap();
            assert_eq!(v.get("replayed").and_then(Json::as_bool), Some(true), "{reply}");
            assert_eq!(decided_counts(&reply), baseline[i], "seq {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_loads_quarantine_the_tenant_not_the_daemon() {
        let dir = tmp_dir("poison");
        let daemon = Daemon::new(options(&dir)).unwrap();
        for name in ["good", "bad"] {
            let reg = format!(r#"{{"op":"register","tenant":"{name}","fleet":"homogeneous:3"}}"#);
            assert!(daemon.handle(&reg).contains("\"ok\":true"));
        }
        daemon.handle(r#"{"op":"tick","tenant":"good","seq":0,"load":1.0}"#);
        daemon.handle(r#"{"op":"tick","tenant":"bad","seq":0,"load":1.0}"#);
        // Poisoned λ: null load → NaN → input quarantine for `bad` only.
        let reply = daemon.handle(r#"{"op":"tick","tenant":"bad","seq":1,"load":null}"#);
        assert!(reply.contains("\"error\":\"input\""), "{reply}");
        // `bad` is gated…
        let reply = daemon.handle(r#"{"op":"tick","tenant":"bad","seq":1,"load":1.0}"#);
        assert!(reply.contains("quarantined"), "{reply}");
        // …while `good` keeps deciding.
        let reply = daemon.handle(r#"{"op":"tick","tenant":"good","seq":1,"load":2.0}"#);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let health = daemon.handle("GET /health");
        assert!(health.contains("\"quarantined\":1"), "{health}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn controller_panics_are_caught_at_the_step_boundary() {
        let dir = tmp_dir("panic");
        let daemon =
            Daemon::new(ServeOptions { allow_fault_hooks: true, ..options(&dir) }).unwrap();
        let reg = r#"{"op":"register","tenant":"t","fleet":"homogeneous:3","algo":"panic:2"}"#;
        assert!(daemon.handle(reg).contains("\"ok\":true"));
        for i in 0..2 {
            let line = format!(r#"{{"op":"tick","tenant":"t","seq":{i},"load":1.0}}"#);
            assert!(daemon.handle(&line).contains("\"ok\":true"));
        }
        let reply = daemon.handle(r#"{"op":"tick","tenant":"t","seq":2,"load":1.0}"#);
        assert!(reply.contains("\"error\":\"solver\""), "{reply}");
        assert!(reply.contains("injected fault"), "{reply}");
        // The daemon itself stays healthy.
        assert!(daemon.handle("GET /health").contains("\"ok\":true"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_hooks_are_rejected_unless_enabled() {
        let dir = tmp_dir("hooks");
        let daemon = Daemon::new(options(&dir)).unwrap();
        let reg = r#"{"op":"register","tenant":"t","fleet":"homogeneous:3","algo":"panic:2"}"#;
        let reply = daemon.handle(reg);
        assert!(reply.contains("\"error\":\"input\""), "{reply}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Algorithm C — `(2d+1+ε)`-competitive via sub-slot refinement
//! (Section 3.2).
//!
//! The additive constant `c(I) = Σ_j max_t l_{t,j}/β_j` of Algorithm B
//! shrinks when idle costs per slot shrink. Algorithm C exploits this by
//! splitting every original slot `t` into
//!
//! ```text
//! ñ_t = ⌈ (d/ε) · max_j l_{t,j}/β_j ⌉     (at least 1)
//! ```
//!
//! sub-slots, each carrying cost `f_{t,j}/ñ_t` and the same volume, and
//! running Algorithm B on the refined instance `Ĩ` — giving
//! `c(Ĩ) ≤ d/(d/ε) = ε`. The committed configuration for the original
//! slot is the sub-slot state with the smallest operating cost,
//! `x^C_t = x^B_{µ(t)}`, `µ(t) = argmin_{u ∈ U(t)} g̃_u(x^B_u)`; Lemma 14
//! shows this never costs more than `X^B` does on `Ĩ`.
//!
//! Practical guard: `ñ_t` can explode when idle costs dwarf switching
//! costs, so it is clamped to [`COptions::max_subslots`]; the *realized*
//! refinement constant `c(Ĩ)` is tracked and exposed so the effective
//! guarantee `2d+1+c(Ĩ)` is always reportable.

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::{Decoder, Encoder, SnapshotError};

use crate::algo_a::AOptions;
use crate::algo_b::BCore;
use crate::checkpoint::Checkpoint;
use crate::runner::OnlineAlgorithm;

/// Options for [`AlgorithmC`].
#[derive(Clone, Copy, Debug)]
pub struct COptions {
    /// Target excess `ε` over the `2d+1` base ratio.
    pub epsilon: f64,
    /// Upper bound on sub-slots per original slot (cost guard).
    pub max_subslots: usize,
    /// Prefix-DP options shared with Algorithms A/B.
    pub base: AOptions,
}

impl Default for COptions {
    fn default() -> Self {
        Self { epsilon: 0.5, max_subslots: 256, base: AOptions::default() }
    }
}

/// Algorithm C (deterministic, `(2d+1+ε)`-competitive, Theorem 15).
#[derive(Debug)]
pub struct AlgorithmC<O> {
    oracle: O,
    core: BCore,
    options: COptions,
    /// Per-type max of `l̃_{u,j}/β_j` over all processed sub-slots — the
    /// realized `c(Ĩ)` summands.
    realized_c: Vec<f64>,
    /// ñ_t chosen for each processed slot (for reporting).
    subslot_log: Vec<usize>,
}

impl<O: GtOracle + Sync> AlgorithmC<O> {
    /// Set up Algorithm C for an instance.
    ///
    /// # Panics
    /// Panics if `epsilon ≤ 0`.
    #[must_use]
    pub fn new(instance: &Instance, oracle: O, options: COptions) -> Self {
        assert!(options.epsilon > 0.0, "epsilon must be positive");
        Self {
            oracle,
            core: BCore::new(instance, options.base),
            options,
            realized_c: vec![0.0; instance.num_types()],
            subslot_log: Vec::new(),
        }
    }

    /// The realized refinement constant `c(Ĩ) = Σ_j max_u l̃_{u,j}/β_j`
    /// over the slots processed so far. Equals at most `ε` unless the
    /// sub-slot cap was hit.
    #[must_use]
    pub fn realized_c(&self) -> f64 {
        self.realized_c.iter().sum()
    }

    /// The effective competitive guarantee `2d + 1 + c(Ĩ)` so far.
    #[must_use]
    pub fn effective_guarantee(&self) -> f64 {
        2.0 * self.realized_c.len() as f64 + 1.0 + self.realized_c()
    }

    /// Sub-slot counts `ñ_t` chosen per processed slot.
    #[must_use]
    pub fn subslot_log(&self) -> &[usize] {
        &self.subslot_log
    }

    /// Pricing counters of the prefix solver's engine (`None` when
    /// [`AOptions::engine`] is off). With the engine on, every original
    /// slot is priced **once** however many sub-slots replay it: the
    /// `ñ_t` sub-slots of slot `t` share the pool key `(t, λ_t, grid)`,
    /// so `pricings` equals the number of distinct original slots — the
    /// property the pricing-count test asserts.
    #[must_use]
    pub fn engine_stats(&self) -> Option<rsz_offline::EngineStats> {
        self.core.prefix().engine_stats()
    }

    /// Share the engine's priced-slot pool with other controllers of
    /// the same instance shape. Returns `false` when the engine is off.
    pub fn share_pool(&mut self, pool: rsz_offline::SharedSlotPool) -> bool {
        self.core.share_pool(pool)
    }

    /// The operating cost `g_t(x)` used to rank sub-slot states: read
    /// from the engine's dense priced slot when available (the table was
    /// priced once for this slot and λ), falling back to the oracle for
    /// off-grid states or engine-off runs. Pool-resident values carry
    /// the documented `1e-9` sweep tolerance; the epsilon tie in
    /// [`AlgorithmC::decide`] absorbs it for exact and near-exact ties
    /// (gaps right at the window edge remain theoretically flippable —
    /// the parity property tests bound how often that matters: never
    /// observed).
    fn subslot_g(&self, instance: &Instance, t: usize, x: &Config) -> f64 {
        if let Some(priced) = self.core.prefix().last_priced() {
            if let Some(v) = priced.get(x) {
                return v;
            }
        }
        self.oracle.g(instance, t, x.counts())
    }

    /// The refinement width for slot `t`:
    /// `ñ_t = ⌈(d/ε)·max_j l_{t,j}/β_j⌉`, clamped to `[1, max_subslots]`.
    #[must_use]
    pub fn subslots_for(&self, instance: &Instance, t: usize) -> usize {
        let d = instance.num_types() as f64;
        let worst = (0..instance.num_types())
            .map(|j| {
                let beta = instance.switching_cost(j);
                if beta == 0.0 {
                    0.0
                } else {
                    instance.idle_cost(t, j) / beta
                }
            })
            .fold(0.0_f64, f64::max);
        let n = (d / self.options.epsilon * worst).ceil() as usize;
        n.clamp(1, self.options.max_subslots)
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for AlgorithmC<O> {
    fn name(&self) -> String {
        format!("Algorithm C(ε={})", self.options.epsilon)
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let n = self.subslots_for(instance, t);
        self.subslot_log.push(n);
        let scale = 1.0 / n as f64;
        let lambda = instance.load(t);
        for j in 0..instance.num_types() {
            let beta = instance.switching_cost(j);
            if beta > 0.0 {
                let ltilde = scale * instance.idle_cost(t, j);
                let r = ltilde / beta;
                if r > self.realized_c[j] {
                    self.realized_c[j] = r;
                }
            }
        }
        // Run B over the ñ_t sub-slots and keep the state with minimal
        // operating cost (g̃ is 1/ñ_t · g_t for every sub-slot, so the
        // unscaled g_t ranks identically). With the engine on, each
        // sub-slot after the first replays the slot's pooled pricing —
        // one transform+add pass, zero dispatch solves — and `g` is a
        // table lookup instead of an oracle call.
        let mut best: Option<(f64, Config)> = None;
        for _ in 0..n {
            let x = self.core.step(instance, &self.oracle, t, lambda, scale);
            let g = self.subslot_g(instance, t, &x);
            // Relative-epsilon comparison (not strict `<`): a value
            // within the tie window of the incumbent keeps the earlier
            // sub-slot. Exact ties and sub-window gaps then resolve
            // identically whether g came from the pooled sweep or the
            // oracle; only a true gap sitting within the sweep wobble
            // of the window edge could still flip µ(t).
            let better = match &best {
                None => true,
                Some((bg, _)) => g + 1e-9 * bg.abs().max(1.0) < *bg,
            };
            if better {
                best = Some((g, x));
            }
        }
        best.expect("ñ_t ≥ 1").1
    }
}

impl<O: GtOracle + Sync> Checkpoint for AlgorithmC<O> {
    fn algo_tag(&self) -> &'static str {
        "algo-c"
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.core.save_state(enc);
        enc.put_usize(self.realized_c.len());
        for &c in &self.realized_c {
            enc.put_f64(c);
        }
        enc.put_usize(self.subslot_log.len());
        for &n in &self.subslot_log {
            enc.put_usize(n);
        }
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.core.restore_state(instance, dec)?;
        let d = instance.num_types();
        if dec.take_usize()? != d {
            return Err(SnapshotError::Corrupt("realized-c vector has the wrong dimension"));
        }
        let mut realized_c = Vec::with_capacity(d);
        for _ in 0..d {
            realized_c.push(dec.take_f64()?);
        }
        let n = dec.take_usize()?;
        if n > instance.horizon() {
            return Err(SnapshotError::Corrupt("sub-slot log exceeds the horizon"));
        }
        let mut subslot_log = Vec::with_capacity(n);
        for _ in 0..n {
            let c = dec.take_usize()?;
            if c == 0 || c > self.options.max_subslots {
                return Err(SnapshotError::Corrupt("sub-slot count out of range"));
            }
            subslot_log.push(c);
        }
        self.realized_c = realized_c;
        self.subslot_log = subslot_log;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo_b::c_constant;
    use crate::runner::run;
    use rsz_core::{CostModel, CostSpec, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    fn time_varying_instance() -> Instance {
        let price = vec![2.0, 0.5, 3.0, 1.0, 2.5, 0.5, 1.5, 2.0];
        Instance::builder()
            .server_type(ServerType::with_spec(
                "a",
                3,
                5.0,
                1.0,
                CostSpec::scaled(CostModel::constant(1.0), price),
            ))
            .loads(vec![1.0, 3.0, 0.0, 2.0, 1.0, 0.0, 3.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_and_within_theorem_15_bound() {
        let inst = time_varying_instance();
        let oracle = Dispatcher::new();
        for eps in [0.25, 0.5, 1.0] {
            let mut c =
                AlgorithmC::new(&inst, oracle, COptions { epsilon: eps, ..Default::default() });
            let online = run(&inst, &mut c, &oracle);
            online.schedule.check_feasible(&inst).unwrap();
            let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
            let d = inst.num_types() as f64;
            let bound = (2.0 * d + 1.0 + eps) * opt.cost;
            assert!(
                online.cost() <= bound + 1e-9,
                "eps={eps}: C cost {} vs bound {bound}",
                online.cost()
            );
            assert!(c.realized_c() <= eps + 1e-12, "realized c {}", c.realized_c());
        }
    }

    #[test]
    fn subslot_count_matches_formula() {
        let inst = time_varying_instance();
        let c = AlgorithmC::new(
            &inst,
            Dispatcher::new(),
            COptions { epsilon: 0.5, ..Default::default() },
        );
        // slot 0: d=1, max l/β = 2/5 → ⌈(1/0.5)·0.4⌉ = ⌈0.8⌉ = 1
        assert_eq!(c.subslots_for(&inst, 0), 1);
        // slot 2: l=3 → ⌈2·0.6⌉ = 2
        assert_eq!(c.subslots_for(&inst, 2), 2);
    }

    #[test]
    fn cap_limits_subslots() {
        let inst = time_varying_instance();
        let c = AlgorithmC::new(
            &inst,
            Dispatcher::new(),
            COptions { epsilon: 1e-4, max_subslots: 8, ..Default::default() },
        );
        assert_eq!(c.subslots_for(&inst, 2), 8);
    }

    #[test]
    fn refinement_beats_plain_b_constant() {
        let inst = time_varying_instance();
        let oracle = Dispatcher::new();
        let mut c =
            AlgorithmC::new(&inst, oracle, COptions { epsilon: 0.25, ..Default::default() });
        let _ = run(&inst, &mut c, &oracle);
        assert!(
            c.realized_c() < c_constant(&inst),
            "refined constant {} should undercut c(I) = {}",
            c.realized_c(),
            c_constant(&inst)
        );
    }

    #[test]
    fn engine_prices_each_original_slot_exactly_once() {
        // ε = 0.05 pushes ñ_t well above 1 on most slots; with the
        // engine on, all ñ_t sub-slots of an original slot share one
        // (t, λ, grid) pool entry, so the pricing counter must equal the
        // horizon — the whole point of the sub-slot replay.
        let inst = time_varying_instance();
        let oracle = Dispatcher::new();
        let mut c = AlgorithmC::new(
            &inst,
            oracle,
            COptions { epsilon: 0.05, base: AOptions::engined(), ..Default::default() },
        );
        let outcome = run(&inst, &mut c, &oracle);
        outcome.schedule.check_feasible(&inst).unwrap();
        let total_subslots: usize = c.subslot_log().iter().sum();
        assert!(total_subslots > inst.horizon(), "refinement must actually refine");
        let stats = c.engine_stats().expect("engine on");
        assert_eq!(
            stats.pricings,
            inst.horizon() as u64,
            "each original slot priced exactly once regardless of ñ_t"
        );
        assert_eq!(stats.pool_hits, (total_subslots - inst.horizon()) as u64);
    }

    #[test]
    fn engine_and_legacy_commit_identical_schedules() {
        let inst = time_varying_instance();
        let oracle = Dispatcher::new();
        for eps in [0.25, 0.5] {
            let mut legacy =
                AlgorithmC::new(&inst, oracle, COptions { epsilon: eps, ..Default::default() });
            let want = run(&inst, &mut legacy, &oracle);
            let mut engined = AlgorithmC::new(
                &inst,
                oracle,
                COptions { epsilon: eps, base: AOptions::engined(), ..Default::default() },
            );
            let got = run(&inst, &mut engined, &oracle);
            assert_eq!(want.schedule, got.schedule, "eps={eps}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        let inst = time_varying_instance();
        let _ = AlgorithmC::new(
            &inst,
            Dispatcher::new(),
            COptions { epsilon: 0.0, ..Default::default() },
        );
    }
}

//! Algorithm A — time-independent operating costs (Section 2).
//!
//! At every slot the algorithm computes `x̂^t_t`, the final configuration
//! of an optimal schedule for the prefix instance `I_t`, and raises its
//! own active counts to at least that level. Every server it powers up
//! runs for **exactly** `t̄_j = ⌈β_j / f_j(0)⌉` slots and is then shut
//! down, used or not — the ski-rental rule: once the accumulated idle
//! cost would exceed the switching cost, stop paying it.
//!
//! Theorem 8: the resulting schedule is `(2d+1)`-competitive. When the
//! costs are also load-independent the load-dependent term vanishes and
//! the ratio is the optimal `2d` (Corollary 9).
//!
//! Pseudocode (paper, Algorithm 1):
//!
//! ```text
//! for t = 1..T:
//!   compute x̂^t  (prefix optimum)
//!   for j = 1..d:
//!     x_j -= w_{t−t̄_j, j}              // retire expired servers
//!     if x_j ≤ x̂^t_j:
//!       w_{t,j} = x̂^t_j − x_j; x_j = x̂^t_j   // power up to the prefix optimum
//! ```

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::{DpOptions, GridMode, PrefixDp};

use crate::runner::OnlineAlgorithm;

/// Options for [`AlgorithmA`].
#[derive(Clone, Copy, Debug)]
pub struct AOptions {
    /// Grid used by the internal prefix-optimal solver. `Full` gives the
    /// paper's algorithm; `Gamma(γ)` trades the guarantee for speed on
    /// large fleets (the prefix optima become (2γ−1)-approximate).
    pub grid: GridMode,
    /// Parallelize the prefix DP's dispatch solves.
    pub parallel: bool,
    /// Explicit worker count for the prefix DP's fills (`None` = derive
    /// from `parallel`); see [`DpOptions::threads`].
    pub threads: Option<usize>,
    /// Price prefix-DP slots through the warm-started sweep path; see
    /// [`DpOptions::pipeline`].
    pub pipeline: bool,
}

impl Default for AOptions {
    fn default() -> Self {
        Self { grid: GridMode::Full, parallel: false, threads: None, pipeline: false }
    }
}

impl AOptions {
    /// The [`DpOptions`] these online options induce for the internal
    /// prefix solver.
    #[must_use]
    pub fn dp_options(&self) -> DpOptions {
        DpOptions {
            grid: self.grid,
            parallel: self.parallel,
            pipeline: self.pipeline,
            threads: self.threads,
            ..DpOptions::default()
        }
    }
}

/// Algorithm A (deterministic, `(2d+1)`-competitive).
#[derive(Debug)]
pub struct AlgorithmA<O> {
    oracle: O,
    prefix: PrefixDp,
    /// Current active servers per type.
    x: Vec<u32>,
    /// Power-up log: `w[t][j]` servers of type `j` powered up at slot `t`.
    w: Vec<Vec<u32>>,
    /// Deterministic runtimes `t̄_j`; `None` = never power down
    /// (`f_j(0) = 0`, idling is free).
    tbar: Vec<Option<usize>>,
}

impl<O: GtOracle + Sync> AlgorithmA<O> {
    /// Set up Algorithm A for an instance.
    ///
    /// # Panics
    /// Panics if the instance has time-dependent operating costs — that
    /// is Algorithm B/C territory (Section 3).
    #[must_use]
    pub fn new(instance: &Instance, oracle: O, options: AOptions) -> Self {
        assert!(
            instance.is_time_independent(),
            "Algorithm A requires time-independent operating costs; use Algorithm B/C"
        );
        let d = instance.num_types();
        let tbar = (0..d)
            .map(|j| {
                let idle = instance.idle_cost(0, j);
                let beta = instance.switching_cost(j);
                if idle <= 0.0 {
                    None // idling is free: the ski-rental threshold is never reached
                } else {
                    // ⌈β/l⌉ slots, at least one (a server always lives
                    // through the slot it was powered up for).
                    Some(((beta / idle).ceil() as usize).max(1))
                }
            })
            .collect();
        Self {
            oracle,
            prefix: PrefixDp::new(instance, options.dp_options()),
            x: vec![0; d],
            w: Vec::new(),
            tbar,
        }
    }

    /// The deterministic runtime `t̄_j` of servers of type `j`
    /// (`None` = unbounded).
    #[must_use]
    pub fn runtime(&self, j: usize) -> Option<usize> {
        self.tbar[j]
    }

    /// The power-up log `w` (`w[t][j]` = servers of type `j` powered up at
    /// slot `t`) — the raw material of the block decomposition
    /// ([`crate::blocks`]).
    #[must_use]
    pub fn power_up_log(&self) -> &[Vec<u32>] {
        &self.w
    }

    /// The prefix-optimal target `x̂^t_t` most recently computed.
    #[must_use]
    pub fn prefix_opt_cost(&self) -> f64 {
        self.prefix.prefix_opt_cost()
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for AlgorithmA<O> {
    fn name(&self) -> String {
        "Algorithm A".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        debug_assert_eq!(t, self.w.len(), "slots must arrive in order");
        let d = self.x.len();
        let xhat = self.prefix.step(instance, &self.oracle, t);
        let mut w_t = vec![0u32; d];
        #[allow(clippy::needless_range_loop)] // j indexes x, w_t, tbar and xhat
        for j in 0..d {
            // Retire servers whose t̄_j-slot lifetime has expired.
            if let Some(tb) = self.tbar[j] {
                if t >= tb {
                    let expired = self.w[t - tb][j];
                    debug_assert!(self.x[j] >= expired);
                    self.x[j] -= expired;
                }
            }
            // Raise to the prefix optimum.
            if self.x[j] <= xhat.count(j) {
                w_t[j] = xhat.count(j) - self.x[j];
                self.x[j] = xhat.count(j);
            }
        }
        self.w.push(w_t);
        Config::new(self.x.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, run_with_prefix_revelation};
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    fn simple(loads: Vec<f64>, beta: f64, idle: f64) -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 4, beta, 1.0, CostModel::constant(idle)))
            .loads(loads)
            .build()
            .unwrap()
    }

    #[test]
    fn runtime_is_ski_rental_threshold() {
        let inst = simple(vec![1.0], 5.0, 2.0);
        let a = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
        assert_eq!(a.runtime(0), Some(3)); // ⌈5/2⌉
        let inst = simple(vec![1.0], 5.0, 0.0);
        let a = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
        assert_eq!(a.runtime(0), None);
    }

    #[test]
    fn dominates_prefix_optimum_and_is_feasible() {
        let inst = simple(vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 0.0, 1.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut a, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }

    #[test]
    fn servers_run_exactly_tbar_slots() {
        // Single spike: prefix optimum powers up then drops to 0; A keeps
        // the servers for exactly t̄ = ⌈β/l⌉ = 3 slots.
        let inst = simple(vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut a, &oracle);
        assert_eq!(
            run.schedule.configs().iter().map(|c| c.count(0)).collect::<Vec<_>>(),
            vec![2, 2, 2, 0, 0, 0]
        );
    }

    #[test]
    fn competitive_bound_holds() {
        let oracle = Dispatcher::new();
        let loads = vec![1.0, 4.0, 0.0, 2.0, 4.0, 0.0, 0.0, 3.0, 1.0, 0.0];
        let inst = Instance::builder()
            .server_type(ServerType::new("s", 4, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("f", 2, 6.0, 3.0, CostModel::linear(1.0, 0.5)))
            .loads(loads)
            .build()
            .unwrap();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let online = run(&inst, &mut a, &oracle);
        let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * 2.0 + 1.0) * opt.cost;
        assert!(
            online.cost() <= bound + 1e-9,
            "A cost {} exceeds (2d+1)·OPT = {bound}",
            online.cost()
        );
    }

    #[test]
    fn is_genuinely_online() {
        let inst = simple(vec![1.0, 3.0, 0.0, 2.0, 4.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a1 = AlgorithmA::new(&inst, oracle, AOptions::default());
        let full = run(&inst, &mut a1, &oracle);
        let mut a2 = AlgorithmA::new(&inst, oracle, AOptions::default());
        let revealed = run_with_prefix_revelation(&inst, &mut a2, &oracle);
        assert_eq!(full.schedule, revealed.schedule);
    }

    #[test]
    #[should_panic(expected = "time-independent")]
    fn rejects_time_dependent_costs() {
        let spec = rsz_core::CostSpec::scaled(CostModel::constant(1.0), vec![1.0, 2.0]);
        let inst = Instance::builder()
            .server_type(ServerType::with_spec("a", 1, 1.0, 1.0, spec))
            .loads(vec![0.5, 0.5])
            .build()
            .unwrap();
        let _ = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
    }

    #[test]
    fn gamma_backend_still_feasible() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 50, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .loads(vec![10.0, 45.0, 3.0, 20.0, 0.0, 50.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(
            &inst,
            oracle,
            AOptions { grid: GridMode::Gamma(1.5), parallel: false, ..AOptions::default() },
        );
        let run = run(&inst, &mut a, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }
}

//! Algorithm A — time-independent operating costs (Section 2).
//!
//! At every slot the algorithm computes `x̂^t_t`, the final configuration
//! of an optimal schedule for the prefix instance `I_t`, and raises its
//! own active counts to at least that level. Every server it powers up
//! runs for **exactly** `t̄_j = ⌈β_j / f_j(0)⌉` slots and is then shut
//! down, used or not — the ski-rental rule: once the accumulated idle
//! cost would exceed the switching cost, stop paying it.
//!
//! Theorem 8: the resulting schedule is `(2d+1)`-competitive. When the
//! costs are also load-independent the load-dependent term vanishes and
//! the ratio is the optimal `2d` (Corollary 9).
//!
//! Pseudocode (paper, Algorithm 1):
//!
//! ```text
//! for t = 1..T:
//!   compute x̂^t  (prefix optimum)
//!   for j = 1..d:
//!     x_j -= w_{t−t̄_j, j}              // retire expired servers
//!     if x_j ≤ x̂^t_j:
//!       w_{t,j} = x̂^t_j − x_j; x_j = x̂^t_j   // power up to the prefix optimum
//! ```

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::{Decoder, DpOptions, Encoder, GridMode, PrefixDp, SnapshotError};

use crate::checkpoint::{codec, Checkpoint};
use crate::runner::OnlineAlgorithm;

/// Options for [`AlgorithmA`].
#[derive(Clone, Copy, Debug)]
pub struct AOptions {
    /// Grid used by the internal prefix-optimal solver. `Full` gives the
    /// paper's algorithm; `Gamma(γ)` trades the guarantee for speed on
    /// large fleets (the prefix optima become (2γ−1)-approximate).
    pub grid: GridMode,
    /// Parallelize the prefix DP's dispatch solves.
    pub parallel: bool,
    /// Explicit worker count for the prefix DP's fills (`None` = derive
    /// from `parallel`); see [`DpOptions::threads`].
    pub threads: Option<usize>,
    /// Price prefix-DP slots through the warm-started sweep path; see
    /// [`DpOptions::pipeline`].
    pub pipeline: bool,
    /// Run the prefix solver through the online decision engine (dense
    /// priced-slot pool, allocation-free stepping); see
    /// [`DpOptions::engine`].
    pub engine: bool,
    /// Retain the **full** per-slot power-up log `w` (`O(T·d)` memory)
    /// instead of only the ring of rows still inside a retirement
    /// window. Needed by the block decomposition ([`crate::blocks`]);
    /// off by default so long-horizon controllers run in `O(max t̄·d)`.
    pub keep_power_up_log: bool,
    /// Priced-slot pool retention bound for the engine (`None` = the
    /// engine default). Tiny values force constant re-pricing — the
    /// chaos suite's eviction storm — without ever changing decisions.
    pub pool_capacity: Option<usize>,
}

impl Default for AOptions {
    fn default() -> Self {
        Self {
            grid: GridMode::Full,
            parallel: false,
            threads: None,
            pipeline: false,
            engine: false,
            keep_power_up_log: false,
            pool_capacity: None,
        }
    }
}

impl AOptions {
    /// The [`DpOptions`] these online options induce for the internal
    /// prefix solver.
    #[must_use]
    pub fn dp_options(&self) -> DpOptions {
        DpOptions {
            grid: self.grid,
            parallel: self.parallel,
            pipeline: self.pipeline,
            threads: self.threads,
            engine: self.engine,
            pool_capacity: self.pool_capacity,
            ..DpOptions::default()
        }
    }

    /// The default options with the online decision engine switched on.
    #[must_use]
    pub fn engined() -> Self {
        Self { engine: true, ..Self::default() }
    }
}

/// Algorithm A (deterministic, `(2d+1)`-competitive).
#[derive(Debug)]
pub struct AlgorithmA<O> {
    oracle: O,
    prefix: PrefixDp,
    /// Current active servers per type.
    x: Vec<u32>,
    /// Ring of the most recent power-up rows: `ring[t mod cap][j]`
    /// servers of type `j` powered up at slot `t`, with
    /// `cap = max_j t̄_j` — the only rows a future retirement can still
    /// read. Empty when every type idles for free (no retirements ever).
    ring: Vec<Vec<u32>>,
    /// The full log `w[t][j]`, retained only under
    /// [`AOptions::keep_power_up_log`] (the block decomposition needs
    /// all of history; the controller itself does not).
    full_log: Option<Vec<Vec<u32>>>,
    /// Scratch copy of the latest prefix target.
    target: Vec<u32>,
    /// Deterministic runtimes `t̄_j`; `None` = never power down
    /// (`f_j(0) = 0`, idling is free).
    tbar: Vec<Option<usize>>,
    /// Slots processed so far.
    steps: usize,
}

impl<O: GtOracle + Sync> AlgorithmA<O> {
    /// Set up Algorithm A for an instance.
    ///
    /// # Panics
    /// Panics if the instance has time-dependent operating costs — that
    /// is Algorithm B/C territory (Section 3).
    #[must_use]
    pub fn new(instance: &Instance, oracle: O, options: AOptions) -> Self {
        assert!(
            instance.is_time_independent(),
            "Algorithm A requires time-independent operating costs; use Algorithm B/C"
        );
        let d = instance.num_types();
        let tbar = (0..d)
            .map(|j| {
                let idle = instance.idle_cost(0, j);
                let beta = instance.switching_cost(j);
                if idle <= 0.0 {
                    None // idling is free: the ski-rental threshold is never reached
                } else {
                    // ⌈β/l⌉ slots, at least one (a server always lives
                    // through the slot it was powered up for).
                    Some(((beta / idle).ceil() as usize).max(1))
                }
            })
            .collect();
        let tbar: Vec<Option<usize>> = tbar;
        let ring_cap = tbar.iter().flatten().copied().max().unwrap_or(0);
        Self {
            oracle,
            prefix: PrefixDp::new(instance, options.dp_options()),
            x: vec![0; d],
            ring: vec![vec![0; d]; ring_cap],
            full_log: options.keep_power_up_log.then(Vec::new),
            target: Vec::with_capacity(d),
            tbar,
            steps: 0,
        }
    }

    /// The deterministic runtime `t̄_j` of servers of type `j`
    /// (`None` = unbounded).
    #[must_use]
    pub fn runtime(&self, j: usize) -> Option<usize> {
        self.tbar[j]
    }

    /// The full power-up log `w` (`w[t][j]` = servers of type `j` powered
    /// up at slot `t`) — the raw material of the block decomposition
    /// ([`crate::blocks`]). `None` unless the run was started with
    /// [`AOptions::keep_power_up_log`]: by default only the ring of rows
    /// inside a retirement window is retained, so long-horizon
    /// controllers don't grow memory with `T`.
    #[must_use]
    pub fn power_up_log(&self) -> Option<&[Vec<u32>]> {
        self.full_log.as_deref()
    }

    /// Number of power-up rows currently held in memory: `max_j t̄_j`
    /// ring rows, plus the full history iff it was opted into. The
    /// long-horizon memory test pins this.
    #[must_use]
    pub fn retained_log_rows(&self) -> usize {
        self.ring.len() + self.full_log.as_ref().map_or(0, Vec::len)
    }

    /// The prefix-optimal target `x̂^t_t` most recently computed.
    #[must_use]
    pub fn prefix_opt_cost(&self) -> f64 {
        self.prefix.prefix_opt_cost()
    }

    /// Pricing counters of the prefix solver's engine (`None` when the
    /// engine is off).
    #[must_use]
    pub fn engine_stats(&self) -> Option<rsz_offline::EngineStats> {
        self.prefix.engine_stats()
    }

    /// Share the engine's priced-slot pool with other controllers of
    /// the same instance shape (see [`rsz_offline::SharedSlotPool`]).
    /// Returns `false` when the engine is off.
    pub fn share_pool(&mut self, pool: rsz_offline::SharedSlotPool) -> bool {
        self.prefix.share_pool(pool)
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for AlgorithmA<O> {
    fn name(&self) -> String {
        "Algorithm A".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        debug_assert_eq!(t, self.steps, "slots must arrive in order");
        let d = self.x.len();
        {
            let Self { prefix, target, oracle, .. } = self;
            let xhat = prefix.step_counts(instance, oracle, t);
            target.clear();
            target.extend_from_slice(xhat);
        }
        let cap = self.ring.len();
        // Retire servers whose t̄_j-slot lifetime has expired. All reads
        // happen before the ring slot for `t` is overwritten below: the
        // oldest readable row, `t − cap`, lives in exactly that slot.
        #[allow(clippy::needless_range_loop)] // j indexes x, tbar and target
        for j in 0..d {
            if let Some(tb) = self.tbar[j] {
                if t >= tb {
                    let expired = self.ring[(t - tb) % cap][j];
                    debug_assert!(self.x[j] >= expired);
                    self.x[j] -= expired;
                }
            }
        }
        // Raise to the prefix optimum, recording this slot's power-ups.
        if cap > 0 {
            let row = &mut self.ring[t % cap];
            #[allow(clippy::needless_range_loop)] // j indexes x, row and target
            for j in 0..d {
                if self.x[j] <= self.target[j] {
                    row[j] = self.target[j] - self.x[j];
                    self.x[j] = self.target[j];
                } else {
                    row[j] = 0;
                }
            }
            if let Some(log) = self.full_log.as_mut() {
                log.push(row.clone());
            }
        } else {
            // No type ever retires: nothing reads the ring, so a row is
            // materialized only for the opt-in full log.
            let mut row = self.full_log.is_some().then(|| vec![0u32; d]);
            #[allow(clippy::needless_range_loop)] // j indexes x and target
            for j in 0..d {
                if self.x[j] <= self.target[j] {
                    if let Some(row) = row.as_mut() {
                        row[j] = self.target[j] - self.x[j];
                    }
                    self.x[j] = self.target[j];
                }
            }
            if let (Some(log), Some(row)) = (self.full_log.as_mut(), row) {
                log.push(row);
            }
        }
        self.steps += 1;
        Config::new(self.x.clone())
    }
}

impl<O: GtOracle + Sync> Checkpoint for AlgorithmA<O> {
    fn algo_tag(&self) -> &'static str {
        "algo-a"
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.prefix.save_state(enc);
        enc.put_usize(self.steps);
        codec::put_u32s(enc, &self.x);
        enc.put_usize(self.ring.len());
        for row in &self.ring {
            codec::put_u32s(enc, row);
        }
        match &self.full_log {
            None => enc.put_u8(0),
            Some(log) => {
                enc.put_u8(1);
                enc.put_usize(log.len());
                for row in log {
                    codec::put_u32s(enc, row);
                }
            }
        }
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.prefix.restore_state(instance, dec)?;
        let steps = dec.take_usize()?;
        if steps > instance.horizon() {
            return Err(SnapshotError::Corrupt("step counter exceeds the horizon"));
        }
        let d = instance.num_types();
        let x = codec::take_u32s(dec, d)?;
        if x.len() != d {
            return Err(SnapshotError::Corrupt("active-count vector has the wrong dimension"));
        }
        let rows = dec.take_usize()?;
        if rows != self.ring.len() {
            return Err(SnapshotError::Corrupt("power-up ring size does not match the instance"));
        }
        let mut ring = Vec::with_capacity(rows);
        for _ in 0..rows {
            let row = codec::take_u32s(dec, d)?;
            if row.len() != d {
                return Err(SnapshotError::Corrupt("power-up row has the wrong dimension"));
            }
            ring.push(row);
        }
        let full_log = match dec.take_u8()? {
            0 => {
                if self.full_log.is_some() {
                    return Err(SnapshotError::Corrupt(
                        "snapshot was taken without the power-up log",
                    ));
                }
                None
            }
            1 => {
                if self.full_log.is_none() {
                    return Err(SnapshotError::Corrupt("snapshot was taken with the power-up log"));
                }
                let n = dec.take_usize()?;
                if n != steps {
                    return Err(SnapshotError::Corrupt(
                        "power-up log length does not match the step counter",
                    ));
                }
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = codec::take_u32s(dec, d)?;
                    if row.len() != d {
                        return Err(SnapshotError::Corrupt("power-up row has the wrong dimension"));
                    }
                    log.push(row);
                }
                Some(log)
            }
            _ => return Err(SnapshotError::Corrupt("unknown option tag")),
        };
        self.x = x;
        self.ring = ring;
        self.full_log = full_log;
        self.steps = steps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, run_with_prefix_revelation};
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    fn simple(loads: Vec<f64>, beta: f64, idle: f64) -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 4, beta, 1.0, CostModel::constant(idle)))
            .loads(loads)
            .build()
            .unwrap()
    }

    #[test]
    fn runtime_is_ski_rental_threshold() {
        let inst = simple(vec![1.0], 5.0, 2.0);
        let a = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
        assert_eq!(a.runtime(0), Some(3)); // ⌈5/2⌉
        let inst = simple(vec![1.0], 5.0, 0.0);
        let a = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
        assert_eq!(a.runtime(0), None);
    }

    #[test]
    fn dominates_prefix_optimum_and_is_feasible() {
        let inst = simple(vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 0.0, 1.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut a, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }

    #[test]
    fn servers_run_exactly_tbar_slots() {
        // Single spike: prefix optimum powers up then drops to 0; A keeps
        // the servers for exactly t̄ = ⌈β/l⌉ = 3 slots.
        let inst = simple(vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut a, &oracle);
        assert_eq!(
            run.schedule.configs().iter().map(|c| c.count(0)).collect::<Vec<_>>(),
            vec![2, 2, 2, 0, 0, 0]
        );
    }

    #[test]
    fn competitive_bound_holds() {
        let oracle = Dispatcher::new();
        let loads = vec![1.0, 4.0, 0.0, 2.0, 4.0, 0.0, 0.0, 3.0, 1.0, 0.0];
        let inst = Instance::builder()
            .server_type(ServerType::new("s", 4, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("f", 2, 6.0, 3.0, CostModel::linear(1.0, 0.5)))
            .loads(loads)
            .build()
            .unwrap();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let online = run(&inst, &mut a, &oracle);
        let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * 2.0 + 1.0) * opt.cost;
        assert!(
            online.cost() <= bound + 1e-9,
            "A cost {} exceeds (2d+1)·OPT = {bound}",
            online.cost()
        );
    }

    #[test]
    fn is_genuinely_online() {
        let inst = simple(vec![1.0, 3.0, 0.0, 2.0, 4.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a1 = AlgorithmA::new(&inst, oracle, AOptions::default());
        let full = run(&inst, &mut a1, &oracle);
        let mut a2 = AlgorithmA::new(&inst, oracle, AOptions::default());
        let revealed = run_with_prefix_revelation(&inst, &mut a2, &oracle);
        assert_eq!(full.schedule, revealed.schedule);
    }

    #[test]
    #[should_panic(expected = "time-independent")]
    fn rejects_time_dependent_costs() {
        let spec = rsz_core::CostSpec::scaled(CostModel::constant(1.0), vec![1.0, 2.0]);
        let inst = Instance::builder()
            .server_type(ServerType::with_spec("a", 1, 1.0, 1.0, spec))
            .loads(vec![0.5, 0.5])
            .build()
            .unwrap();
        let _ = AlgorithmA::new(&inst, Dispatcher::new(), AOptions::default());
    }

    #[test]
    fn long_horizon_runs_do_not_grow_the_power_up_log() {
        // t̄ = ⌈3/1⌉ = 3: however long the horizon, only max t̄ = 3 ring
        // rows may stay resident — the O(T·d) log is opt-in now.
        let loads: Vec<f64> = (0..2000).map(|t| f64::from((t % 5) as u32)).collect();
        let inst = simple(loads, 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let outcome = run(&inst, &mut a, &oracle);
        outcome.schedule.check_feasible(&inst).unwrap();
        assert_eq!(a.retained_log_rows(), 3, "ring must hold exactly max t̄ rows");
        assert!(a.power_up_log().is_none(), "full log must be opt-in");
    }

    #[test]
    fn opt_in_log_matches_ring_driven_schedule() {
        // The ring-driven controller and the full-log variant decide
        // identically, and the opted-in log records one row per slot
        // with exactly the power-ups the schedule realizes.
        let loads = vec![1.0, 3.0, 0.0, 2.0, 4.0, 0.0, 1.0, 2.0];
        let inst = simple(loads, 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut plain = AlgorithmA::new(&inst, oracle, AOptions::default());
        let want = run(&inst, &mut plain, &oracle);
        let mut logged = AlgorithmA::new(
            &inst,
            oracle,
            AOptions { keep_power_up_log: true, ..AOptions::default() },
        );
        let got = run(&inst, &mut logged, &oracle);
        assert_eq!(want.schedule, got.schedule);
        let log = logged.power_up_log().expect("opted in");
        assert_eq!(log.len(), inst.horizon());
        assert_eq!(logged.retained_log_rows(), 3 + inst.horizon());
        // The retained log is the real block-decomposition substrate:
        // Lemma 7's partition invariant must hold on it.
        let w: Vec<u32> = log.iter().map(|row| row[0]).collect();
        let tbar = logged.runtime(0).expect("positive idle cost");
        let dec = crate::blocks::decompose(&w, tbar);
        assert!(dec.is_partition());
        assert!(dec.spacing_at_least(tbar));
    }

    #[test]
    fn engine_mode_decides_identically() {
        let inst = simple(vec![1.0, 3.0, 0.0, 2.0, 4.0, 0.0, 1.0, 2.0], 3.0, 1.0);
        let oracle = Dispatcher::new();
        let mut plain = AlgorithmA::new(&inst, oracle, AOptions::default());
        let want = run(&inst, &mut plain, &oracle);
        let mut engined = AlgorithmA::new(&inst, oracle, AOptions::engined());
        let got = run(&inst, &mut engined, &oracle);
        assert_eq!(want.schedule, got.schedule);
        let stats = engined.engine_stats().expect("engine on");
        assert!(stats.pricings > 0);
        assert!(plain.engine_stats().is_none());
    }

    #[test]
    fn gamma_backend_still_feasible() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 50, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .loads(vec![10.0, 45.0, 3.0, 20.0, 0.0, 50.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let mut a = AlgorithmA::new(
            &inst,
            oracle,
            AOptions { grid: GridMode::Gamma(1.5), parallel: false, ..AOptions::default() },
        );
        let run = run(&inst, &mut a, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }
}

//! Practical baselines: the policies a data-center operator would deploy
//! without this paper.
//!
//! These are the comparison points of the motivation experiments
//! (`exp_baselines`): the paper's introduction argues that servers idle
//! at ~half peak power and that naive policies either waste energy
//! (always-on, static over-provisioning) or thrash switches (purely
//! reactive). None of these carries a competitive guarantee.

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::brute::enumerate_configs;
use rsz_offline::GridMode;

use crate::runner::OnlineAlgorithm;

/// Everything on, always: the no-management baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllOn;

impl OnlineAlgorithm for AllOn {
    fn name(&self) -> String {
        "all-on".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        Config::new(instance.server_counts_at(t))
    }
}

/// Myopic best response: pick the configuration minimizing
/// `g_t(x) [+ switching from the previous state]`, ignoring the future.
///
/// With `count_switching = false` this is the purely reactive policy
/// (provision exactly for now, drop everything idle) — the thrashing
/// extreme. With `true` it is one-step lookahead.
#[derive(Debug)]
pub struct Myopic<O> {
    oracle: O,
    /// Include the power-up cost from the previous state in the argmin.
    pub count_switching: bool,
    /// Grid over which configurations are enumerated (Full for small
    /// fleets, Gamma for large).
    pub grid: GridMode,
    prev: Option<Config>,
}

impl<O: GtOracle + Sync> Myopic<O> {
    /// A myopic policy over the full grid.
    #[must_use]
    pub fn new(oracle: O, count_switching: bool) -> Self {
        Self { oracle, count_switching, grid: GridMode::Full, prev: None }
    }

    /// Restrict the per-slot search to a γ-grid (for large fleets).
    #[must_use]
    pub fn with_grid(mut self, grid: GridMode) -> Self {
        self.grid = grid;
        self
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for Myopic<O> {
    fn name(&self) -> String {
        if self.count_switching {
            "myopic+switch".into()
        } else {
            "reactive".into()
        }
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let d = instance.num_types();
        let zero = Config::zeros(d);
        let prev = self.prev.clone().unwrap_or_else(|| zero.clone());
        let mut best: Option<(f64, u64, Config)> = None;
        for_each_grid_config(instance, t, self.grid, |x| {
            let mut cost = self.oracle.g(instance, t, x.counts());
            if !cost.is_finite() {
                return;
            }
            if self.count_switching {
                cost += prev.switching_cost_to(x, instance.types());
            }
            let tot = x.total();
            let better = match &best {
                None => true,
                Some((bc, bt, _)) => cost < *bc || (cost == *bc && tot < *bt),
            };
            if better {
                best = Some((cost, tot, x.clone()));
            }
        });
        let choice = best.expect("instance is feasible at every slot").2;
        self.prev = Some(choice.clone());
        choice
    }
}

/// Reactive provisioning with per-type power-down timeouts — the policy
/// real cluster managers ship (e.g. autoscaler cool-down): serve the
/// current load with the cheapest configuration, but keep recently needed
/// servers warm for `timeout_j` extra slots.
#[derive(Debug)]
pub struct ReactiveTimeout<O> {
    oracle: O,
    /// Idle slots a type-`j` server survives after last being needed.
    pub timeouts: Vec<usize>,
    grid: GridMode,
    /// History of needed counts per type (for the sliding-window max).
    needed: Vec<Vec<u32>>,
}

impl<O: GtOracle + Sync> ReactiveTimeout<O> {
    /// Reactive policy with the given per-type timeouts.
    #[must_use]
    pub fn new(oracle: O, timeouts: Vec<usize>) -> Self {
        Self { oracle, timeouts, grid: GridMode::Full, needed: Vec::new() }
    }

    /// Ski-rental-informed timeouts `⌈β_j / l_j(0)⌉` (what the paper's
    /// Algorithm A proves out), making this baseline "timeout done right,
    /// tracking done naively".
    #[must_use]
    pub fn with_ski_rental_timeouts(oracle: O, instance: &Instance) -> Self {
        let timeouts = (0..instance.num_types())
            .map(|j| {
                let idle = instance.idle_cost(0, j);
                if idle <= 0.0 {
                    usize::MAX / 2
                } else {
                    (instance.switching_cost(j) / idle).ceil() as usize
                }
            })
            .collect();
        Self::new(oracle, timeouts)
    }

    /// Restrict the per-slot search to a γ-grid (for large fleets).
    #[must_use]
    pub fn with_grid(mut self, grid: GridMode) -> Self {
        self.grid = grid;
        self
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for ReactiveTimeout<O> {
    fn name(&self) -> String {
        "reactive+timeout".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let d = instance.num_types();
        // Cheapest configuration for the current slot alone.
        let mut best: Option<(f64, u64, Config)> = None;
        for_each_grid_config(instance, t, self.grid, |x| {
            let cost = self.oracle.g(instance, t, x.counts());
            if !cost.is_finite() {
                return;
            }
            let tot = x.total();
            let better = match &best {
                None => true,
                Some((bc, bt, _)) => cost < *bc || (cost == *bc && tot < *bt),
            };
            if better {
                best = Some((cost, tot, x.clone()));
            }
        });
        let needed_now = best.expect("instance is feasible at every slot").2;
        self.needed.push(needed_now.counts().to_vec());
        // Sliding-window maximum per type: keep what was needed within
        // the timeout window, capped by the (possibly shrunk) fleet.
        let counts = (0..d)
            .map(|j| {
                let win = self.timeouts[j].saturating_add(1);
                let from = self.needed.len().saturating_sub(win);
                let m = instance.server_count(t, j);
                self.needed[from..].iter().map(|row| row[j]).max().unwrap_or(0).min(m)
            })
            .collect();
        Config::new(counts)
    }
}

/// The best **static** provisioning chosen with hindsight: one fixed
/// configuration for the whole horizon (powered up once). Not an online
/// algorithm — it is the "capacity planning without elasticity"
/// reference line in the experiments.
///
/// Returns `None` if no single configuration is feasible for every slot.
#[must_use]
pub fn best_static(
    instance: &Instance,
    oracle: &dyn GtOracle,
    grid: GridMode,
) -> Option<(Config, f64)> {
    // A static config must fit the smallest fleet over time.
    let d = instance.num_types();
    let min_counts: Vec<u32> = (0..d)
        .map(|j| (0..instance.horizon()).map(|t| instance.server_count(t, j)).min().unwrap())
        .collect();
    let mut best: Option<(Config, f64)> = None;
    let levels: Vec<Vec<u32>> = min_counts.iter().map(|&m| grid.levels(m)).collect();
    for_each_levels_config(&levels, |x| {
        let mut cost = 0.0;
        for j in 0..d {
            cost += f64::from(x.count(j)) * instance.switching_cost(j);
        }
        for t in 0..instance.horizon() {
            cost += oracle.g(instance, t, x.counts());
            if !cost.is_finite() {
                return;
            }
        }
        let better = match &best {
            None => true,
            Some((_, bc)) => cost < *bc,
        };
        if better {
            best = Some((x.clone(), cost));
        }
    });
    best
}

/// Enumerate configurations on slot `t`'s grid.
fn for_each_grid_config(instance: &Instance, t: usize, grid: GridMode, f: impl FnMut(&Config)) {
    let levels: Vec<Vec<u32>> =
        (0..instance.num_types()).map(|j| grid.levels(instance.server_count(t, j))).collect();
    for_each_levels_config(&levels, f);
}

fn for_each_levels_config(levels: &[Vec<u32>], mut f: impl FnMut(&Config)) {
    // Position bounds per dimension, then map through the level lists.
    let bounds: Vec<u32> = levels.iter().map(|l| (l.len() - 1) as u32).collect();
    for pos in enumerate_configs(&bounds) {
        let cfg = Config::new(
            pos.counts().iter().enumerate().map(|(j, &p)| levels[j][p as usize]).collect(),
        );
        f(&cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(1.0, 0.5)))
            .server_type(ServerType::new("b", 2, 5.0, 2.0, CostModel::constant(1.5)))
            .loads(vec![1.0, 4.0, 0.0, 2.0, 6.0])
            .build()
            .unwrap()
    }

    #[test]
    fn all_on_uses_whole_fleet() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let r = run(&inst, &mut AllOn, &oracle);
        for (_, cfg) in r.schedule.iter() {
            assert_eq!(cfg.counts(), &[3, 2]);
        }
    }

    #[test]
    fn reactive_tracks_load_exactly() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut reactive = Myopic::new(oracle, false);
        let r = run(&inst, &mut reactive, &oracle);
        r.schedule.check_feasible(&inst).unwrap();
        // zero-load slot powers everything off
        assert_eq!(r.schedule.config(2).counts(), &[0, 0]);
    }

    #[test]
    fn myopic_with_switching_avoids_pointless_power_cycles() {
        // Constant load: the one-step-lookahead policy settles into a
        // fixed configuration (no oscillation), unlike on jittery loads.
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(1.0, 0.5)))
            .loads(vec![2.0; 6])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let rb = run(&inst, &mut Myopic::new(oracle, true), &oracle);
        rb.schedule.check_feasible(&inst).unwrap();
        let first = rb.schedule.config(0).clone();
        for (_, cfg) in rb.schedule.iter() {
            assert_eq!(*cfg, first, "steady load must give a steady schedule");
        }
    }

    #[test]
    fn timeout_keeps_servers_warm() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 4.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![2.0, 0.0, 0.0, 2.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let mut rt = ReactiveTimeout::new(oracle, vec![2]);
        let r = run(&inst, &mut rt, &oracle);
        let counts: Vec<u32> = r.schedule.configs().iter().map(|c| c.count(0)).collect();
        // needed: [2,0,0,2]; window max with timeout 2 keeps both warm
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn ski_rental_timeouts_derived_from_instance() {
        let inst = instance();
        let rt = ReactiveTimeout::with_ski_rental_timeouts(Dispatcher::new(), &inst);
        assert_eq!(rt.timeouts, vec![2, 4]); // ⌈2/1⌉, ⌈5/1.5⌉
    }

    #[test]
    fn best_static_is_feasible_and_not_insane() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let (cfg, cost) = best_static(&inst, &oracle, GridMode::Full).unwrap();
        // must carry the peak load of 6
        assert!(cfg.capacity(inst.types()) >= 6.0);
        assert!(cost.is_finite());
    }
}

//! Receding-horizon control (RHC) — the prediction-based comparison
//! point.
//!
//! Classic model-predictive provisioning (Lin et al. compare LCP against
//! exactly this): at slot `t` the controller sees a forecast window of
//! `w` future slots, solves the right-sizing DP over `[t, t+w]` starting
//! from its current configuration, commits the first step, and repeats.
//!
//! **RHC is not an online algorithm in the adversarial sense** — it reads
//! future loads and cost functions inside its window, so it carries no
//! competitive guarantee against an adversary that invalidates forecasts
//! (and `run_with_prefix_revelation` will panic on it by design). It is
//! included as the "what if we had w slots of perfect prediction"
//! baseline in the experiments.

use std::ops::Range;

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::dp::{backtrack_window, betas, dp_step, DpOptions};
use rsz_offline::engine::{add_priced, PricedSlotPool};
use rsz_offline::refine::{lift_band, refine_window, FineGrid, RefineOptions};
use rsz_offline::table::Table;
use rsz_offline::transform::arrival_transform;
use rsz_offline::{Decoder, Encoder, GridMode, SnapshotError};

use crate::checkpoint::{codec, Checkpoint};
use crate::runner::OnlineAlgorithm;

/// Receding-horizon (model-predictive) provisioning with a perfect
/// forecast of the next `window` slots.
#[derive(Debug)]
pub struct RecedingHorizon<O> {
    oracle: O,
    /// Forecast window length `w ≥ 1` (1 = myopic with switching).
    pub window: usize,
    /// Options for the window DP (grid, pipeline pricing, threads,
    /// engine). RHC re-solves overlapping windows every slot, so the
    /// pipeline's warm-started sweeps and a caching oracle both pay off
    /// here — and with [`DpOptions::engine`] the priced-slot pool
    /// carries each slot's dense `g_t` table across windows, so the
    /// `w − 1` overlapping slots of consecutive windows are re-priced
    /// by a vectorized add instead of per-cell solves.
    pub options: DpOptions,
    prev: Option<Config>,
    /// Priced-slot pool (engine and refine modes), initialized lazily at
    /// the first decision so it binds to the instance actually driven.
    pool: Option<PricedSlotPool>,
    /// Separate pool for the refine mode's coarse `Γ(γ₀)` window solves
    /// (coarse and fine grids share fleet sizes, so one pool would
    /// alias keys).
    coarse_pool: Option<PricedSlotPool>,
    /// The previous decision's window plan (refine mode): consecutive
    /// windows overlap in `w − 1` slots, so the old plan's trajectory
    /// seeds the new window's bands — the warm start that keeps band
    /// pricing pool-resident across windows.
    last_plan: Vec<Config>,
    /// Slot index of `last_plan[0]`.
    last_plan_start: usize,
}

impl<O: GtOracle + Sync> RecedingHorizon<O> {
    /// RHC with a `window`-slot perfect forecast on the full grid.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(oracle: O, window: usize) -> Self {
        assert!(window >= 1, "window must be at least one slot");
        let options = DpOptions { parallel: false, ..DpOptions::default() };
        Self {
            oracle,
            window,
            options,
            prev: None,
            pool: None,
            coarse_pool: None,
            last_plan: Vec::new(),
            last_plan_start: 0,
        }
    }

    /// Pricing counters of the engine's priced-slot pool (`None` before
    /// the first decision or when the engine is off).
    #[must_use]
    pub fn engine_stats(&self) -> Option<rsz_offline::EngineStats> {
        self.pool.as_ref().map(PricedSlotPool::stats)
    }

    /// Use a γ-grid for the window DP (large fleets).
    #[must_use]
    pub fn with_grid(mut self, grid: GridMode) -> Self {
        self.options.grid = grid;
        self
    }

    /// Override the window DP options wholesale (pipeline pricing,
    /// explicit thread counts).
    #[must_use]
    pub fn with_options(mut self, options: DpOptions) -> Self {
        self.options = options;
        self
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for RecedingHorizon<O> {
    fn name(&self) -> String {
        format!("RHC(w={})", self.window)
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let d = instance.num_types();
        let end = (t + self.window).min(instance.horizon());
        let b = betas(instance);
        let opts = self.options;
        // Rebind the pool at every run start (t = 0), not just on first
        // use: pooled g_t tables are only valid for the instance they
        // were priced against, and a controller re-driven over a
        // different instance with equal fleet sizes would otherwise
        // silently optimize against stale operating costs. The previous
        // run's window plan is stale for the same reason.
        let pool_cap = opts.pool_capacity.unwrap_or(rsz_offline::engine::DEFAULT_POOL_CAP);
        if (opts.engine || opts.refine.is_some()) && (self.pool.is_none() || t == 0) {
            self.pool = Some(PricedSlotPool::with_capacity(instance, pool_cap));
        }
        if opts.refine.is_some() && (self.coarse_pool.is_none() || t == 0) {
            self.coarse_pool = Some(PricedSlotPool::with_capacity(instance, pool_cap));
        }
        if t == 0 {
            self.last_plan.clear();
        }
        // Start the window DP from a point mass at the current state: the
        // arrival transform prices power-ups relative to it for free.
        let start = self.prev.clone().unwrap_or_else(|| Config::zeros(d));
        let mut point_levels: Vec<Vec<u32>> = Vec::with_capacity(d);
        for j in 0..d {
            point_levels.push(vec![start.count(j)]);
        }
        let mut point = Table::new(point_levels, f64::INFINITY);
        point.values_mut()[0] = 0.0;

        if let Some(refine) = opts.refine {
            return self.decide_refined(instance, t, end, &b, &point, refine);
        }
        let mut tables: Vec<Table> = Vec::with_capacity(end - t);
        for u in t..end {
            let prev = tables.last().unwrap_or(&point);
            let next = if let Some(pool) = self.pool.as_mut() {
                // Engine path: transform onto slot u's grid and fold in
                // the pooled dense pricing — overlapping windows hit.
                let levels: Vec<Vec<u32>> =
                    (0..d).map(|j| opts.grid.levels(instance.server_count(u, j))).collect();
                let priced =
                    pool.get_or_price(instance, &self.oracle, u, instance.load(u), &levels);
                let mut cur = arrival_transform(prev, &levels, &b);
                add_priced(&mut cur, &priced, 1.0);
                cur
            } else {
                dp_step(prev, instance, &self.oracle, u, &b, opts)
            };
            tables.push(next);
        }
        let plan = backtrack_window(instance, &tables);
        let choice = plan.schedule.config(0).clone();
        self.prev = Some(choice.clone());
        choice
    }
}

impl<O: GtOracle + Sync> RecedingHorizon<O> {
    /// The corridor-banded window DP ([`DpOptions::refine`]). Every
    /// window first runs the cheap coarse `Γ(γ₀)` window solve — the
    /// coarse pass *must* see the window's freshly revealed tail slot,
    /// or a load spike arriving there would never enter the bands (the
    /// previous plan knows nothing about it, and neither boundary
    /// contact nor the widen-by-one verification can cross a multi-
    /// position gap). Bands are then the **union** of the corridor
    /// around the coarse trajectory and the corridor around the
    /// previous window's plan: the former carries correctness, the
    /// latter keeps bands stable across overlapping windows so the
    /// band-keyed pool answers the `w − 1` re-solved slots without
    /// re-pricing. Coarse pricings live in their own pool (coarse and
    /// fine grids share fleet sizes, so one pool would alias); its
    /// overlap hits make the per-window coarse cost ≈ one fresh slot.
    /// The band fixpoint then runs exactly like the offline corridor
    /// solver, so the committed decision equals the unrestricted window
    /// DP's (property-tested).
    fn decide_refined(
        &mut self,
        instance: &Instance,
        t: usize,
        end: usize,
        betas: &[f64],
        point: &Table,
        refine: RefineOptions,
    ) -> Config {
        let d = instance.num_types();
        let factor = refine.corridor_factor();
        let fine = FineGrid::new(instance, refine.target, t..end);

        // Coarse window solve on Γ(γ₀), priced through the coarse pool
        // (overlapping windows hit on the w − 1 shared slots).
        let coarse_mode = GridMode::Gamma(refine.coarse_gamma);
        let coarse_pool =
            self.coarse_pool.as_mut().expect("refine mode binds the coarse pool in decide");
        let mut tables: Vec<Table> = Vec::with_capacity(end - t);
        for u in t..end {
            let levels: Vec<Vec<u32>> =
                (0..d).map(|j| coarse_mode.levels(instance.server_count(u, j))).collect();
            let prev = tables.last().unwrap_or(point);
            let mut cur = arrival_transform(prev, &levels, betas);
            let priced =
                coarse_pool.get_or_price(instance, &self.oracle, u, instance.load(u), &levels);
            add_priced(&mut cur, &priced, 1.0);
            tables.push(cur);
        }
        let coarse: Vec<Config> =
            backtrack_window(instance, &tables).schedule.iter().map(|(_, c)| c.clone()).collect();

        // Bands: corridor around the coarse trajectory, unioned with the
        // corridor around the previous plan where it overlaps.
        let mut bands: Vec<Vec<Range<usize>>> = coarse
            .iter()
            .enumerate()
            .map(|(o, seed)| {
                (0..d)
                    .map(|j| {
                        let levels = fine.at(t + o)[j].as_slice();
                        let mut band = lift_band(levels, seed.count(j), factor);
                        let idx = (t + o).saturating_sub(self.last_plan_start);
                        if let Some(plan) = self.last_plan.get(idx) {
                            let warm = lift_band(levels, plan.count(j), factor);
                            band = band.start.min(warm.start)..band.end.max(warm.end);
                        }
                        band
                    })
                    .collect()
            })
            .collect();

        let pool = self.pool.as_mut().expect("refine mode binds the pool in decide");
        let outcome =
            refine_window(instance, &self.oracle, t..end, point, &fine, &mut bands, pool, &refine);
        let plan = outcome.result;
        let choice = plan.schedule.config(0).clone();
        self.prev = Some(choice.clone());
        self.last_plan = plan.schedule.iter().map(|(_, c)| c.clone()).collect();
        self.last_plan_start = t;
        choice
    }
}

impl<O: GtOracle + Sync> Checkpoint for RecedingHorizon<O> {
    fn algo_tag(&self) -> &'static str {
        "rhc"
    }

    fn save_state(&self, enc: &mut Encoder) {
        // Pools are deliberately not serialized: pooled g_t tables are
        // pure re-pricings, and a restored controller rebinds its pools
        // on the next decision (`pool.is_none()`), re-pricing the window
        // bit-identically.
        codec::put_config_opt(enc, self.prev.as_ref());
        enc.put_usize(self.last_plan_start);
        enc.put_usize(self.last_plan.len());
        for config in &self.last_plan {
            codec::put_u32s(enc, config.counts());
        }
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        let d = instance.num_types();
        let prev = codec::take_config_opt(dec, d)?;
        let last_plan_start = dec.take_usize()?;
        if last_plan_start > instance.horizon() {
            return Err(SnapshotError::Corrupt("plan start exceeds the horizon"));
        }
        let n = dec.take_usize()?;
        if n > self.window {
            return Err(SnapshotError::Corrupt("window plan exceeds the window length"));
        }
        let mut last_plan = Vec::with_capacity(n);
        for _ in 0..n {
            let counts = codec::take_u32s(dec, d)?;
            if counts.len() != d {
                return Err(SnapshotError::Corrupt("plan config has the wrong dimension"));
            }
            last_plan.push(Config::new(counts));
        }
        self.prev = prev;
        self.last_plan = last_plan;
        self.last_plan_start = last_plan_start;
        self.pool = None;
        self.coarse_pool = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("b", 2, 4.0, 2.0, CostModel::constant(1.2)))
            .loads(vec![1.0, 4.0, 0.0, 2.0, 5.0, 1.0, 0.0, 3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn rhc_is_feasible() {
        let inst = instance();
        let oracle = Dispatcher::new();
        for w in [1, 2, 4, 16] {
            let mut rhc = RecedingHorizon::new(oracle, w);
            let outcome = run(&inst, &mut rhc, &oracle);
            outcome.schedule.check_feasible(&inst).unwrap();
        }
    }

    #[test]
    fn full_horizon_window_recovers_near_optimal_cost() {
        // RHC with window ≥ T re-plans from the committed state each
        // slot; its first plan IS an optimal schedule, and re-planning
        // from a state on an optimal trajectory stays optimal.
        let inst = instance();
        let oracle = Dispatcher::new();
        let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
        let mut rhc = RecedingHorizon::new(oracle, inst.horizon());
        let outcome = run(&inst, &mut rhc, &oracle);
        assert!(
            (outcome.cost() - opt.cost).abs() < 1e-9,
            "RHC(T) {} vs OPT {}",
            outcome.cost(),
            opt.cost
        );
    }

    #[test]
    fn longer_windows_do_not_hurt_on_smooth_loads() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 4, 3.0, 1.0, CostModel::linear(0.5, 1.0)))
            .loads(vec![1.0, 2.0, 3.0, 4.0, 3.0, 2.0, 1.0, 0.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let short = run(&inst, &mut RecedingHorizon::new(oracle, 1), &oracle);
        let long = run(&inst, &mut RecedingHorizon::new(oracle, 8), &oracle);
        assert!(long.cost() <= short.cost() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let _ = RecedingHorizon::new(Dispatcher::new(), 0);
    }

    #[test]
    fn engine_pool_rebinds_per_run_and_never_serves_stale_prices() {
        // Same fleet shape, different operating costs: a controller
        // re-driven over the second instance must not answer windows
        // from the first instance's pooled g_t tables.
        let cheap = Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::constant(0.5)))
            .loads(vec![1.0, 2.0, 1.0, 2.0])
            .build()
            .unwrap();
        let pricey = Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::constant(5.0)))
            .loads(vec![1.0, 2.0, 1.0, 2.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let opts = DpOptions { engine: true, parallel: false, ..DpOptions::default() };
        let mut reused = RecedingHorizon::new(oracle, 2).with_options(opts);
        let _ = run(&cheap, &mut reused, &oracle);
        reused.prev = None; // fresh run; the pool must rebind on t = 0 too
        let second = run(&pricey, &mut reused, &oracle);
        let mut fresh = RecedingHorizon::new(oracle, 2).with_options(opts);
        let want = run(&pricey, &mut fresh, &oracle);
        assert_eq!(want.schedule, second.schedule, "stale pooled prices leaked across runs");
    }

    #[test]
    fn refined_windows_match_plain_windows() {
        // The corridor-banded window DP must commit exactly the plain
        // window DP's decisions — bands are an acceleration, not a
        // policy change.
        let inst = instance();
        let oracle = Dispatcher::new();
        for w in [1, 2, 4, 8] {
            let plain = run(&inst, &mut RecedingHorizon::new(oracle, w), &oracle);
            let opts = DpOptions {
                refine: Some(RefineOptions::exact()),
                parallel: false,
                ..DpOptions::default()
            };
            let mut refined = RecedingHorizon::new(oracle, w).with_options(opts);
            let refined_run = run(&inst, &mut refined, &oracle);
            assert_eq!(plain.schedule, refined_run.schedule, "w={w}");
            let stats = refined.engine_stats().expect("refine mode pools");
            assert!(stats.pricings > 0);
            if w > 1 {
                assert!(
                    stats.pool_hits > 0,
                    "overlapping windows must reuse banded pricings: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn refined_windows_reseed_on_rerun() {
        // A controller re-driven from scratch must not seed bands from
        // the previous run's plan.
        let inst = instance();
        let oracle = Dispatcher::new();
        let opts = DpOptions {
            refine: Some(RefineOptions::exact()),
            parallel: false,
            ..DpOptions::default()
        };
        let mut reused = RecedingHorizon::new(oracle, 3).with_options(opts);
        let first = run(&inst, &mut reused, &oracle);
        reused.prev = None;
        let second = run(&inst, &mut reused, &oracle);
        assert_eq!(first.schedule, second.schedule, "rerun must reset plan seeding");
    }

    #[test]
    fn cached_oracle_matches_and_reuses_overlapping_windows() {
        // Consecutive RHC windows overlap in w−1 slots; a shared g_t
        // cache answers the re-solved slots without re-dispatching.
        let inst = instance();
        let oracle = Dispatcher::new();
        let cached = rsz_dispatch::CachedDispatcher::new(&inst);
        for w in [2, 4] {
            let plain_run = run(&inst, &mut RecedingHorizon::new(oracle, w), &oracle);
            let cached_run = run(&inst, &mut RecedingHorizon::new(cached.clone(), w), &oracle);
            assert_eq!(plain_run.schedule, cached_run.schedule, "w={w}");
        }
        let stats = cached.stats();
        assert!(stats.hits > stats.misses, "window overlap should dominate: {stats:?}");
    }
}

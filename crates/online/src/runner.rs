//! Driving online algorithms over instances.

use rsz_core::objective::{evaluate, CostBreakdown};
use rsz_core::{Config, GtOracle, Instance, Schedule};

/// An online right-sizing algorithm.
///
/// The runner calls [`OnlineAlgorithm::decide`] once per slot in order.
/// Implementations must only inspect instance data for slots `≤ t`
/// (loads, cost functions, fleet sizes): the instance object carries the
/// full future for convenience, but peeking would forfeit the online
/// guarantee. [`run_with_prefix_revelation`] exists to catch violations:
/// it hands the algorithm physically truncated instances.
pub trait OnlineAlgorithm {
    /// Short display name ("A", "B(ε)", "all-on", …).
    fn name(&self) -> String;

    /// Choose the configuration for slot `t`.
    fn decide(&mut self, instance: &Instance, t: usize) -> Config;
}

/// The outcome of an online run.
#[derive(Clone, Debug)]
pub struct OnlineRun {
    /// Display name of the algorithm that produced the run.
    pub name: String,
    /// The schedule the algorithm committed to.
    pub schedule: Schedule,
    /// Its cost, split into operating and switching parts.
    pub breakdown: CostBreakdown,
}

impl OnlineRun {
    /// Total cost of the run.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.breakdown.total()
    }

    /// Empirical competitive ratio against a given optimum.
    ///
    /// Returns 1 when both costs are zero (empty workloads).
    #[must_use]
    pub fn ratio_vs(&self, opt_cost: f64) -> f64 {
        if opt_cost == 0.0 {
            if self.cost() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cost() / opt_cost
        }
    }
}

/// Run `algo` over the whole instance and price the result.
pub fn run(
    instance: &Instance,
    algo: &mut dyn OnlineAlgorithm,
    oracle: &dyn GtOracle,
) -> OnlineRun {
    let mut schedule = Schedule::empty();
    for t in 0..instance.horizon() {
        schedule.push(algo.decide(instance, t));
    }
    let breakdown = evaluate(instance, &schedule, oracle);
    OnlineRun { name: algo.name(), schedule, breakdown }
}

/// Per-decision latency profile of an online run — the numbers a
/// cluster controller actually cares about ([`run_instrumented`]).
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    /// One wall-clock sample per slot, in seconds, in slot order.
    samples: Vec<f64>,
}

impl LatencyProfile {
    /// Profile over raw per-decision samples (seconds, slot order).
    #[must_use]
    pub fn new(samples: Vec<f64>) -> Self {
        Self { samples }
    }

    /// The raw samples, in slot order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The `q`-quantile (nearest-rank, `0 ≤ q ≤ 1`) in seconds; 0 for an
    /// empty profile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Mean per-decision latency in seconds (0 for an empty profile).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Worst per-decision latency in seconds.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// `(p50, p90, p99, max, mean)` in microseconds — the report row the
    /// CLI and the `online_engine` bench print.
    #[must_use]
    pub fn summary_us(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.quantile(0.50) * 1e6,
            self.quantile(0.90) * 1e6,
            self.quantile(0.99) * 1e6,
            self.max() * 1e6,
            self.mean() * 1e6,
        )
    }
}

/// [`run`] with a wall clock around every [`OnlineAlgorithm::decide`]
/// call: returns the run plus its per-decision [`LatencyProfile`].
pub fn run_instrumented(
    instance: &Instance,
    algo: &mut dyn OnlineAlgorithm,
    oracle: &dyn GtOracle,
) -> (OnlineRun, LatencyProfile) {
    let mut schedule = Schedule::empty();
    let mut samples = Vec::with_capacity(instance.horizon());
    for t in 0..instance.horizon() {
        let start = std::time::Instant::now();
        let decision = algo.decide(instance, t);
        samples.push(start.elapsed().as_secs_f64());
        schedule.push(decision);
    }
    let breakdown = evaluate(instance, &schedule, oracle);
    (OnlineRun { name: algo.name(), schedule, breakdown }, LatencyProfile::new(samples))
}

/// Run `algo` handing it only the *revealed prefix* `I_{t+1}` at each
/// step: any attempt to read beyond slot `t` panics on the truncated
/// instance. Slower (clones per slot); used by tests to certify that an
/// implementation is genuinely online.
pub fn run_with_prefix_revelation(
    instance: &Instance,
    algo: &mut dyn OnlineAlgorithm,
    oracle: &dyn GtOracle,
) -> OnlineRun {
    let mut schedule = Schedule::empty();
    for t in 0..instance.horizon() {
        let revealed = instance.truncated(t + 1);
        schedule.push(algo.decide(&revealed, t));
    }
    let breakdown = evaluate(instance, &schedule, oracle);
    OnlineRun { name: algo.name(), schedule, breakdown }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;

    /// Trivial always-max algorithm for runner plumbing tests.
    struct AllOn;
    impl OnlineAlgorithm for AllOn {
        fn name(&self) -> String {
            "all-on".into()
        }
        fn decide(&mut self, instance: &Instance, t: usize) -> Config {
            Config::new(instance.server_counts_at(t))
        }
    }

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 2, 3.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0, 2.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn runner_collects_schedule_and_costs() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let run = run(&inst, &mut AllOn, &oracle);
        assert_eq!(run.schedule.len(), 3);
        assert_eq!(run.schedule.count(0, 0), 2);
        // switching: 2 power-ups once (6); operating: 2 servers × 3 slots × idle 1
        assert!((run.cost() - 12.0).abs() < 1e-9);
        assert_eq!(run.name, "all-on");
    }

    #[test]
    fn ratio_handles_zero_opt() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let r = run(&inst, &mut AllOn, &oracle);
        assert!((r.ratio_vs(6.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.ratio_vs(0.0), f64::INFINITY);
    }

    #[test]
    fn prefix_revelation_matches_full_run_for_online_algo() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let full = run(&inst, &mut AllOn, &oracle);
        let revealed = run_with_prefix_revelation(&inst, &mut AllOn, &oracle);
        assert_eq!(full.schedule, revealed.schedule);
    }

    #[test]
    fn cached_oracle_runs_algorithms_identically() {
        use crate::algo_a::{AOptions, AlgorithmA};
        use rsz_dispatch::CachedDispatcher;
        let inst = Instance::builder()
            .server_type(ServerType::new("s", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("f", 2, 5.0, 3.0, CostModel::power(1.0, 0.5, 2.0)))
            // Recurring loads: the shared-slot cache answers later slots
            // from earlier ones.
            .loads(vec![2.0, 5.0, 2.0, 0.0, 5.0, 2.0, 5.0, 0.0])
            .build()
            .unwrap();
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);

        let mut a1 = AlgorithmA::new(&inst, plain, AOptions::default());
        let want = run(&inst, &mut a1, &plain);
        let mut a2 = AlgorithmA::new(&inst, cached.clone(), AOptions::default());
        let got = run(&inst, &mut a2, &cached);
        assert_eq!(want.schedule, got.schedule);
        assert_eq!(want.cost().to_bits(), got.cost().to_bits());
        let stats = cached.stats();
        assert!(stats.hits > 0, "recurring loads must hit the cache, stats {stats:?}");

        // Prefix revelation hands the algorithm truncated clones — the
        // cache is keyed compatibly with them.
        let mut a3 = AlgorithmA::new(&inst, cached.clone(), AOptions::default());
        let revealed = run_with_prefix_revelation(&inst, &mut a3, &cached);
        assert_eq!(want.schedule, revealed.schedule);
    }
}

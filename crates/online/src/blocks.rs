//! The block decomposition of the competitive analysis (Section 2,
//! Figure 2).
//!
//! Algorithm A's schedule for a type `j` decomposes into **blocks**
//! `A_{j,i} = [s_{j,i}, s_{j,i} + t̄_j − 1]` — the lifetime of each
//! powered-up server — and **special time slots** `τ_{j,1} < … <
//! τ_{j,n'_j}`, constructed backwards so consecutive ones are at least
//! `t̄_j` apart. The proof of Lemma 7 hinges on the combinatorial fact
//! that *every block contains exactly one special slot*; this module
//! computes the decomposition from a power-up log so experiments and
//! tests can exhibit and verify it on real runs.

/// One server lifetime `[start, end]` (inclusive slots).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Power-up slot `s_{j,i}`.
    pub start: usize,
    /// Last active slot `s_{j,i} + t̄_j − 1`.
    pub end: usize,
}

impl Block {
    /// `true` if the block's interval contains slot `t`.
    #[must_use]
    pub fn contains(&self, t: usize) -> bool {
        self.start <= t && t <= self.end
    }
}

/// The full decomposition for one server type.
#[derive(Clone, Debug)]
pub struct BlockDecomposition {
    /// Blocks `A_{j,i}`, ordered by power-up slot (`s_{j,1} ≤ …`).
    pub blocks: Vec<Block>,
    /// Special slots `τ_{j,k}`, increasing.
    pub special_slots: Vec<usize>,
    /// Index sets `B_{j,k}`: for each special slot, the indices of the
    /// blocks containing it.
    pub index_sets: Vec<Vec<usize>>,
}

/// Decompose a power-up log for one type.
///
/// `w[t]` is the number of type-`j` servers powered up at slot `t`
/// (`AlgorithmA::power_up_log` transposed), `tbar` the deterministic
/// runtime `t̄_j ≥ 1`.
#[must_use]
pub fn decompose(w: &[u32], tbar: usize) -> BlockDecomposition {
    assert!(tbar >= 1, "runtime must be at least one slot");
    // Power-up slots with multiplicity: s_{j,1} ≤ s_{j,2} ≤ …
    let starts: Vec<usize> =
        w.iter().enumerate().flat_map(|(t, &n)| std::iter::repeat_n(t, n as usize)).collect();
    let blocks: Vec<Block> =
        starts.iter().map(|&s| Block { start: s, end: s + tbar - 1 }).collect();

    // Special slots, constructed in reverse (paper definition):
    // τ_{n'} = s_{n}; τ_{k−1} = max { s_i ≤ τ_k − t̄ }.
    let mut special_rev: Vec<usize> = Vec::new();
    if let Some(&last) = starts.last() {
        special_rev.push(last);
        loop {
            let cur = *special_rev.last().expect("non-empty");
            if cur < tbar {
                break;
            }
            let bound = cur - tbar;
            match starts.iter().rev().find(|&&s| s <= bound) {
                Some(&prev) => special_rev.push(prev),
                None => break,
            }
        }
    }
    special_rev.reverse();
    let special_slots = special_rev;

    let index_sets: Vec<Vec<usize>> = special_slots
        .iter()
        .map(|&tau| {
            blocks.iter().enumerate().filter(|(_, b)| b.contains(tau)).map(|(i, _)| i).collect()
        })
        .collect();

    BlockDecomposition { blocks, special_slots, index_sets }
}

impl BlockDecomposition {
    /// Verify Lemma 7's combinatorial core: the index sets partition the
    /// block indices (every block contains exactly one special slot).
    #[must_use]
    pub fn is_partition(&self) -> bool {
        let mut seen = vec![false; self.blocks.len()];
        for set in &self.index_sets {
            for &i in set {
                if seen[i] {
                    return false; // a block contains two special slots
                }
                seen[i] = true;
            }
        }
        seen.iter().all(|&s| s)
    }

    /// Consecutive special slots are at least `tbar` apart.
    #[must_use]
    pub fn spacing_at_least(&self, tbar: usize) -> bool {
        self.special_slots.windows(2).all(|w| w[1] - w[0] >= tbar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_style_decomposition() {
        // Seven power-ups; t̄ = 4. Mirrors the structure of Figure 2:
        // clusters of overlapping blocks share one special slot.
        let mut w = vec![0u32; 16];
        w[0] = 1; // block 1: [0,3]
        w[2] = 1; // block 2: [2,5]
        w[6] = 2; // blocks 3,4: [6,9]
        w[11] = 3; // blocks 5,6,7: [11,14]
        let dec = decompose(&w, 4);
        assert_eq!(dec.blocks.len(), 7);
        assert!(dec.is_partition(), "{dec:?}");
        assert!(dec.spacing_at_least(4));
        // Backward construction: τ_last = 11, then max s ≤ 7 → 6, then
        // max s ≤ 2 → 2. Block [0,3] contains τ=2. OK.
        assert_eq!(dec.special_slots, vec![2, 6, 11]);
        assert_eq!(dec.index_sets, vec![vec![0, 1], vec![2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn every_block_contains_exactly_one_special_slot_randomized() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let horizon = rng.gen_range(1..40);
            let tbar = rng.gen_range(1..8);
            let w: Vec<u32> = (0..horizon)
                .map(|_| if rng.gen_bool(0.3) { rng.gen_range(1..4) } else { 0 })
                .collect();
            let dec = decompose(&w, tbar);
            assert!(dec.is_partition(), "tbar={tbar} w={w:?} dec={dec:?}");
            assert!(dec.spacing_at_least(tbar));
        }
    }

    #[test]
    fn empty_log_has_no_blocks() {
        let dec = decompose(&[0, 0, 0], 3);
        assert!(dec.blocks.is_empty());
        assert!(dec.special_slots.is_empty());
        assert!(dec.is_partition());
    }

    #[test]
    fn single_power_up() {
        let dec = decompose(&[0, 2, 0], 5);
        assert_eq!(dec.blocks.len(), 2);
        assert_eq!(dec.special_slots, vec![1]);
        assert_eq!(dec.index_sets, vec![vec![0, 1]]);
    }
}

//! Graceful degradation for online controllers.
//!
//! A production controller has a *deadline* per decision: the slot
//! boundary arrives whether or not the prefix DP finished. Instead of
//! missing it (or panicking), [`GracefulDegrader`] wraps any
//! [`OnlineAlgorithm`] in a three-rung ladder and walks **down** it when
//! a decision overruns its budget:
//!
//! | rung | decision | guarantee |
//! |------|----------|-----------|
//! | [`Rung::Exact`] | the wrapped controller, full grid | the wrapped algorithm's |
//! | [`Rung::Coarse`] | same controller rebuilt on `Γ(γ₀)` and replayed | approximation per Theorem 16's grid bound |
//! | [`Rung::Hold`] | previous decision, clamped to the fleet and raised to feasibility | feasibility only |
//!
//! Descent is one-way (no flapping back up under an oscillating load of
//! deadline misses) and deterministic: the rung sequence depends only on
//! measured decision times, and with [`DegradeOptions::deadline`] `=
//! None` the wrapper is a transparent shim — the committed schedule is
//! bit-identical to the wrapped controller's (property-tested).
//!
//! Saturated slots — arriving load within rounding of the entire
//! fleet's capacity, the regime capacity events (`rsz_workloads`'s
//! event stream) clamp into — are recorded as structured
//! [`SaturationEvent`]s rather than asserted on, whatever the rung.

use std::time::{Duration, Instant};

use rsz_core::{Config, Instance};
use rsz_offline::{Decoder, Encoder, GridMode, SnapshotError};

use crate::checkpoint::{codec, Checkpoint};
use crate::runner::OnlineAlgorithm;

/// A rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// The wrapped controller on its configured grid.
    Exact,
    /// The wrapped controller rebuilt on the coarse `Γ(γ₀)` grid.
    Coarse,
    /// Hold the previous decision (clamped and raised to feasibility).
    Hold,
}

/// Options for [`GracefulDegrader`].
#[derive(Clone, Copy, Debug)]
pub struct DegradeOptions {
    /// Per-decision time budget. `None` disables the ladder: every slot
    /// is decided on [`Rung::Exact`] and the wrapper is transparent.
    pub deadline: Option<Duration>,
    /// `γ₀` of the coarse rung's `Γ(γ₀)` grid.
    pub coarse_gamma: f64,
}

impl Default for DegradeOptions {
    fn default() -> Self {
        Self { deadline: None, coarse_gamma: 2.0 }
    }
}

/// One saturated slot: the load filled (or exceeded rounding distance
/// of) the whole fleet's capacity, so every rung decides "all on" and
/// the overflow, if any, is physics rather than a controller bug.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationEvent {
    /// Slot index.
    pub t: usize,
    /// Arriving load.
    pub load: f64,
    /// Total fleet capacity at `t`.
    pub capacity: f64,
}

/// Per-rung decision counters plus the saturation log.
#[derive(Clone, Debug, Default)]
pub struct DegradeStats {
    /// Slots decided on [`Rung::Exact`].
    pub exact: u64,
    /// Slots decided on [`Rung::Coarse`].
    pub coarse: u64,
    /// Slots decided on [`Rung::Hold`].
    pub hold: u64,
    /// Slots where the load saturated the fleet.
    pub saturated: Vec<SaturationEvent>,
}

impl DegradeStats {
    /// Total decisions recorded.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.exact + self.coarse + self.hold
    }

    /// Fold another controller's counters into this one — the rollup
    /// behind the `rsz serve` daemon's per-daemon `/metrics` view,
    /// where each tenant's degrader keeps its own counters and the
    /// daemon reports both the per-tenant and the summed ladder.
    pub fn absorb(&mut self, other: &DegradeStats) {
        self.exact += other.exact;
        self.coarse += other.coarse;
        self.hold += other.hold;
        self.saturated.extend_from_slice(&other.saturated);
    }
}

/// Deadline-driven degradation wrapper. `factory` rebuilds the wrapped
/// controller type on an arbitrary grid — the coarse rung uses it to
/// construct a `Γ(γ₀)` twin and replays all previously committed slots
/// through it (an online-safe catch-up: replay only reads the prefix).
pub struct GracefulDegrader<A, F> {
    inner: A,
    factory: F,
    options: DegradeOptions,
    coarse: Option<A>,
    rung: Rung,
    last: Option<Config>,
    stats: DegradeStats,
}

impl<A, F> GracefulDegrader<A, F>
where
    A: OnlineAlgorithm,
    F: FnMut(&Instance, GridMode) -> A,
{
    /// Wrap `inner`, keeping `factory` for coarse-rung rebuilds.
    #[must_use]
    pub fn new(inner: A, factory: F, options: DegradeOptions) -> Self {
        Self {
            inner,
            factory,
            options,
            coarse: None,
            rung: Rung::Exact,
            last: None,
            stats: DegradeStats::default(),
        }
    }

    /// The rung the next decision will run on.
    #[must_use]
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// Decision counters per rung and the saturation log.
    #[must_use]
    pub fn stats(&self) -> &DegradeStats {
        &self.stats
    }

    /// The wrapped (exact-rung) controller.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped controller — the serve daemon uses
    /// this to install a shared pricing pool after construction or
    /// restore (ladder state is untouched).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Record saturation and descend one rung if the decision overran
    /// its budget.
    fn after_decision(&mut self, instance: &Instance, t: usize, elapsed: Duration) {
        let load = instance.load(t);
        let capacity = instance.max_capacity_at(t);
        if load >= capacity - 1e-9 * capacity.abs().max(1.0) && load > 0.0 {
            self.stats.saturated.push(SaturationEvent { t, load, capacity });
        }
        if let Some(deadline) = self.options.deadline {
            if elapsed > deadline {
                self.rung = match self.rung {
                    Rung::Exact => Rung::Coarse,
                    Rung::Coarse | Rung::Hold => Rung::Hold,
                };
            }
        }
    }

    /// The hold rung: repeat the previous decision, clamped to the
    /// current fleet bounds (capacity events shrink them mid-horizon),
    /// powering up to the full fleet when the held configuration can no
    /// longer serve the arriving load.
    fn hold_decision(&self, instance: &Instance, t: usize) -> Config {
        let d = instance.num_types();
        let mut counts: Vec<u32> = match &self.last {
            Some(c) => (0..d).map(|j| c.count(j).min(instance.server_count(t, j))).collect(),
            None => vec![0; d],
        };
        let capacity: f64 = (0..d).map(|j| f64::from(counts[j]) * instance.capacity(j)).sum();
        if capacity < instance.load(t) {
            counts = (0..d).map(|j| instance.server_count(t, j)).collect();
        }
        Config::new(counts)
    }
}

impl<A, F> OnlineAlgorithm for GracefulDegrader<A, F>
where
    A: OnlineAlgorithm,
    F: FnMut(&Instance, GridMode) -> A,
{
    fn name(&self) -> String {
        format!("degrade({})", self.inner.name())
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let start = Instant::now();
        let choice = match self.rung {
            Rung::Exact => {
                self.stats.exact += 1;
                self.inner.decide(instance, t)
            }
            Rung::Coarse => {
                if self.coarse.is_none() {
                    // First coarse decision: build the Γ(γ₀) twin and
                    // replay the committed prefix so it is caught up.
                    let mut twin =
                        (self.factory)(instance, GridMode::Gamma(self.options.coarse_gamma));
                    for u in 0..t {
                        let _ = twin.decide(instance, u);
                    }
                    self.coarse = Some(twin);
                }
                self.stats.coarse += 1;
                self.coarse.as_mut().expect("built above").decide(instance, t)
            }
            Rung::Hold => {
                self.stats.hold += 1;
                self.hold_decision(instance, t)
            }
        };
        let elapsed = start.elapsed();
        self.after_decision(instance, t, elapsed);
        self.last = Some(choice.clone());
        choice
    }
}

impl<A, F> Checkpoint for GracefulDegrader<A, F>
where
    A: OnlineAlgorithm + Checkpoint,
    F: FnMut(&Instance, GridMode) -> A,
{
    fn algo_tag(&self) -> &'static str {
        "degraded"
    }

    /// The ladder's resumable state: the wrapped algorithm's tag (so a
    /// snapshot taken around algorithm X refuses to restore around Y),
    /// the rung, the last committed decision (the hold rung's input),
    /// the per-rung counters and saturation log, then the wrapped
    /// controller's own state. The coarse twin is deliberately **not**
    /// serialized: it is rebuilt by replaying the committed prefix on
    /// the first post-restore coarse decision, which reproduces its
    /// state deterministically (the same catch-up that built it live).
    fn save_state(&self, enc: &mut Encoder) {
        enc.put_bytes(self.inner.algo_tag().as_bytes());
        enc.put_u8(match self.rung {
            Rung::Exact => 0,
            Rung::Coarse => 1,
            Rung::Hold => 2,
        });
        codec::put_config_opt(enc, self.last.as_ref());
        enc.put_u64(self.stats.exact);
        enc.put_u64(self.stats.coarse);
        enc.put_u64(self.stats.hold);
        enc.put_usize(self.stats.saturated.len());
        for ev in &self.stats.saturated {
            enc.put_usize(ev.t);
            enc.put_f64(ev.load);
            enc.put_f64(ev.capacity);
        }
        self.inner.save_state(enc);
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        if dec.take_bytes()? != self.inner.algo_tag().as_bytes() {
            return Err(SnapshotError::Corrupt("degraded snapshot wraps a different algorithm"));
        }
        let rung = match dec.take_u8()? {
            0 => Rung::Exact,
            1 => Rung::Coarse,
            2 => Rung::Hold,
            _ => return Err(SnapshotError::Corrupt("unknown degradation rung")),
        };
        let last = codec::take_config_opt(dec, instance.num_types())?;
        let mut stats = DegradeStats {
            exact: dec.take_u64()?,
            coarse: dec.take_u64()?,
            hold: dec.take_u64()?,
            saturated: Vec::new(),
        };
        let events = dec.take_usize()?;
        if events > instance.horizon() {
            return Err(SnapshotError::Corrupt("saturation log exceeds the horizon"));
        }
        for _ in 0..events {
            stats.saturated.push(SaturationEvent {
                t: dec.take_usize()?,
                load: dec.take_f64()?,
                capacity: dec.take_f64()?,
            });
        }
        self.inner.restore_state(instance, dec)?;
        self.rung = rung;
        self.last = last;
        self.stats = stats;
        self.coarse = None;
        Ok(())
    }
}

impl<A: std::fmt::Debug, F> std::fmt::Debug for GracefulDegrader<A, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GracefulDegrader")
            .field("inner", &self.inner)
            .field("options", &self.options)
            .field("rung", &self.rung)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo_a::{AOptions, AlgorithmA};
    use crate::runner::run;
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("b", 2, 4.0, 2.0, CostModel::constant(1.2)))
            .loads(vec![1.0, 4.0, 0.0, 2.0, 7.0, 1.0, 0.0, 3.0])
            .build()
            .unwrap()
    }

    fn wrap(
        inst: &Instance,
        options: DegradeOptions,
    ) -> GracefulDegrader<
        AlgorithmA<Dispatcher>,
        impl FnMut(&Instance, GridMode) -> AlgorithmA<Dispatcher>,
    > {
        let inner = AlgorithmA::new(inst, Dispatcher::new(), AOptions::default());
        GracefulDegrader::new(
            inner,
            |instance, grid| {
                AlgorithmA::new(
                    instance,
                    Dispatcher::new(),
                    AOptions { grid, ..AOptions::default() },
                )
            },
            options,
        )
    }

    #[test]
    fn no_deadline_is_transparent() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut plain = AlgorithmA::new(&inst, oracle, AOptions::default());
        let want = run(&inst, &mut plain, &oracle);
        let mut wrapped = wrap(&inst, DegradeOptions::default());
        let got = run(&inst, &mut wrapped, &oracle);
        assert_eq!(want.schedule, got.schedule);
        assert_eq!(wrapped.stats().exact, inst.horizon() as u64);
        assert_eq!(wrapped.stats().coarse, 0);
        assert_eq!(wrapped.stats().hold, 0);
    }

    #[test]
    fn zero_deadline_walks_the_whole_ladder() {
        // Every decision overruns a zero budget: slot 0 exact, slot 1
        // coarse (after a replay catch-up), slots 2+ hold.
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut wrapped =
            wrap(&inst, DegradeOptions { deadline: Some(Duration::ZERO), coarse_gamma: 1.5 });
        let outcome = run(&inst, &mut wrapped, &oracle);
        outcome.schedule.check_feasible(&inst).unwrap();
        let stats = wrapped.stats();
        assert_eq!(stats.exact, 1);
        assert_eq!(stats.coarse, 1);
        assert_eq!(stats.hold, inst.horizon() as u64 - 2);
        assert_eq!(wrapped.rung(), Rung::Hold);
    }

    #[test]
    fn saturated_slots_are_reported_not_asserted() {
        // Slot 4's load of 7.0 equals the full fleet capacity
        // 3·1 + 2·2 = 7: the degrader must log it, on every rung.
        let inst = instance();
        let oracle = Dispatcher::new();
        for deadline in [None, Some(Duration::ZERO)] {
            let mut wrapped = wrap(&inst, DegradeOptions { deadline, coarse_gamma: 2.0 });
            let outcome = run(&inst, &mut wrapped, &oracle);
            outcome.schedule.check_feasible(&inst).unwrap();
            let sat = &wrapped.stats().saturated;
            assert_eq!(sat.len(), 1, "deadline {deadline:?}");
            assert_eq!(sat[0].t, 4);
            assert!((sat[0].capacity - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hold_rung_powers_up_for_rising_load() {
        // Force hold from slot 2 on; the held config from slot 1 cannot
        // serve slot 4's full-capacity spike, so the hold rung must
        // power up to the whole fleet instead of going infeasible.
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut wrapped =
            wrap(&inst, DegradeOptions { deadline: Some(Duration::ZERO), coarse_gamma: 2.0 });
        let outcome = run(&inst, &mut wrapped, &oracle);
        outcome.schedule.check_feasible(&inst).unwrap();
        let spike = outcome.schedule.config(4);
        assert_eq!(spike.counts(), &[3, 2], "hold must saturate to the fleet on the spike");
    }
}

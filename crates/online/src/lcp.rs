//! Lazy Capacity Provisioning for homogeneous data centers (`d = 1`).
//!
//! The discrete LCP of Albers & Quedenfeld (SPAA'18) — the predecessor
//! result this paper generalizes — maintains lower and upper targets from
//! prefix-optimal schedules and moves lazily: it changes the number of
//! active servers only when pushed out of the corridor
//! `[lower_t, upper_t]`.
//!
//! Here the corridor bounds are taken as the smallest and largest final
//! configurations among cost-optimal prefix schedules (ties in the prefix
//! DP value resolved both ways). Included as the homogeneous baseline for
//! the experiments; the heterogeneous algorithms are Sections 2–3.

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::{Decoder, DpOptions, Encoder, GridMode, PrefixDp, SnapshotError};

use crate::checkpoint::Checkpoint;
use crate::runner::OnlineAlgorithm;

/// Discrete lazy capacity provisioning (homogeneous fleets only).
#[derive(Debug)]
pub struct LazyCapacityProvisioning<O> {
    oracle: O,
    prefix: PrefixDp,
    x: u32,
}

impl<O: GtOracle + Sync> LazyCapacityProvisioning<O> {
    /// Set up LCP for a `d = 1` instance.
    ///
    /// # Panics
    /// Panics if the instance has more than one server type.
    #[must_use]
    pub fn new(instance: &Instance, oracle: O) -> Self {
        Self::with_options(
            instance,
            oracle,
            DpOptions { grid: GridMode::Full, parallel: false, ..DpOptions::default() },
        )
    }

    /// [`LazyCapacityProvisioning::new`] with explicit prefix-solver
    /// options — how the online decision engine ([`DpOptions::engine`])
    /// and the pipeline pricing path are switched on for LCP.
    ///
    /// # Panics
    /// Panics if the instance has more than one server type.
    #[must_use]
    pub fn with_options(instance: &Instance, oracle: O, options: DpOptions) -> Self {
        assert_eq!(instance.num_types(), 1, "LCP is defined for homogeneous data centers (d = 1)");
        Self { oracle, prefix: PrefixDp::new(instance, options), x: 0 }
    }

    /// Pricing counters of the prefix solver's engine (`None` when
    /// [`DpOptions::engine`] is off).
    #[must_use]
    pub fn engine_stats(&self) -> Option<rsz_offline::EngineStats> {
        self.prefix.engine_stats()
    }

    /// Share the prefix solver's priced-slot pool (see
    /// [`PrefixDp::share_pool`]). Returns `false` when the engine is
    /// off.
    pub fn share_pool(&mut self, pool: rsz_offline::SharedSlotPool) -> bool {
        self.prefix.share_pool(pool)
    }

    /// The corridor `[lower, upper]` of final states of optimal prefix
    /// schedules in the current table.
    fn corridor(&self) -> (u32, u32) {
        let table = self.prefix.table();
        let min = table.min_value();
        let tol = 1e-9 * min.abs().max(1.0);
        let mut lower = u32::MAX;
        let mut upper = 0u32;
        let levels = table.levels(0); // d = 1: flat index == level position
        for (i, &v) in table.values().iter().enumerate() {
            if v.is_finite() && v <= min + tol {
                let level = levels[i];
                lower = lower.min(level);
                upper = upper.max(level);
            }
        }
        (lower, upper)
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for LazyCapacityProvisioning<O> {
    fn name(&self) -> String {
        "LCP".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        let _ = self.prefix.step_counts(instance, &self.oracle, t);
        let (lower, upper) = self.corridor();
        // Lazy projection onto the corridor.
        self.x = self.x.clamp(lower, upper.max(lower));
        Config::new(vec![self.x])
    }
}

impl<O: GtOracle + Sync> Checkpoint for LazyCapacityProvisioning<O> {
    fn algo_tag(&self) -> &'static str {
        "lcp"
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.prefix.save_state(enc);
        enc.put_u32(self.x);
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.prefix.restore_state(instance, dec)?;
        let x = dec.take_u32()?;
        if u64::from(x) > u64::from(instance.max_counts()[0]) {
            return Err(SnapshotError::Corrupt("active count exceeds the fleet bound"));
        }
        self.x = x;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    fn instance(loads: Vec<f64>) -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 5, 3.0, 1.0, CostModel::linear(1.0, 0.5)))
            .loads(loads)
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_and_lazy() {
        let inst = instance(vec![1.0, 4.0, 2.0, 0.0, 0.0, 3.0, 5.0, 1.0]);
        let oracle = Dispatcher::new();
        let mut lcp = LazyCapacityProvisioning::new(&inst, oracle);
        let run = run(&inst, &mut lcp, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }

    #[test]
    fn three_competitive_on_test_workloads() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = Dispatcher::new();
        for _ in 0..10 {
            let loads: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..5.0)).collect();
            let inst = instance(loads);
            let mut lcp = LazyCapacityProvisioning::new(&inst, oracle);
            let online = run(&inst, &mut lcp, &oracle);
            let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
            assert!(
                online.cost() <= 3.0 * opt.cost + 1e-9,
                "LCP {} vs 3·OPT {}",
                online.cost(),
                3.0 * opt.cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn rejects_heterogeneous_instances() {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .server_type(ServerType::new("b", 1, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![1.0])
            .build()
            .unwrap();
        let _ = LazyCapacityProvisioning::new(&inst, Dispatcher::new());
    }
}

//! Algorithm B — time-dependent operating costs (Section 3.1).
//!
//! Same power-up policy as Algorithm A (track the prefix optimum from
//! below), but the power-down rule must adapt: with time-varying idle
//! costs `l_{t,j} = f_{t,j}(0)` the runtime of a server is no longer
//! known at power-up time. A server powered up at slot `u` runs until the
//! first slot `t` with
//!
//! ```text
//! Σ_{v=u+1}^{t−1} l_{v,j} ≤ β_j < Σ_{v=u+1}^{t} l_{v,j}
//! ```
//!
//! i.e. until its accumulated idle cost (counted from the slot *after*
//! power-up) first exceeds the switching cost — an online-decidable
//! condition (the paper's set `W_t`). Theorem 13: the schedule is
//! `(2d+1+c(I))`-competitive with `c(I) = Σ_j max_t l_{t,j}/β_j`.

use rsz_core::{Config, GtOracle, Instance};
use rsz_offline::{Decoder, Encoder, PrefixDp, SnapshotError};

use crate::algo_a::AOptions;
use crate::checkpoint::{codec, Checkpoint};
use crate::runner::OnlineAlgorithm;

/// A batch of servers of one type powered up at the same (sub-)slot.
#[derive(Clone, Copy, Debug)]
struct Batch {
    /// Accumulated idle cost since the slot after power-up.
    acc: f64,
    /// Number of servers in the batch.
    count: u32,
}

/// The shared engine of Algorithms B and C: prefix tracking plus
/// accumulated-idle-cost power-downs, with every step optionally scaled
/// (Algorithm C feeds each original slot as `ñ_t` sub-slots of scale
/// `1/ñ_t`).
#[derive(Debug)]
pub struct BCore {
    prefix: PrefixDp,
    x: Vec<u32>,
    batches: Vec<Vec<Batch>>,
    /// Scratch copy of the latest prefix target (borrow separation from
    /// the prefix solver's internal buffer).
    target: Vec<u32>,
    /// Power-up events as (step_index, type, count), for analysis.
    power_ups: Vec<(usize, usize, u32)>,
    steps: usize,
}

impl BCore {
    /// Fresh engine for an instance.
    #[must_use]
    pub fn new(instance: &Instance, options: AOptions) -> Self {
        let d = instance.num_types();
        Self {
            prefix: PrefixDp::new(instance, options.dp_options()),
            x: vec![0; d],
            batches: vec![Vec::new(); d],
            target: Vec::with_capacity(d),
            power_ups: Vec::new(),
            steps: 0,
        }
    }

    /// Current active counts.
    #[must_use]
    pub fn active(&self) -> &[u32] {
        &self.x
    }

    /// The internal prefix solver — exposed so Algorithm C can read the
    /// engine's dense priced slot (`PrefixDp::last_priced`) and its
    /// pricing counters.
    #[must_use]
    pub fn prefix(&self) -> &PrefixDp {
        &self.prefix
    }

    /// Power-up events seen so far (`(step, type, count)`).
    #[must_use]
    pub fn power_ups(&self) -> &[(usize, usize, u32)] {
        &self.power_ups
    }

    /// Share the prefix solver's priced-slot pool (see
    /// [`PrefixDp::share_pool`]). Returns `false` when the engine is
    /// off.
    pub fn share_pool(&mut self, pool: rsz_offline::SharedSlotPool) -> bool {
        self.prefix.share_pool(pool)
    }

    /// Process one (sub-)slot: retire batches whose accumulated idle cost
    /// exceeds `β_j`, then raise counts to the prefix optimum. `lambda`
    /// and `scale` parameterize the sub-slot refinement; plain Algorithm B
    /// uses `lambda = λ_t, scale = 1`.
    pub fn step(
        &mut self,
        instance: &Instance,
        oracle: &(impl GtOracle + Sync),
        t: usize,
        lambda: f64,
        scale: f64,
    ) -> Config {
        self.retire(instance, t, scale);
        {
            // Split borrows: the returned counts slice keeps `prefix`
            // borrowed while it is copied into the target scratch.
            let Self { prefix, target, .. } = self;
            let xhat = prefix.step_counts_scaled(instance, oracle, t, lambda, scale);
            target.clear();
            target.extend_from_slice(xhat);
        }
        self.raise_to_target();
        self.steps += 1;
        Config::new(self.x.clone())
    }

    /// Process one slot with an externally supplied target `x̂` instead of
    /// the internal prefix optimum. Used by the figure-reproduction
    /// experiments, which replay the paper's hand-set `x̂^t_t` series
    /// through the real power-up/-down machinery.
    pub fn step_with_target(
        &mut self,
        instance: &Instance,
        t: usize,
        xhat: &Config,
        scale: f64,
    ) -> Config {
        self.retire(instance, t, scale);
        self.target.clear();
        self.target.extend_from_slice(xhat.counts());
        self.raise_to_target();
        self.steps += 1;
        Config::new(self.x.clone())
    }

    /// Power-downs: the idle cost of *this* slot is what pushes a batch
    /// over its budget (the sum starts at u+1 and includes t).
    fn retire(&mut self, instance: &Instance, t: usize, scale: f64) {
        let d = self.x.len();
        for j in 0..d {
            let l = scale * instance.idle_cost(t, j);
            let beta = instance.switching_cost(j);
            let x_j = &mut self.x[j];
            self.batches[j].retain_mut(|b| {
                let with_this_slot = b.acc + l;
                if with_this_slot > beta {
                    // W_t condition met: b.acc ≤ β < b.acc + l.
                    debug_assert!(b.acc <= beta + 1e-12);
                    *x_j -= b.count;
                    false
                } else {
                    b.acc = with_this_slot;
                    true
                }
            });
        }
    }

    /// Serialize the resumable core: prefix solver, active counts, the
    /// live batches with their accumulated idle costs (exact `f64` bit
    /// patterns), the power-up log, and the (sub-)slot counter.
    pub fn save_state(&self, enc: &mut Encoder) {
        self.prefix.save_state(enc);
        enc.put_usize(self.steps);
        codec::put_u32s(enc, &self.x);
        enc.put_usize(self.batches.len());
        for per_type in &self.batches {
            enc.put_usize(per_type.len());
            for b in per_type {
                enc.put_f64(b.acc);
                enc.put_u32(b.count);
            }
        }
        enc.put_usize(self.power_ups.len());
        for &(step, j, count) in &self.power_ups {
            enc.put_usize(step);
            enc.put_usize(j);
            enc.put_u32(count);
        }
    }

    /// Restore state written by [`BCore::save_state`] into a core built
    /// against the same `instance` with the same options.
    pub fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.prefix.restore_state(instance, dec)?;
        let steps = dec.take_usize()?;
        let d = instance.num_types();
        let x = codec::take_u32s(dec, d)?;
        if x.len() != d {
            return Err(SnapshotError::Corrupt("active-count vector has the wrong dimension"));
        }
        if dec.take_usize()? != d {
            return Err(SnapshotError::Corrupt("batch table has the wrong dimension"));
        }
        let mut batches = Vec::with_capacity(d);
        for &active in x.iter().take(d) {
            let n = dec.take_usize()?;
            let mut per_type = Vec::with_capacity(n.min(1024));
            let mut total = 0u64;
            for _ in 0..n {
                let acc = dec.take_f64()?;
                let count = dec.take_u32()?;
                total += u64::from(count);
                per_type.push(Batch { acc, count });
            }
            if total != u64::from(active) {
                return Err(SnapshotError::Corrupt("batch counts do not sum to the active count"));
            }
            batches.push(per_type);
        }
        let n = dec.take_usize()?;
        let mut power_ups = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let step = dec.take_usize()?;
            let j = dec.take_usize()?;
            let count = dec.take_u32()?;
            if j >= d || step > steps {
                return Err(SnapshotError::Corrupt("power-up event out of range"));
            }
            power_ups.push((step, j, count));
        }
        self.x = x;
        self.batches = batches;
        self.power_ups = power_ups;
        self.steps = steps;
        Ok(())
    }

    /// Power-ups toward the target configuration in `self.target`.
    fn raise_to_target(&mut self) {
        for j in 0..self.x.len() {
            let want = self.target[j];
            if self.x[j] <= want {
                let up = want - self.x[j];
                if up > 0 {
                    self.batches[j].push(Batch { acc: 0.0, count: up });
                    self.power_ups.push((self.steps, j, up));
                    self.x[j] = want;
                }
            }
        }
    }
}

/// Algorithm B (deterministic, `(2d+1+c(I))`-competitive, Theorem 13).
#[derive(Debug)]
pub struct AlgorithmB<O> {
    oracle: O,
    core: BCore,
}

impl<O: GtOracle + Sync> AlgorithmB<O> {
    /// Set up Algorithm B for an instance (any cost spec is allowed; on
    /// time-independent costs it behaves like a variant of Algorithm A
    /// whose runtimes differ by at most one slot).
    #[must_use]
    pub fn new(instance: &Instance, oracle: O, options: AOptions) -> Self {
        Self { oracle, core: BCore::new(instance, options) }
    }

    /// Access the shared engine (power-up log etc.).
    #[must_use]
    pub fn core(&self) -> &BCore {
        &self.core
    }

    /// Pricing counters of the prefix solver's engine (`None` when the
    /// engine is off).
    #[must_use]
    pub fn engine_stats(&self) -> Option<rsz_offline::EngineStats> {
        self.core.prefix().engine_stats()
    }

    /// Share the engine's priced-slot pool with other controllers of
    /// the same instance shape. Returns `false` when the engine is off.
    pub fn share_pool(&mut self, pool: rsz_offline::SharedSlotPool) -> bool {
        self.core.share_pool(pool)
    }
}

impl<O: GtOracle + Sync> OnlineAlgorithm for AlgorithmB<O> {
    fn name(&self) -> String {
        "Algorithm B".into()
    }

    fn decide(&mut self, instance: &Instance, t: usize) -> Config {
        self.core.step(instance, &self.oracle, t, instance.load(t), 1.0)
    }
}

impl<O: GtOracle + Sync> Checkpoint for AlgorithmB<O> {
    fn algo_tag(&self) -> &'static str {
        "algo-b"
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.core.save_state(enc);
    }

    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError> {
        self.core.restore_state(instance, dec)
    }
}

/// The instance constant `c(I) = Σ_j max_t l_{t,j}/β_j` appearing in
/// Theorem 13. Returns `∞` if some type has `β_j = 0` but a positive
/// idle cost somewhere.
#[must_use]
pub fn c_constant(instance: &Instance) -> f64 {
    (0..instance.num_types())
        .map(|j| {
            let beta = instance.switching_cost(j);
            let max_idle =
                (0..instance.horizon()).map(|t| instance.idle_cost(t, j)).fold(0.0_f64, f64::max);
            if max_idle == 0.0 {
                0.0
            } else if beta == 0.0 {
                f64::INFINITY
            } else {
                max_idle / beta
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, run_with_prefix_revelation};
    use rsz_core::{CostModel, CostSpec, ServerType};
    use rsz_dispatch::Dispatcher;
    use rsz_offline::dp::{solve, DpOptions as OffOptions};

    /// The Figure 3 setting: one type, β = 6, idle costs varying per slot.
    fn figure3_instance() -> Instance {
        let idle = vec![3.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0, 2.0, 3.0, 5.0, 1.0, 3.0];
        let spec = CostSpec::scaled(CostModel::constant(1.0), idle);
        Instance::builder()
            .server_type(ServerType::with_spec("a", 3, 6.0, 1.0, spec))
            // loads shaped so the prefix optimum follows Figure 3's x̂ row
            .loads(vec![1.0, 2.0, 1.0, 3.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 0.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn schedule_feasible_and_dominates_prefix() {
        let inst = figure3_instance();
        let oracle = Dispatcher::new();
        let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut b, &oracle);
        run.schedule.check_feasible(&inst).unwrap();
    }

    #[test]
    fn batch_runtime_follows_accumulated_idle_rule() {
        // One spike at t=0, then varying idle costs; β = 6.
        // Idle after power-up: l_1=1, l_2=4, l_3=1 → acc 1,5,6 ≤ 6;
        // l_4=2 → 8 > 6: shut at t=4.
        let idle = vec![3.0, 1.0, 4.0, 1.0, 2.0, 1.0, 1.0];
        let spec = CostSpec::scaled(CostModel::constant(1.0), idle);
        let inst = Instance::builder()
            .server_type(ServerType::with_spec("a", 2, 6.0, 1.0, spec))
            .loads(vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
        let run = run(&inst, &mut b, &oracle);
        let counts: Vec<u32> = run.schedule.configs().iter().map(|c| c.count(0)).collect();
        assert_eq!(counts, vec![2, 2, 2, 2, 0, 0, 0]);
    }

    #[test]
    fn competitive_bound_of_theorem_13_holds() {
        let inst = figure3_instance();
        let oracle = Dispatcher::new();
        let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
        let online = run(&inst, &mut b, &oracle);
        let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
        let d = inst.num_types() as f64;
        let bound = (2.0 * d + 1.0 + c_constant(&inst)) * opt.cost;
        assert!(online.cost() <= bound + 1e-9, "B cost {} vs bound {bound}", online.cost());
    }

    #[test]
    fn c_constant_matches_hand_computation() {
        let inst = figure3_instance();
        // max idle = 5, β = 6
        assert!((c_constant(&inst) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn is_genuinely_online() {
        let inst = figure3_instance();
        let oracle = Dispatcher::new();
        let mut b1 = AlgorithmB::new(&inst, oracle, AOptions::default());
        let full = run(&inst, &mut b1, &oracle);
        let mut b2 = AlgorithmB::new(&inst, oracle, AOptions::default());
        let revealed = run_with_prefix_revelation(&inst, &mut b2, &oracle);
        assert_eq!(full.schedule, revealed.schedule);
    }

    #[test]
    fn works_on_heterogeneous_time_dependent_costs() {
        let price = vec![1.0, 2.0, 0.5, 1.5, 3.0, 1.0];
        let inst = Instance::builder()
            .server_type(ServerType::with_spec(
                "cpu",
                3,
                4.0,
                1.0,
                CostSpec::scaled(CostModel::linear(0.5, 1.0), price.clone()),
            ))
            .server_type(ServerType::with_spec(
                "gpu",
                2,
                8.0,
                3.0,
                CostSpec::scaled(CostModel::power(1.0, 0.5, 2.0), price),
            ))
            .loads(vec![2.0, 5.0, 1.0, 7.0, 3.0, 0.0])
            .build()
            .unwrap();
        let oracle = Dispatcher::new();
        let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
        let online = run(&inst, &mut b, &oracle);
        online.schedule.check_feasible(&inst).unwrap();
        let opt = solve(&inst, &oracle, OffOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * 2.0 + 1.0 + c_constant(&inst)) * opt.cost;
        assert!(online.cost() <= bound + 1e-9);
    }
}

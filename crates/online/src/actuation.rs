//! Actuation: from count schedules to per-server power commands.
//!
//! The paper's model (and every solver in this workspace) decides *how
//! many* servers of each type run per slot. A cluster controller must
//! turn that into *which* physical server to power up or down. This
//! module materializes a [`Schedule`] into an ordered command stream,
//! parameterized by the power-down selection policy:
//!
//! * [`DownPolicy::Lifo`] — retire the most recently started server
//!   first. Keeps a stable core of long-running machines (good for cache
//!   warmth and for licensing models tied to specific hosts) but
//!   concentrates power cycles on a few "swing" servers.
//! * [`DownPolicy::Fifo`] — retire the longest-running server first.
//!   Spreads both uptime and power cycles evenly (wear leveling).
//!
//! The plan is validated against the schedule (commands replayed slot by
//! slot must reproduce the counts exactly) and reports per-server wear
//! statistics, which the `diurnal_fleet` example surfaces.

use rsz_core::{Instance, Schedule};

/// Power a specific server up or down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerAction {
    /// Switch the server from inactive to active (costs `β_j`).
    PowerUp,
    /// Switch the server from active to inactive (free in the model).
    PowerDown,
}

/// One command in the actuation stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerCommand {
    /// Slot at whose start the command executes (0-based).
    pub t: usize,
    /// Server type index.
    pub type_index: usize,
    /// Server identifier within the type, `0 .. m_j`.
    pub server_id: u32,
    /// The action.
    pub action: PowerAction,
}

/// Which server to pick when powering down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownPolicy {
    /// Most recently started first (stable core, concentrated wear).
    Lifo,
    /// Longest running first (wear leveling).
    Fifo,
}

/// Per-server statistics of an actuation plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerStats {
    /// Type index.
    pub type_index: usize,
    /// Server identifier.
    pub server_id: u32,
    /// Slots spent active.
    pub active_slots: u64,
    /// Number of power-up operations ("cycles" for wear purposes).
    pub power_ups: u64,
}

/// A materialized schedule: the command stream plus wear statistics.
#[derive(Clone, Debug)]
pub struct ActuationPlan {
    /// Commands in execution order (grouped by slot).
    pub commands: Vec<PowerCommand>,
    /// Per-server statistics, all types concatenated.
    pub server_stats: Vec<ServerStats>,
}

impl ActuationPlan {
    /// Maximum power cycles over all servers of a type — the wear
    /// hot-spot metric LIFO concentrates and FIFO flattens.
    #[must_use]
    pub fn max_cycles(&self, type_index: usize) -> u64 {
        self.server_stats
            .iter()
            .filter(|s| s.type_index == type_index)
            .map(|s| s.power_ups)
            .max()
            .unwrap_or(0)
    }

    /// Total power-up commands of a type (= the schedule's power-ups).
    #[must_use]
    pub fn total_cycles(&self, type_index: usize) -> u64 {
        self.server_stats.iter().filter(|s| s.type_index == type_index).map(|s| s.power_ups).sum()
    }
}

/// Materialize `schedule` into per-server commands under `policy`.
///
/// # Panics
/// Panics if the schedule is infeasible for the instance (callers hold a
/// feasibility proof from [`Schedule::check_feasible`]); fallible
/// callers — anything fed from external traces or event streams — use
/// [`try_actuate`].
#[must_use]
pub fn actuate(instance: &Instance, schedule: &Schedule, policy: DownPolicy) -> ActuationPlan {
    schedule.check_feasible(instance).expect("actuate requires a feasible schedule");
    actuate_unchecked(instance, schedule, policy)
}

/// [`actuate`] without the panic: an infeasible schedule (overfull
/// counts after a capacity event, volume exceeding fleet capacity)
/// comes back as the structured [`rsz_core::InstanceError`] instead.
pub fn try_actuate(
    instance: &Instance,
    schedule: &Schedule,
    policy: DownPolicy,
) -> Result<ActuationPlan, rsz_core::InstanceError> {
    schedule.check_feasible(instance)?;
    Ok(actuate_unchecked(instance, schedule, policy))
}

fn actuate_unchecked(
    instance: &Instance,
    schedule: &Schedule,
    policy: DownPolicy,
) -> ActuationPlan {
    let d = instance.num_types();
    let mut commands = Vec::new();
    // Active stacks per type: server ids in power-up order (oldest first).
    let mut active: Vec<Vec<u32>> = vec![Vec::new(); d];
    // Free pools per type: ids not currently active, most recently freed
    // last (reused LIFO so ids stay compact).
    let mut free: Vec<Vec<u32>> =
        (0..d).map(|j| (0..instance.max_counts()[j]).rev().collect()).collect();
    let mut stats: Vec<Vec<ServerStats>> = (0..d)
        .map(|j| {
            (0..instance.max_counts()[j])
                .map(|id| ServerStats {
                    type_index: j,
                    server_id: id,
                    active_slots: 0,
                    power_ups: 0,
                })
                .collect()
        })
        .collect();

    for (t, cfg) in schedule.iter() {
        for j in 0..d {
            let want = cfg.count(j) as usize;
            while active[j].len() > want {
                let id = match policy {
                    DownPolicy::Lifo => active[j].pop().expect("non-empty"),
                    DownPolicy::Fifo => active[j].remove(0),
                };
                commands.push(PowerCommand {
                    t,
                    type_index: j,
                    server_id: id,
                    action: PowerAction::PowerDown,
                });
                free[j].push(id);
            }
            while active[j].len() < want {
                let id = free[j].pop().expect("schedule within fleet bounds");
                commands.push(PowerCommand {
                    t,
                    type_index: j,
                    server_id: id,
                    action: PowerAction::PowerUp,
                });
                stats[j][id as usize].power_ups += 1;
                active[j].push(id);
            }
            for &id in &active[j] {
                stats[j][id as usize].active_slots += 1;
            }
        }
    }
    ActuationPlan { commands, server_stats: stats.into_iter().flatten().collect() }
}

/// Replay a command stream and check it reproduces the schedule's counts
/// (used by tests and by downstream integrations as a safety net).
#[must_use]
pub fn replay_matches(instance: &Instance, schedule: &Schedule, plan: &ActuationPlan) -> bool {
    let d = instance.num_types();
    let mut active: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); d];
    let mut cmd_iter = plan.commands.iter().peekable();
    for (t, cfg) in schedule.iter() {
        while let Some(c) = cmd_iter.peek() {
            if c.t != t {
                break;
            }
            let c = cmd_iter.next().expect("peeked");
            let set = &mut active[c.type_index];
            match c.action {
                PowerAction::PowerUp => {
                    if !set.insert(c.server_id) {
                        return false; // powered an already-active server
                    }
                }
                PowerAction::PowerDown => {
                    if !set.remove(&c.server_id) {
                        return false; // powered down an inactive server
                    }
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // j indexes active and the config
        for j in 0..d {
            if active[j].len() != cfg.count(j) as usize {
                return false;
            }
        }
    }
    cmd_iter.next().is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsz_core::CostModel;
    use rsz_core::ServerType;

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 3, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![2.0, 1.0, 3.0, 0.0, 2.0])
            .build()
            .unwrap();
        let sched = Schedule::from_counts(vec![vec![2], vec![1], vec![3], vec![0], vec![2]]);
        (inst, sched)
    }

    #[test]
    fn plans_replay_to_the_schedule() {
        let (inst, sched) = setup();
        for policy in [DownPolicy::Lifo, DownPolicy::Fifo] {
            let plan = actuate(&inst, &sched, policy);
            assert!(replay_matches(&inst, &sched, &plan), "{policy:?}");
        }
    }

    #[test]
    fn total_cycles_match_schedule_power_ups() {
        let (inst, sched) = setup();
        let ups = sched.power_ups(1)[0];
        for policy in [DownPolicy::Lifo, DownPolicy::Fifo] {
            let plan = actuate(&inst, &sched, policy);
            assert_eq!(plan.total_cycles(0), ups);
        }
    }

    #[test]
    fn fifo_levels_wear_lifo_concentrates_it() {
        // Oscillating schedule: 2 ↔ 1 repeatedly. LIFO cycles the same
        // swing server; FIFO rotates.
        let inst = Instance::builder()
            .server_type(ServerType::new("a", 2, 1.0, 1.0, CostModel::constant(1.0)))
            .loads(vec![2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0])
            .build()
            .unwrap();
        let counts: Vec<Vec<u32>> =
            vec![vec![2], vec![1], vec![2], vec![1], vec![2], vec![1], vec![2]];
        let sched = Schedule::from_counts(counts);
        let lifo = actuate(&inst, &sched, DownPolicy::Lifo);
        let fifo = actuate(&inst, &sched, DownPolicy::Fifo);
        assert!(replay_matches(&inst, &sched, &lifo));
        assert!(replay_matches(&inst, &sched, &fifo));
        assert!(
            lifo.max_cycles(0) > fifo.max_cycles(0),
            "LIFO {} vs FIFO {}",
            lifo.max_cycles(0),
            fifo.max_cycles(0)
        );
        assert_eq!(lifo.total_cycles(0), fifo.total_cycles(0));
    }

    #[test]
    fn active_slots_sum_matches_schedule() {
        let (inst, sched) = setup();
        let plan = actuate(&inst, &sched, DownPolicy::Fifo);
        let total_active: u64 = plan.server_stats.iter().map(|s| s.active_slots).sum();
        let expected: u64 = (0..sched.len()).map(|t| u64::from(sched.count(t, 0))).sum();
        assert_eq!(total_active, expected);
    }

    #[test]
    fn commands_are_slot_ordered() {
        let (inst, sched) = setup();
        let plan = actuate(&inst, &sched, DownPolicy::Lifo);
        assert!(plan.commands.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn replay_detects_corruption() {
        let (inst, sched) = setup();
        let mut plan = actuate(&inst, &sched, DownPolicy::Lifo);
        // Corrupt: drop the last command.
        plan.commands.pop();
        assert!(!replay_matches(&inst, &sched, &plan));
    }
}

//! Checkpoint/restore for online controllers.
//!
//! A long-lived controller (the ROADMAP's `rsz serve` daemon, or
//! `rsz simulate --snapshot-every K`) must survive a process restart
//! mid-horizon. This module defines the [`Checkpoint`] trait every
//! shipping controller implements (A, B, C, LCP, RHC) plus the sealed
//! **run snapshot**: algorithm tag, an instance fingerprint, the
//! schedule committed so far, and the controller's serialized state —
//! all inside `rsz_offline`'s versioned, checksummed envelope.
//!
//! The contract, property-tested in `tests/chaos.rs` and
//! `crates/offline/tests/snapshot_props.rs`: build a controller with
//! the **same instance and options**, [`restore_run`] it, continue
//! deciding from the returned schedule's length — and the completed
//! schedule and its cost are **bit-identical** to a run that never
//! stopped. The state each controller serializes is the minimal
//! resumable core (counters, tables, batch/ring bookkeeping); scratch
//! buffers, pool entries and cached grids are rebuilt deterministically
//! on the first post-restore decision.

use rsz_core::objective::evaluate;
use rsz_core::{Config, GtOracle, Instance, Schedule};
use rsz_offline::engine::snapshot;
use rsz_offline::{Decoder, Encoder, SnapshotError};

use crate::runner::{LatencyProfile, OnlineAlgorithm, OnlineRun};

/// An online controller whose mid-run state can be serialized and
/// restored. Implementations must be *deterministic*: restoring into a
/// freshly built controller (same instance, same options) and stepping
/// the remaining slots reproduces the uninterrupted run bit for bit.
pub trait Checkpoint {
    /// Stable tag identifying the concrete algorithm inside a snapshot
    /// (restoring under a different tag fails instead of misreading the
    /// payload).
    fn algo_tag(&self) -> &'static str;

    /// Serialize the resumable state into `enc`.
    fn save_state(&self, enc: &mut Encoder);

    /// Restore state written by [`Checkpoint::save_state`]. `self` must
    /// have been built against the same `instance` with the same
    /// options.
    fn restore_state(
        &mut self,
        instance: &Instance,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapshotError>;
}

/// A fingerprint of the instance a snapshot was taken against: horizon,
/// type count, per-type fleet bounds and every load's bit pattern,
/// hashed with the snapshot checksum. Restoring against a different
/// instance fails structurally instead of resuming into nonsense.
#[must_use]
fn instance_fingerprint(instance: &Instance) -> u64 {
    let mut enc = Encoder::new();
    enc.put_usize(instance.horizon());
    enc.put_usize(instance.num_types());
    for &m in &instance.max_counts() {
        enc.put_u32(m);
    }
    for &l in instance.loads() {
        enc.put_f64(l);
    }
    snapshot::checksum(enc.payload())
}

/// Seal a full run snapshot: the controller's tag and state plus the
/// schedule committed so far (`committed.len()` is the slot the resumed
/// run continues from).
#[must_use]
pub fn save_run(algo: &impl Checkpoint, instance: &Instance, committed: &Schedule) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(algo.algo_tag().as_bytes());
    enc.put_u64(instance_fingerprint(instance));
    enc.put_usize(committed.len());
    for (_, config) in committed.iter() {
        enc.put_usize(config.counts().len());
        for &c in config.counts() {
            enc.put_u32(c);
        }
    }
    algo.save_state(&mut enc);
    enc.into_sealed()
}

/// Open a run snapshot and restore `algo` from it, returning the
/// schedule committed before the interruption. The controller must be
/// freshly built for `instance` with the options the snapshotted run
/// used; continue deciding at `t = returned.len()`.
pub fn restore_run(
    algo: &mut impl Checkpoint,
    instance: &Instance,
    bytes: &[u8],
) -> Result<Schedule, SnapshotError> {
    let mut dec = Decoder::from_sealed(bytes)?;
    let tag = dec.take_bytes()?;
    if tag != algo.algo_tag().as_bytes() {
        return Err(SnapshotError::Corrupt("snapshot was taken by a different algorithm"));
    }
    if dec.take_u64()? != instance_fingerprint(instance) {
        return Err(SnapshotError::Corrupt("snapshot was taken against a different instance"));
    }
    let len = dec.take_usize()?;
    if len > instance.horizon() {
        return Err(SnapshotError::Corrupt("committed schedule exceeds the horizon"));
    }
    let mut committed = Schedule::empty();
    for _ in 0..len {
        let d = dec.take_usize()?;
        if d != instance.num_types() {
            return Err(SnapshotError::Corrupt("committed config has the wrong dimension"));
        }
        let mut counts = Vec::with_capacity(d);
        for _ in 0..d {
            counts.push(dec.take_u32()?);
        }
        committed.push(Config::new(counts));
    }
    algo.restore_state(instance, &mut dec)?;
    Ok(committed)
}

/// Drive a checkpointable controller over the instance, optionally
/// resuming from a prior run snapshot and emitting fresh snapshots as
/// the run progresses — the engine behind
/// `rsz simulate --snapshot-every K --resume FILE`.
///
/// * `resume` — a sealed run snapshot to restore before deciding; its
///   committed schedule seeds the run and deciding continues at
///   `committed.len()`.
/// * `snapshot_every` — emit a [`save_run`] snapshot through `sink`
///   after every `K` freshly decided slots (the final state is *not*
///   snapshotted: a finished run has nothing to resume).
///
/// The latency profile covers only the freshly decided slots — restored
/// slots were paid for by the interrupted process. The completed
/// schedule is bit-identical to an uninterrupted run's ([`Checkpoint`]
/// contract).
pub fn run_checkpointed<A, F>(
    instance: &Instance,
    algo: &mut A,
    oracle: &dyn GtOracle,
    resume: Option<&[u8]>,
    snapshot_every: Option<usize>,
    mut sink: F,
) -> Result<(OnlineRun, LatencyProfile), SnapshotError>
where
    A: OnlineAlgorithm + Checkpoint,
    F: FnMut(&[u8]),
{
    let mut schedule = match resume {
        Some(bytes) => restore_run(algo, instance, bytes)?,
        None => Schedule::empty(),
    };
    let start = schedule.len();
    let mut samples = Vec::with_capacity(instance.horizon().saturating_sub(start));
    for t in start..instance.horizon() {
        let clock = std::time::Instant::now();
        let decision = algo.decide(instance, t);
        samples.push(clock.elapsed().as_secs_f64());
        schedule.push(decision);
        if let Some(every) = snapshot_every {
            if every > 0 && (t + 1 - start) % every == 0 && t + 1 < instance.horizon() {
                sink(&save_run(algo, instance, &schedule));
            }
        }
    }
    let breakdown = evaluate(instance, &schedule, oracle);
    Ok((OnlineRun { name: algo.name(), schedule, breakdown }, LatencyProfile::new(samples)))
}

/// Shared codec helpers for the per-algorithm [`Checkpoint`] impls.
pub(crate) mod codec {
    use super::{Config, Decoder, Encoder, SnapshotError};

    pub(crate) fn put_u32s(enc: &mut Encoder, v: &[u32]) {
        enc.put_usize(v.len());
        for &x in v {
            enc.put_u32(x);
        }
    }

    pub(crate) fn take_u32s(dec: &mut Decoder<'_>, max: usize) -> Result<Vec<u32>, SnapshotError> {
        let len = dec.take_usize()?;
        if len > max {
            return Err(SnapshotError::Corrupt("u32 sequence length out of range"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(dec.take_u32()?);
        }
        Ok(out)
    }

    pub(crate) fn put_config_opt(enc: &mut Encoder, v: Option<&Config>) {
        match v {
            None => enc.put_u8(0),
            Some(c) => {
                enc.put_u8(1);
                put_u32s(enc, c.counts());
            }
        }
    }

    pub(crate) fn take_config_opt(
        dec: &mut Decoder<'_>,
        d: usize,
    ) -> Result<Option<Config>, SnapshotError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => {
                let counts = take_u32s(dec, d)?;
                if counts.len() != d {
                    return Err(SnapshotError::Corrupt("config has the wrong dimension"));
                }
                Ok(Some(Config::new(counts)))
            }
            _ => Err(SnapshotError::Corrupt("unknown option tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo_a::{AOptions, AlgorithmA};
    use crate::runner::{run, OnlineAlgorithm};
    use rsz_core::{CostModel, ServerType};
    use rsz_dispatch::Dispatcher;

    fn instance() -> Instance {
        Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("b", 2, 4.0, 2.0, CostModel::constant(1.2)))
            .loads(vec![1.0, 4.0, 0.0, 2.0, 5.0, 1.0, 0.0, 3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn run_snapshot_round_trips_mid_horizon() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut full = AlgorithmA::new(&inst, oracle, AOptions::default());
        let want = run(&inst, &mut full, &oracle);

        let mut first = AlgorithmA::new(&inst, oracle, AOptions::default());
        let mut committed = Schedule::empty();
        for t in 0..4 {
            committed.push(first.decide(&inst, t));
        }
        let snap = save_run(&first, &inst, &committed);

        let mut resumed = AlgorithmA::new(&inst, oracle, AOptions::default());
        let mut schedule = restore_run(&mut resumed, &inst, &snap).unwrap();
        for t in schedule.len()..inst.horizon() {
            schedule.push(resumed.decide(&inst, t));
        }
        assert_eq!(schedule, want.schedule);
    }

    #[test]
    fn checkpointed_run_resumes_from_emitted_snapshots() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let mut plain = AlgorithmA::new(&inst, oracle, AOptions::default());
        let want = run(&inst, &mut plain, &oracle);

        // A full checkpointed run emits ⌈T/3⌉-1 snapshots (none at the end).
        let mut snaps: Vec<Vec<u8>> = Vec::new();
        let mut first = AlgorithmA::new(&inst, oracle, AOptions::default());
        let (got, profile) =
            run_checkpointed(&inst, &mut first, &oracle, None, Some(3), |b| snaps.push(b.to_vec()))
                .unwrap();
        assert_eq!(got.schedule, want.schedule);
        assert_eq!(profile.samples().len(), inst.horizon());
        assert_eq!(snaps.len(), 2, "8 slots / every 3 → snapshots after slots 3 and 6");

        // Resume from the last snapshot: remaining slots only, same run.
        let mut resumed = AlgorithmA::new(&inst, oracle, AOptions::default());
        let (rerun, reprofile) =
            run_checkpointed(&inst, &mut resumed, &oracle, Some(&snaps[1]), None, |_| {}).unwrap();
        assert_eq!(rerun.schedule, want.schedule);
        assert_eq!(rerun.cost().to_bits(), want.cost().to_bits());
        assert_eq!(reprofile.samples().len(), 2, "6 of 8 slots were restored");
    }

    #[test]
    fn restore_rejects_wrong_algorithm_and_instance() {
        let inst = instance();
        let oracle = Dispatcher::new();
        let a = AlgorithmA::new(&inst, oracle, AOptions::default());
        let snap = save_run(&a, &inst, &Schedule::empty());

        let other = Instance::builder()
            .server_type(ServerType::new("a", 3, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
            .server_type(ServerType::new("b", 2, 4.0, 2.0, CostModel::constant(1.2)))
            .loads(vec![2.0, 4.0, 0.0, 2.0, 5.0, 1.0, 0.0, 3.0])
            .build()
            .unwrap();
        let mut fresh = AlgorithmA::new(&other, oracle, AOptions::default());
        assert_eq!(
            restore_run(&mut fresh, &other, &snap).unwrap_err(),
            SnapshotError::Corrupt("snapshot was taken against a different instance")
        );

        let mut b = crate::algo_b::AlgorithmB::new(&inst, oracle, AOptions::default());
        assert_eq!(
            restore_run(&mut b, &inst, &snap).unwrap_err(),
            SnapshotError::Corrupt("snapshot was taken by a different algorithm")
        );
    }
}

//! # rsz-online — the paper's online algorithms (Sections 2–3)
//!
//! * [`algo_a`] — **Algorithm A** for time-independent operating costs:
//!   `(2d+1)`-competitive (Theorem 8), `2d`-competitive when costs are
//!   also load-independent (Corollary 9).
//! * [`algo_b`] — **Algorithm B** for time-dependent costs:
//!   `(2d+1+c(I))`-competitive with `c(I) = Σ_j max_t l_{t,j}/β_j`
//!   (Theorem 13).
//! * [`algo_c`] — **Algorithm C**: runs B on a sub-slot refinement to push
//!   the ratio down to `2d+1+ε` for any `ε > 0` (Theorem 15).
//! * [`lcp`] — discrete Lazy Capacity Provisioning for `d = 1`, in the
//!   spirit of the optimal homogeneous algorithm of Albers & Quedenfeld
//!   (SPAA'18) that this paper generalizes; the homogeneous baseline.
//! * [`baselines`] — practical heuristics every data-center operator
//!   would reach for first (all-on, myopic, reactive-with-timeout,
//!   optimal static provisioning), used in the motivation experiments.
//! * [`blocks`] — the block/special-slot decomposition of the
//!   competitive analysis (Figure 2), exposed so experiments can verify
//!   the proof's combinatorial invariants on real runs.
//! * [`runner`] — drives any [`OnlineAlgorithm`] over an instance slot by
//!   slot and prices the resulting schedule.
//! * [`actuation`] — materializes count schedules into per-server power
//!   commands with wear-leveling policies (the integration surface a
//!   cluster controller consumes).
//! * [`checkpoint`] — snapshot/restore for every shipping controller:
//!   interrupted runs restart mid-horizon and continue bit-identically
//!   (versioned, checksummed envelopes via `rsz_offline`'s snapshot
//!   layer).
//! * [`degrade`] — the graceful-degradation ladder: per-decision
//!   deadline budgets falling back exact → `Γ(γ₀)`-coarse →
//!   hold-previous, with per-rung counters and structured saturation
//!   reports instead of assertions.
//!
//! All algorithms consume the instance strictly online: `decide(inst, t)`
//! may inspect loads and cost functions of slots `≤ t` only (a
//! convention the runner's prefix-revelation test mode verifies).

#![warn(missing_docs)]

pub mod actuation;
pub mod algo_a;
pub mod algo_b;
pub mod algo_c;
pub mod baselines;
pub mod blocks;
pub mod checkpoint;
pub mod degrade;
pub mod lcp;
pub mod receding;
pub mod runner;

pub use algo_a::AlgorithmA;
pub use algo_b::AlgorithmB;
pub use algo_c::AlgorithmC;
pub use checkpoint::{restore_run, run_checkpointed, save_run, Checkpoint};
pub use degrade::{DegradeOptions, DegradeStats, GracefulDegrader, Rung};
pub use lcp::LazyCapacityProvisioning;
pub use receding::RecedingHorizon;
pub use runner::{run, run_instrumented, LatencyProfile, OnlineAlgorithm, OnlineRun};

//! Engine parity: the online decision engine (in-place stepping, dense
//! priced-slot reuse, sub-slot replay) must be a pure performance
//! change. For every algorithm (A, B, C, LCP, RHC), every grid (Full,
//! Gamma(1.5)) and every oracle (plain, cached), engine-on and
//! engine-off runs must commit **identical schedules**, and the prefix
//! tables themselves must agree to the documented relative `1e-9` sweep
//! tolerance.

use proptest::prelude::*;
use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::dp::DpOptions;
use rsz_offline::{GridMode, PrefixDp};
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_b::AlgorithmB;
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::run;
use rsz_online::{LazyCapacityProvisioning, RecedingHorizon};

#[derive(Clone, Debug)]
struct Spec {
    d: usize,
    counts: Vec<u32>,
    betas: Vec<f64>,
    idles: Vec<f64>,
    load_fracs: Vec<f64>,
    price: Vec<f64>,
}

fn spec_strategy(max_d: usize, max_t: usize) -> impl Strategy<Value = Spec> {
    (1..=max_d).prop_flat_map(move |d| {
        (
            prop::collection::vec(1u32..=3, d..=d),
            prop::collection::vec(0.1..4.0_f64, d..=d),
            prop::collection::vec(0.1..2.0_f64, d..=d),
            prop::collection::vec(0.0..1.0_f64, 2..=max_t),
            prop::collection::vec(0.2..2.5_f64, max_t..=max_t),
        )
            .prop_map(move |(counts, betas, idles, load_fracs, price)| Spec {
                d,
                counts,
                betas,
                idles,
                load_fracs,
                price,
            })
    })
}

fn time_independent(spec: &Spec) -> Instance {
    let types: Vec<ServerType> = (0..spec.d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                spec.counts[j],
                spec.betas[j],
                1.0 + j as f64,
                CostModel::linear(spec.idles[j], 0.5),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<_>>())
        .build()
        .expect("feasible by construction")
}

fn time_dependent(spec: &Spec) -> Instance {
    let horizon = spec.load_fracs.len();
    let types: Vec<ServerType> = (0..spec.d)
        .map(|j| {
            ServerType::with_spec(
                format!("t{j}"),
                spec.counts[j],
                spec.betas[j],
                1.0 + j as f64,
                CostSpec::scaled(
                    CostModel::linear(spec.idles[j], 0.5),
                    spec.price[..horizon].to_vec(),
                ),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<_>>())
        .build()
        .expect("feasible by construction")
}

/// Drive `(engine_on, cached)` combinations and compare schedules.
fn assert_engine_parity<F>(inst: &Instance, label: &str, mut drive: F)
where
    F: FnMut(&Instance, bool, bool) -> rsz_core::Schedule,
{
    for cached in [false, true] {
        let off = drive(inst, false, cached);
        let on = drive(inst, true, cached);
        assert_eq!(off, on, "{label} cached={cached}: engine changed the schedule");
    }
}

fn a_options(engine: bool, grid: GridMode) -> AOptions {
    AOptions { grid, engine, ..AOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Algorithms A (time-independent), B and C (time-dependent), over
    /// both grids and both oracles: engine on/off schedules identical.
    #[test]
    fn algorithms_abc_schedules_invariant_under_engine(spec in spec_strategy(2, 7)) {
        for grid in [GridMode::Full, GridMode::Gamma(1.5)] {
            let ti = time_independent(&spec);
            assert_engine_parity(&ti, "A", |inst, engine, cached| {
                let opts = a_options(engine, grid);
                if cached {
                    let oracle = CachedDispatcher::new(inst);
                    let mut a = AlgorithmA::new(inst, oracle.clone(), opts);
                    run(inst, &mut a, &oracle).schedule
                } else {
                    let oracle = Dispatcher::new();
                    let mut a = AlgorithmA::new(inst, oracle, opts);
                    run(inst, &mut a, &oracle).schedule
                }
            });

            let td = time_dependent(&spec);
            assert_engine_parity(&td, "B", |inst, engine, cached| {
                let opts = a_options(engine, grid);
                if cached {
                    let oracle = CachedDispatcher::new(inst);
                    let mut b = AlgorithmB::new(inst, oracle.clone(), opts);
                    run(inst, &mut b, &oracle).schedule
                } else {
                    let oracle = Dispatcher::new();
                    let mut b = AlgorithmB::new(inst, oracle, opts);
                    run(inst, &mut b, &oracle).schedule
                }
            });

            assert_engine_parity(&td, "C", |inst, engine, cached| {
                let opts = COptions { epsilon: 0.5, base: a_options(engine, grid), ..Default::default() };
                if cached {
                    let oracle = CachedDispatcher::new(inst);
                    let mut c = AlgorithmC::new(inst, oracle.clone(), opts);
                    run(inst, &mut c, &oracle).schedule
                } else {
                    let oracle = Dispatcher::new();
                    let mut c = AlgorithmC::new(inst, oracle, opts);
                    run(inst, &mut c, &oracle).schedule
                }
            });
        }
    }

    /// LCP (d = 1) and RHC: engine on/off schedules identical.
    #[test]
    fn lcp_and_rhc_schedules_invariant_under_engine(spec in spec_strategy(1, 7), window in 1usize..4) {
        let ti = time_independent(&spec);
        assert_engine_parity(&ti, "LCP", |inst, engine, cached| {
            let opts = DpOptions { engine, parallel: false, ..DpOptions::default() };
            if cached {
                let oracle = CachedDispatcher::new(inst);
                let mut l = LazyCapacityProvisioning::with_options(inst, oracle.clone(), opts);
                run(inst, &mut l, &oracle).schedule
            } else {
                let oracle = Dispatcher::new();
                let mut l = LazyCapacityProvisioning::with_options(inst, oracle, opts);
                run(inst, &mut l, &oracle).schedule
            }
        });

        let td = time_dependent(&spec);
        assert_engine_parity(&td, "RHC", |inst, engine, cached| {
            let opts = DpOptions { engine, parallel: false, ..DpOptions::default() };
            if cached {
                let oracle = CachedDispatcher::new(inst);
                let mut r = RecedingHorizon::new(oracle.clone(), window).with_options(opts);
                run(inst, &mut r, &oracle).schedule
            } else {
                let oracle = Dispatcher::new();
                let mut r = RecedingHorizon::new(oracle, window).with_options(opts);
                run(inst, &mut r, &oracle).schedule
            }
        });
    }

    /// RHC with corridor-banded windows (`DpOptions::refine`) commits
    /// exactly the plain window DP's schedule, over both grids and both
    /// oracles, on time-independent and time-dependent costs alike.
    #[test]
    fn rhc_schedules_invariant_under_refine(spec in spec_strategy(2, 7), window in 1usize..5) {
        use rsz_offline::refine::RefineOptions;
        for inst in [time_independent(&spec), time_dependent(&spec)] {
            for target in [GridMode::Full, GridMode::Gamma(1.5)] {
                for cached in [false, true] {
                    let plain_opts =
                        DpOptions { grid: target, parallel: false, ..DpOptions::default() };
                    let refined_opts = DpOptions {
                        refine: Some(RefineOptions::exact().with_target(target)),
                        ..plain_opts
                    };
                    let (plain, refined) = if cached {
                        let oracle = CachedDispatcher::new(&inst);
                        let mut a =
                            RecedingHorizon::new(oracle.clone(), window).with_options(plain_opts);
                        let mut b =
                            RecedingHorizon::new(oracle.clone(), window).with_options(refined_opts);
                        (run(&inst, &mut a, &oracle).schedule, run(&inst, &mut b, &oracle).schedule)
                    } else {
                        let oracle = Dispatcher::new();
                        let mut a = RecedingHorizon::new(oracle, window).with_options(plain_opts);
                        let mut b = RecedingHorizon::new(oracle, window).with_options(refined_opts);
                        (run(&inst, &mut a, &oracle).schedule, run(&inst, &mut b, &oracle).schedule)
                    };
                    prop_assert_eq!(
                        &plain, &refined,
                        "w={} target={:?} cached={}: banded windows changed the schedule",
                        window, target, cached
                    );
                }
            }
        }
    }

    /// The rolling prefix tables themselves agree cell-by-cell within
    /// the sweep tolerance, engine-on vs engine-off, on both cost
    /// shapes.
    #[test]
    fn prefix_tables_match_within_tolerance(spec in spec_strategy(2, 7)) {
        for inst in [time_independent(&spec), time_dependent(&spec)] {
            let oracle = Dispatcher::new();
            let base = DpOptions { parallel: false, ..DpOptions::default() };
            let mut legacy = PrefixDp::new(&inst, base);
            let mut engine = PrefixDp::new(&inst, DpOptions { engine: true, ..base });
            for t in 0..inst.horizon() {
                let a = legacy.step(&inst, &oracle, t);
                let b = engine.step(&inst, &oracle, t);
                prop_assert_eq!(a, b, "t={}: prefix argmin diverged", t);
                prop_assert_eq!(legacy.table().len(), engine.table().len());
                for i in 0..legacy.table().len() {
                    let (x, y) = (legacy.table().values()[i], engine.table().values()[i]);
                    prop_assert!(
                        (x == y) || (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                        "t={} cell {}: {} vs {}", t, i, x, y
                    );
                }
            }
        }
    }

    /// Algorithm C with the engine prices each original slot exactly
    /// once, whatever ñ_t the refinement picks.
    #[test]
    fn algorithm_c_prices_each_slot_once(spec in spec_strategy(2, 7), eps in 0.1..1.0_f64) {
        let inst = time_dependent(&spec);
        let oracle = Dispatcher::new();
        let mut c = AlgorithmC::new(
            &inst,
            oracle,
            COptions { epsilon: eps, base: AOptions::engined(), ..Default::default() },
        );
        let _ = run(&inst, &mut c, &oracle);
        let subslots: usize = c.subslot_log().iter().sum();
        let stats = c.engine_stats().expect("engine on");
        prop_assert_eq!(
            stats.pricings,
            inst.horizon() as u64,
            "pricings must equal original slots (ñ total = {})", subslots
        );
        prop_assert_eq!(stats.pool_hits, (subslots - inst.horizon()) as u64);
    }
}

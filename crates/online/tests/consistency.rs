//! Consistency relations between the online algorithms that the paper
//! implies but never states as test cases:
//!
//! * A and B differ only in the power-down rule; on time-independent
//!   costs their runtimes differ by at most one slot, so their costs
//!   stay within each other's proven envelopes.
//! * C with `ñ_t ≡ 1` is exactly B.
//! * Actuating any algorithm's schedule reproduces its counts.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve_cost_only, DpOptions};
use rsz_online::actuation::{actuate, replay_matches, DownPolicy};
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_b::AlgorithmB;
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::run;

fn random_time_independent(rng: &mut StdRng) -> Instance {
    let d = rng.gen_range(1..=2);
    let horizon = rng.gen_range(4..=10);
    let types: Vec<ServerType> = (0..d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                rng.gen_range(1..=3),
                rng.gen_range(0.5..4.0),
                1.0 + j as f64,
                CostModel::linear(rng.gen_range(0.2..1.5), rng.gen_range(0.0..1.0)),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads((0..horizon).map(|_| rng.gen_range(0.0..cap)).collect::<Vec<_>>())
        .build()
        .unwrap()
}

#[test]
fn a_and_b_both_within_their_bounds_on_time_independent_costs() {
    let mut rng = StdRng::seed_from_u64(404);
    let oracle = Dispatcher::new();
    for _ in 0..10 {
        let inst = random_time_independent(&mut rng);
        let d = inst.num_types() as f64;
        let opt =
            solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let run_a = {
            let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
            run(&inst, &mut a, &oracle)
        };
        let run_b = {
            let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
            run(&inst, &mut b, &oracle)
        };
        // Time-independent costs make B a variant of A whose runtime is
        // ⌊β/l⌋+1 instead of ⌈β/l⌉ — both satisfy Theorem 13's envelope
        // (c(I) = l/β per type).
        let c: f64 =
            (0..inst.num_types()).map(|j| inst.idle_cost(0, j) / inst.switching_cost(j)).sum();
        for r in [&run_a, &run_b] {
            assert!(
                r.cost() <= (2.0 * d + 1.0 + c) * opt + 1e-6,
                "{}: {} > {}",
                r.name,
                r.cost(),
                (2.0 * d + 1.0 + c) * opt
            );
        }
    }
}

#[test]
fn c_with_single_subslots_equals_b() {
    // Large ε forces ñ_t = 1 everywhere, making C's refined instance the
    // original — its schedule must equal B's exactly.
    let mut rng = StdRng::seed_from_u64(808);
    let oracle = Dispatcher::new();
    for _ in 0..6 {
        let d = rng.gen_range(1..=2);
        let horizon = rng.gen_range(4..=8);
        let price: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.3..1.2)).collect();
        let types: Vec<ServerType> = (0..d)
            .map(|j| {
                ServerType::with_spec(
                    format!("t{j}"),
                    rng.gen_range(1..=2),
                    // β large relative to idle so d/ε·l/β < 1
                    rng.gen_range(5.0..9.0),
                    1.0,
                    CostSpec::scaled(CostModel::constant(1.0), price.clone()),
                )
            })
            .collect();
        let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
        let inst = Instance::builder()
            .server_types(types)
            .loads((0..horizon).map(|_| rng.gen_range(0.0..cap)).collect::<Vec<_>>())
            .build()
            .unwrap();
        let mut c = AlgorithmC::new(&inst, oracle, COptions { epsilon: 2.0, ..Default::default() });
        // Verify the premise: every slot uses exactly one sub-slot.
        for t in 0..inst.horizon() {
            assert_eq!(c.subslots_for(&inst, t), 1, "premise: ñ_t = 1");
        }
        let run_c = run(&inst, &mut c, &oracle);
        let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
        let run_b = run(&inst, &mut b, &oracle);
        assert_eq!(run_c.schedule, run_b.schedule, "C with ñ≡1 must equal B");
    }
}

#[test]
fn actuation_realizes_every_algorithms_schedule() {
    let mut rng = StdRng::seed_from_u64(99);
    let oracle = Dispatcher::new();
    let inst = random_time_independent(&mut rng);
    let schedules = vec![
        {
            let mut a = AlgorithmA::new(&inst, oracle, AOptions::default());
            run(&inst, &mut a, &oracle).schedule
        },
        {
            let mut b = AlgorithmB::new(&inst, oracle, AOptions::default());
            run(&inst, &mut b, &oracle).schedule
        },
    ];
    for sched in schedules {
        for policy in [DownPolicy::Lifo, DownPolicy::Fifo] {
            let plan = actuate(&inst, &sched, policy);
            assert!(replay_matches(&inst, &sched, &plan));
        }
    }
}

#[test]
fn prefix_backend_gamma_never_undercuts_opt() {
    // Sanity: no configuration of Algorithm A can beat the clairvoyant
    // optimum, whatever backend it runs on.
    let mut rng = StdRng::seed_from_u64(123);
    let oracle = Dispatcher::new();
    for _ in 0..6 {
        let inst = random_time_independent(&mut rng);
        let opt =
            solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        for grid in [
            rsz_offline::GridMode::Full,
            rsz_offline::GridMode::Gamma(1.5),
            rsz_offline::GridMode::Gamma(3.0),
        ] {
            let mut a = AlgorithmA::new(
                &inst,
                oracle,
                AOptions { grid, parallel: false, ..AOptions::default() },
            );
            let r = run(&inst, &mut a, &oracle);
            r.schedule.check_feasible(&inst).unwrap();
            assert!(r.cost() + 1e-9 >= opt, "{grid:?} beat OPT");
        }
    }
}

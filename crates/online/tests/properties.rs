//! Property-based tests for the online algorithms: feasibility (Lemmas 1
//! and 10), the domination invariant, and the theorem-level competitive
//! bounds on randomized instances.

use proptest::prelude::*;
use rsz_core::{Config, CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve_cost_only, DpOptions};
use rsz_offline::{GridMode, PrefixDp};
use rsz_online::algo_a::{AOptions, AlgorithmA};
use rsz_online::algo_b::{c_constant, AlgorithmB};
use rsz_online::algo_c::{AlgorithmC, COptions};
use rsz_online::runner::{run, OnlineAlgorithm};

#[derive(Clone, Debug)]
struct Spec {
    d: usize,
    counts: Vec<u32>,
    betas: Vec<f64>,
    idles: Vec<f64>,
    load_fracs: Vec<f64>,
    price: Vec<f64>,
}

fn spec_strategy(max_d: usize, max_t: usize) -> impl Strategy<Value = Spec> {
    (1..=max_d).prop_flat_map(move |d| {
        (
            prop::collection::vec(1u32..=3, d..=d),
            prop::collection::vec(0.1..4.0_f64, d..=d),
            prop::collection::vec(0.1..2.0_f64, d..=d),
            prop::collection::vec(0.0..1.0_f64, 2..=max_t),
            prop::collection::vec(0.2..2.5_f64, max_t..=max_t),
        )
            .prop_map(move |(counts, betas, idles, load_fracs, price)| Spec {
                d,
                counts,
                betas,
                idles,
                load_fracs,
                price,
            })
    })
}

fn time_independent(spec: &Spec) -> Instance {
    let types: Vec<ServerType> = (0..spec.d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                spec.counts[j],
                spec.betas[j],
                1.0 + j as f64,
                CostModel::linear(spec.idles[j], 0.5),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<_>>())
        .build()
        .expect("feasible by construction")
}

fn time_dependent(spec: &Spec) -> Instance {
    let horizon = spec.load_fracs.len();
    let types: Vec<ServerType> = (0..spec.d)
        .map(|j| {
            ServerType::with_spec(
                format!("t{j}"),
                spec.counts[j],
                spec.betas[j],
                1.0 + j as f64,
                CostSpec::scaled(
                    CostModel::linear(spec.idles[j], 0.5),
                    spec.price[..horizon].to_vec(),
                ),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<_>>())
        .build()
        .expect("feasible by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 1: Algorithm A's schedule is always feasible and dominates
    /// the prefix optima computed by an identical reference solver.
    #[test]
    fn algorithm_a_feasible_and_dominating(spec in spec_strategy(2, 8)) {
        let inst = time_independent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
        // Reference prefix solver running in lockstep.
        let mut reference = PrefixDp::new(&inst, DpOptions { parallel: false, ..Default::default() });
        let mut schedule = Vec::new();
        for t in 0..inst.horizon() {
            let x = algo.decide(&inst, t);
            let xhat = reference.step(&inst, &oracle, t);
            prop_assert!(x.dominates(&xhat), "t={t}: {x:?} !≥ {xhat:?}");
            prop_assert!(inst.is_admissible(t, &x));
            schedule.push(x);
        }
        prop_assert!(rsz_core::Schedule::new(schedule).is_feasible(&inst));
    }

    /// Theorem 8: C(X^A) ≤ (2d+1)·OPT on random instances.
    #[test]
    fn theorem_8_bound(spec in spec_strategy(2, 8)) {
        let inst = time_independent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
        let outcome = run(&inst, &mut algo, &oracle);
        let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * spec.d as f64 + 1.0) * opt;
        prop_assert!(outcome.cost() <= bound + 1e-6, "{} > {bound}", outcome.cost());
    }

    /// Corollary 9: with constant (load-independent) costs the bound
    /// tightens to 2d.
    #[test]
    fn corollary_9_bound(spec in spec_strategy(2, 8)) {
        let types: Vec<ServerType> = (0..spec.d)
            .map(|j| {
                ServerType::new(
                    format!("t{j}"),
                    spec.counts[j],
                    spec.betas[j],
                    1.0 + j as f64,
                    CostModel::constant(spec.idles[j]),
                )
            })
            .collect();
        let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
        let inst = Instance::builder()
            .server_types(types)
            .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<_>>())
            .build()
            .expect("feasible");
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
        let outcome = run(&inst, &mut algo, &oracle);
        let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let bound = 2.0 * spec.d as f64 * opt;
        prop_assert!(outcome.cost() <= bound + 1e-6, "{} > {bound}", outcome.cost());
    }

    /// Lemma 10 + Theorem 13 for Algorithm B on time-dependent costs.
    #[test]
    fn theorem_13_bound(spec in spec_strategy(2, 8)) {
        let inst = time_dependent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmB::new(&inst, oracle, AOptions::default());
        let outcome = run(&inst, &mut algo, &oracle);
        prop_assert!(outcome.schedule.is_feasible(&inst));
        let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * spec.d as f64 + 1.0 + c_constant(&inst)) * opt;
        prop_assert!(outcome.cost() <= bound + 1e-6, "{} > {bound}", outcome.cost());
    }

    /// Theorem 15 for Algorithm C, including c(Ĩ) ≤ ε.
    #[test]
    fn theorem_15_bound(spec in spec_strategy(1, 6), eps in 0.3..1.5_f64) {
        let inst = time_dependent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmC::new(&inst, oracle, COptions { epsilon: eps, ..Default::default() });
        let outcome = run(&inst, &mut algo, &oracle);
        prop_assert!(outcome.schedule.is_feasible(&inst));
        prop_assert!(algo.realized_c() <= eps + 1e-9);
        let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let bound = (2.0 * spec.d as f64 + 1.0 + eps) * opt;
        prop_assert!(outcome.cost() <= bound + 1e-6, "{} > {bound}", outcome.cost());
    }

    /// Online decisions never depend on the future: running with
    /// physically truncated instances yields the identical schedule.
    #[test]
    fn algorithms_are_online(spec in spec_strategy(2, 6)) {
        let inst = time_dependent(&spec);
        let oracle = Dispatcher::new();

        let mut b1 = AlgorithmB::new(&inst, oracle, AOptions::default());
        let full = run(&inst, &mut b1, &oracle);
        let mut b2 = AlgorithmB::new(&inst, oracle, AOptions::default());
        let revealed = rsz_online::runner::run_with_prefix_revelation(&inst, &mut b2, &oracle);
        prop_assert_eq!(full.schedule, revealed.schedule);
    }

    /// The γ-backend variant of Algorithm A stays feasible and dominates
    /// its own (approximate) prefix targets.
    #[test]
    fn gamma_backend_feasible(spec in spec_strategy(2, 6)) {
        let inst = time_independent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmA::new(
            &inst,
            oracle,
            AOptions { grid: GridMode::Gamma(1.5), parallel: false, ..AOptions::default() },
        );
        let outcome = run(&inst, &mut algo, &oracle);
        prop_assert!(outcome.schedule.is_feasible(&inst));
    }

    /// Algorithm A's active set only changes through retire/raise: the
    /// count never drops below the prefix optimum and never exceeds the
    /// running maximum of targets.
    #[test]
    fn algorithm_a_counts_bounded_by_target_history(spec in spec_strategy(1, 8)) {
        let inst = time_independent(&spec);
        let oracle = Dispatcher::new();
        let mut algo = AlgorithmA::new(&inst, oracle, AOptions::default());
        let mut reference = PrefixDp::new(&inst, DpOptions { parallel: false, ..Default::default() });
        let mut hist_max = Config::zeros(inst.num_types());
        for t in 0..inst.horizon() {
            let x = algo.decide(&inst, t);
            let xhat = reference.step(&inst, &oracle, t);
            hist_max = hist_max.max_with(&xhat);
            prop_assert!(hist_max.dominates(&x), "t={t}: {x:?} exceeds history {hist_max:?}");
        }
    }
}

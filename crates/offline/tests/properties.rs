//! Property-based tests for the offline solvers.
//!
//! The central invariants: the distance-transform DP equals both the
//! naive transform and the independent graph implementation; DP values
//! lower-bound every explicitly enumerated schedule; γ-grids keep their
//! guarantee.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rsz_core::{CostModel, CostSpec, Instance, Schedule, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::dp::{betas, dp_step_scaled, forward_tables, solve, solve_cost_only, DpOptions};
use rsz_offline::table::Table;
use rsz_offline::transform::{arrival_transform, arrival_transform_naive};
use rsz_offline::{brute, graph, GridMode};

#[derive(Clone, Debug)]
struct InstSpec {
    counts: Vec<u32>,
    betas: Vec<f64>,
    idles: Vec<f64>,
    rates: Vec<f64>,
    load_fracs: Vec<f64>,
}

fn inst_strategy(max_d: usize, max_m: u32, max_t: usize) -> impl Strategy<Value = InstSpec> {
    (1..=max_d).prop_flat_map(move |d| {
        (
            prop::collection::vec(1..=max_m, d..=d),
            prop::collection::vec(0.0..4.0_f64, d..=d),
            prop::collection::vec(0.1..2.0_f64, d..=d),
            prop::collection::vec(0.0..2.0_f64, d..=d),
            prop::collection::vec(0.0..1.0_f64, 1..=max_t),
        )
            .prop_map(|(counts, betas, idles, rates, load_fracs)| InstSpec {
                counts,
                betas,
                idles,
                rates,
                load_fracs,
            })
    })
}

fn build(spec: &InstSpec) -> Instance {
    let types: Vec<ServerType> = (0..spec.counts.len())
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                spec.counts[j],
                spec.betas[j],
                1.0,
                CostModel::linear(spec.idles[j], spec.rates[j]),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    let loads: Vec<f64> = spec.load_fracs.iter().map(|f| f * cap).collect();
    Instance::builder()
        .server_types(types)
        .loads(loads)
        .build()
        .expect("spec instances are feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scan transform equals the naive O(n²) transform on random tables
    /// with random (different) source and target grids.
    #[test]
    fn transform_equals_naive(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = rng.gen_range(1..=3);
        let rand_levels = |rng: &mut StdRng| -> Vec<Vec<u32>> {
            (0..d)
                .map(|_| {
                    let m = rng.gen_range(0..=5);
                    let mut v: Vec<u32> = (0..=m).filter(|_| rng.gen_bool(0.6)).collect();
                    if v.is_empty() {
                        v.push(0);
                    }
                    v
                })
                .collect()
        };
        let from = rand_levels(&mut rng);
        let to = rand_levels(&mut rng);
        let betas: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..3.0)).collect();
        let mut table = Table::new(from, 0.0);
        for v in table.values_mut() {
            *v = if rng.gen_bool(0.15) { f64::INFINITY } else { rng.gen_range(0.0..9.0) };
        }
        let fast = arrival_transform(&table, &to, &betas);
        let naive = arrival_transform_naive(&table, &to, &betas);
        for i in 0..fast.len() {
            let (a, b) = (fast.values()[i], naive.values()[i]);
            prop_assert!(a == b || (a - b).abs() < 1e-9, "cell {i}: {a} vs {b}");
        }
    }

    /// The DP value lower-bounds the cost of any random feasible
    /// schedule (DP optimality, tested from below).
    #[test]
    fn dp_lower_bounds_random_schedules(spec in inst_strategy(2, 3, 5), seed in 0u64..1_000) {
        let inst = build(&spec);
        let oracle = Dispatcher::new();
        let opt = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            // Random feasible schedule: for each slot pick counts that
            // cover the load.
            let mut steps = Vec::new();
            for t in 0..inst.horizon() {
                let mut counts: Vec<u32> =
                    (0..inst.num_types()).map(|j| rng.gen_range(0..=inst.server_count(t, j))).collect();
                // raise until feasible
                let mut cap: f64 = counts
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| f64::from(c) * inst.capacity(j))
                    .sum();
                let mut j = 0usize;
                while cap < inst.load(t) {
                    if counts[j] < inst.server_count(t, j) {
                        counts[j] += 1;
                        cap += inst.capacity(j);
                    }
                    j = (j + 1) % inst.num_types();
                }
                steps.push(rsz_core::Config::new(counts));
            }
            let sched = Schedule::new(steps);
            prop_assert!(sched.is_feasible(&inst));
            let cost = rsz_core::objective::evaluate(&inst, &sched, &oracle).total();
            prop_assert!(opt <= cost + 1e-9, "DP {opt} above random schedule {cost}");
        }
    }

    /// DP == independent graph implementation == brute enumeration on
    /// tiny instances.
    #[test]
    fn dp_graph_brute_agree(spec in inst_strategy(2, 2, 4)) {
        let inst = build(&spec);
        let oracle = Dispatcher::new();
        let dp = solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let g = graph::solve(&inst, &oracle, GridMode::Full);
        let bf = brute::solve(&inst, &oracle);
        prop_assert!((dp.cost - g.cost).abs() < 1e-9, "dp {} vs graph {}", dp.cost, g.cost);
        prop_assert!((dp.cost - bf.cost).abs() < 1e-9, "dp {} vs brute {}", dp.cost, bf.cost);
        // And the recovered schedule prices to the DP value.
        let priced = rsz_core::objective::evaluate(&inst, &dp.schedule, &oracle).total();
        prop_assert!((priced - dp.cost).abs() < 1e-9);
    }

    /// γ-grid optimum is sandwiched: exact ≤ γ-DP ≤ (2γ−1)·exact.
    #[test]
    fn gamma_guarantee(spec in inst_strategy(1, 12, 6), gamma in 1.1..3.0_f64) {
        let inst = build(&spec);
        let oracle = Dispatcher::new();
        let exact = solve_cost_only(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let apx = solve_cost_only(
            &inst,
            &oracle,
            DpOptions { grid: GridMode::Gamma(gamma), parallel: false, ..DpOptions::default() },
        );
        prop_assert!(apx + 1e-9 >= exact);
        prop_assert!(
            apx <= (2.0 * gamma - 1.0) * exact + 1e-9,
            "γ={gamma}: {apx} > {} · {exact}",
            2.0 * gamma - 1.0
        );
    }

    /// The memoizing oracle drives the DP to bit-identical tables,
    /// costs and schedules — with sequential and parallel fills, on
    /// time-independent and time-dependent costs alike.
    #[test]
    fn cached_dp_is_bit_identical(
        spec in inst_strategy(2, 3, 5),
        price in prop::collection::vec(0.25..3.0_f64, 5..=5),
        time_dependent in prop_oneof![Just(false), Just(true)],
    ) {
        let mut inst = build(&spec);
        if time_dependent {
            // Re-build with a per-slot price profile on every type.
            let horizon = inst.horizon();
            let types: Vec<ServerType> = inst
                .types()
                .iter()
                .map(|ty| {
                    let base = CostModel::linear(1.0, 1.0);
                    ServerType::with_spec(
                        ty.name.clone(),
                        ty.count,
                        ty.switching_cost,
                        ty.capacity,
                        CostSpec::scaled(base, price[..horizon].to_vec()),
                    )
                })
                .collect();
            inst = Instance::builder()
                .server_types(types)
                .loads(inst.loads().to_vec())
                .build()
                .expect("re-priced instance stays feasible");
        }
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        for parallel in [false, true] {
            let opts = DpOptions { parallel, ..Default::default() };
            let want = forward_tables(&inst, &plain, opts);
            let got = forward_tables(&inst, &cached, opts);
            for (t, (a, b)) in want.iter().zip(&got).enumerate() {
                for i in 0..a.len() {
                    prop_assert_eq!(
                        a.values()[i].to_bits(), b.values()[i].to_bits(),
                        "parallel={} t={} cell {}: {} vs {}",
                        parallel, t, i, a.values()[i], b.values()[i]
                    );
                }
            }
            let ws = solve(&inst, &plain, opts);
            let gs = solve(&inst, &cached, opts);
            prop_assert_eq!(ws.cost.to_bits(), gs.cost.to_bits());
            prop_assert_eq!(ws.schedule, gs.schedule);
        }
    }

    /// Algorithm C's scaled sub-slot steps (`dp_step_scaled` with
    /// overridden λ and `1/ñ` scale) are bit-identical under the cache —
    /// the cache must partition per slot on time-dependent costs yet
    /// share the unscaled solve across a slot's sub-slots.
    #[test]
    fn cached_scaled_steps_are_bit_identical(
        spec in inst_strategy(2, 3, 4),
        subslots in 1usize..4,
        lambda_frac in 0.0..1.0_f64,
    ) {
        let inst = build(&spec);
        let plain = Dispatcher::new();
        let cached = CachedDispatcher::new(&inst);
        let b = betas(&inst);
        let opts = DpOptions { parallel: false, ..Default::default() };
        let scale = 1.0 / subslots as f64;
        let mut want = Table::origin(inst.num_types());
        let mut got = Table::origin(inst.num_types());
        for t in 0..inst.horizon() {
            let lambda = lambda_frac * inst.load(t);
            for _ in 0..subslots {
                want = dp_step_scaled(&want, &inst, &plain, t, lambda, scale, &b, opts);
                got = dp_step_scaled(&got, &inst, &cached, t, lambda, scale, &b, opts);
                for i in 0..want.len() {
                    prop_assert_eq!(
                        want.values()[i].to_bits(), got.values()[i].to_bits(),
                        "t={} cell {}", t, i
                    );
                }
            }
        }
        // The cache must have shared solves across sub-slots.
        if subslots > 1 {
            let stats = cached.stats();
            prop_assert!(stats.hits > 0, "sub-slot reuse expected, stats {:?}", stats);
        }
    }

    /// Monotonicity in the workload: removing the last slot never
    /// increases the optimal cost.
    #[test]
    fn prefix_costs_monotone(spec in inst_strategy(2, 3, 6)) {
        let inst = build(&spec);
        let oracle = Dispatcher::new();
        let opts = DpOptions { parallel: false, ..Default::default() };
        let mut prev = 0.0;
        for t in 1..=inst.horizon() {
            let c = solve_cost_only(&inst.truncated(t), &oracle, opts);
            prop_assert!(c + 1e-9 >= prev, "prefix cost decreased: {c} < {prev}");
            prev = c;
        }
    }
}

/// Acceptance gate for the checkpointed recovery: on a `T = 1024`
/// instance the solver must never hold more than `O(√T)` tables alive —
/// checkpoints plus one replayed segment (plus its pricing batch) —
/// while still recovering exactly the schedule the fully materialized
/// `O(T)`-table backtrack produces.
#[test]
fn recovery_memory_is_sqrt_t_on_long_horizons() {
    use rsz_offline::dp::{backtrack, solve_with_stats};
    let horizon = 1024;
    // Time-dependent prices disable the time-independent pricing pool,
    // so the accounting below is pure checkpoints + segment replay.
    let prices: Vec<f64> = (0..horizon).map(|t| 0.8 + 0.05 * ((t % 11) as f64)).collect();
    let inst = Instance::builder()
        .server_type(ServerType::with_spec(
            "a",
            3,
            2.0,
            2.0,
            CostSpec::scaled(CostModel::power(1.0, 0.5, 2.0), prices),
        ))
        .loads((0..horizon).map(|t| 1.0 + ((t * 5) % 6) as f64 * 0.8).collect::<Vec<f64>>())
        .build()
        .unwrap();
    let oracle = Dispatcher::new();
    for pipeline in [false, true] {
        // Checkpointing is forced: under Auto this non-poolable
        // instance would (correctly) materialize within the memory
        // budget instead of paying the replay — the machinery under
        // test here is the checkpointed recovery itself.
        let opts = DpOptions {
            parallel: false,
            pipeline,
            recovery: rsz_offline::RecoveryMode::Checkpointed,
            ..Default::default()
        };
        let (res, stats) = solve_with_stats(&inst, &oracle, opts);
        assert_eq!(stats.horizon, horizon);
        assert_eq!(stats.segment_len, 32, "⌈√1024⌉");
        assert_eq!(stats.checkpoints, 32);
        assert_eq!(stats.pooled_pricing_tables, 0, "time-dependent: no pool");
        // Checkpoints (≤ √T) + one replayed segment (≤ √T OPT tables)
        // + the segment's pricing batch (≤ √T, pipeline only) + rolling
        // state — far below the T tables full materialization holds.
        let bound = 3 * stats.segment_len + 8;
        assert!(
            stats.peak_live_tables <= bound,
            "pipeline={pipeline}: peak {} tables exceeds O(√T) bound {}",
            stats.peak_live_tables,
            bound
        );
        assert!(stats.peak_live_tables < horizon / 4, "not meaningfully below O(T)");
        // And the recovered schedule matches the O(T)-memory reference.
        let full = backtrack(&inst, &forward_tables(&inst, &oracle, opts));
        assert_eq!(full.schedule, res.schedule, "pipeline={pipeline}");
        assert!((full.cost - res.cost).abs() <= 1e-9 * full.cost.abs().max(1.0));
    }
}

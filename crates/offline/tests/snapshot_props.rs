//! Property tests of the engine snapshot layer
//! (`rsz_offline::engine::snapshot` + `PrefixDp::{save_state,
//! restore_state}`).
//!
//! The contract: seal a mid-horizon [`PrefixDp`] into the versioned,
//! checksummed envelope, restore it into a freshly built solver (same
//! instance, same options), step the remaining slots — and every
//! decision and every prefix-optimal cost is **bit-identical** to the
//! uninterrupted run, across the {engine} × {cache} × {grid} matrix.
//! Corrupting any single byte of the sealed snapshot must fail
//! structurally (checksum, magic, version, or a field guard) — never
//! panic, never restore into garbage.

use proptest::prelude::*;
use rsz_core::{CostModel, GtOracle, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::incremental::PrefixDp;
use rsz_offline::{Decoder, DpOptions, Encoder, GridMode, SnapshotError};

#[derive(Clone, Debug)]
struct Spec {
    counts: Vec<u32>,
    load_fracs: Vec<f64>,
    cut_frac: f64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1..=2_usize).prop_flat_map(|d| {
        (
            prop::collection::vec(2..=3_u32, d..=d),
            prop::collection::vec(0.0..1.0_f64, 3..=7),
            0.1..0.9_f64,
        )
            .prop_map(|(counts, load_fracs, cut_frac)| Spec {
                counts,
                load_fracs,
                cut_frac,
            })
    })
}

fn build(spec: &Spec) -> Instance {
    let types: Vec<ServerType> = spec
        .counts
        .iter()
        .enumerate()
        .map(|(j, &m)| {
            ServerType::new(
                format!("t{j}"),
                m,
                1.0 + j as f64,
                1.0 + 0.5 * j as f64,
                CostModel::linear(0.4 + 0.2 * j as f64, 1.0),
            )
        })
        .collect();
    let cap: f64 = types.iter().map(|ty| f64::from(ty.count) * ty.capacity).sum();
    let loads: Vec<f64> = spec.load_fracs.iter().map(|f| f * cap).collect();
    Instance::builder().server_types(types).loads(loads).build().unwrap()
}

/// Step the full horizon uninterrupted; step to `cut`, seal, restore
/// into a fresh solver, finish — and demand bit-identity throughout.
fn round_trip(
    instance: &Instance,
    oracle: &(impl GtOracle + Sync),
    options: DpOptions,
    cut_frac: f64,
) {
    let horizon = instance.horizon();
    let cut = ((horizon as f64 * cut_frac) as usize).clamp(1, horizon - 1);

    let mut uninterrupted = PrefixDp::new(instance, options);
    let mut want = Vec::with_capacity(horizon);
    for t in 0..horizon {
        let config = uninterrupted.step(instance, oracle, t);
        want.push((config, uninterrupted.prefix_opt_cost()));
    }

    let mut first = PrefixDp::new(instance, options);
    for t in 0..cut {
        first.step(instance, oracle, t);
    }
    let mut enc = Encoder::new();
    first.save_state(&mut enc);
    let sealed = enc.into_sealed();

    let mut resumed = PrefixDp::new(instance, options);
    let mut dec = Decoder::from_sealed(&sealed).expect("sealed snapshot must open");
    resumed.restore_state(instance, &mut dec).expect("restore into same-options solver");
    assert_eq!(resumed.slots_processed(), cut);
    for (t, (want_config, want_cost)) in want.iter().enumerate().take(horizon).skip(cut) {
        let config = resumed.step(instance, oracle, t);
        assert_eq!(&config, want_config, "slot {t}: decision diverged after restore");
        assert_eq!(
            resumed.prefix_opt_cost().to_bits(),
            want_cost.to_bits(),
            "slot {t}: prefix-optimal cost diverged after restore"
        );
    }

    // Every single-byte corruption of the sealed bytes fails
    // structurally. Byte 7 is the version, bytes 0..7 the magic, the
    // tail the checksum; everything between is checksummed payload.
    for idx in 0..sealed.len() {
        let mut bad = sealed.clone();
        bad[idx] ^= 0x40;
        let failed = match Decoder::from_sealed(&bad) {
            Err(_) => true,
            Ok(mut dec) => {
                let mut victim = PrefixDp::new(instance, options);
                victim.restore_state(instance, &mut dec).is_err()
            }
        };
        assert!(failed, "flipping byte {idx} went unnoticed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prefix_dp_round_trips_across_the_matrix(spec in spec_strategy()) {
        let instance = build(&spec);
        for engine in [false, true] {
            for grid in [GridMode::Full, GridMode::Gamma(1.5)] {
                let options = DpOptions { engine, grid, ..DpOptions::default() };
                round_trip(&instance, &Dispatcher::new(), options, spec.cut_frac);
                round_trip(&instance, &CachedDispatcher::new(&instance), options, spec.cut_frac);
            }
        }
    }
}

#[test]
fn sealed_envelope_reports_specific_failures() {
    let mut enc = Encoder::new();
    enc.put_u64(0xDEAD_BEEF);
    let sealed = enc.into_sealed();

    // Truncation below the fixed envelope overhead.
    assert_eq!(Decoder::from_sealed(&sealed[..4]).unwrap_err(), SnapshotError::Truncated);

    // Magic damage.
    let mut bad = sealed.clone();
    bad[0] ^= 0xFF;
    assert_eq!(Decoder::from_sealed(&bad).unwrap_err(), SnapshotError::BadMagic);

    // Unknown version.
    let mut bad = sealed.clone();
    bad[7] = 99;
    assert_eq!(Decoder::from_sealed(&bad).unwrap_err(), SnapshotError::BadVersion(99));

    // Payload corruption -> checksum mismatch.
    let mut bad = sealed.clone();
    let payload_at = bad.len() - 8 - 1;
    bad[payload_at] ^= 0x01;
    assert_eq!(Decoder::from_sealed(&bad).unwrap_err(), SnapshotError::ChecksumMismatch);

    // Clean round trip for contrast.
    let mut dec = Decoder::from_sealed(&sealed).unwrap();
    assert_eq!(dec.take_u64(), Ok(0xDEAD_BEEF));
    assert!(dec.is_empty());
}

#[test]
fn restore_refuses_cross_mode_snapshots() {
    let spec = Spec { counts: vec![2], load_fracs: vec![0.3, 0.7, 0.5], cut_frac: 0.5 };
    let instance = build(&spec);
    let oracle = Dispatcher::new();
    for (save_engine, restore_engine) in [(false, true), (true, false)] {
        let mut src =
            PrefixDp::new(&instance, DpOptions { engine: save_engine, ..DpOptions::default() });
        src.step(&instance, &oracle, 0);
        let mut enc = Encoder::new();
        src.save_state(&mut enc);
        let sealed = enc.into_sealed();
        let mut dst =
            PrefixDp::new(&instance, DpOptions { engine: restore_engine, ..DpOptions::default() });
        let mut dec = Decoder::from_sealed(&sealed).unwrap();
        assert!(
            dst.restore_state(&instance, &mut dec).is_err(),
            "engine {save_engine} snapshot restored into engine {restore_engine} solver"
        );
    }
}

//! Property-based tests of the coarse-to-fine corridor solver
//! (`rsz_offline::refine`).
//!
//! The contract under test, per ISSUE 5's acceptance criteria:
//!
//! * **Exactness** — refined-exact solves recover schedules *identical*
//!   to unrestricted full-grid solves (costs within the documented
//!   `1e-9` relative sweep tolerance), across plain and memoizing
//!   oracles, legacy and pipeline pricing, and both fine-grid targets
//!   (`Full` and `Γ`).
//! * **Termination** — the band-expansion fixpoint finishes within
//!   `max_rounds` banded rounds plus at most one full-grid fallback
//!   round, and stays exact even when `max_rounds = 1` forces the
//!   fallback immediately.
//! * **The `(1+ε)` early-stop guarantee** — one coarse pass plus one
//!   banded pass costs at most `(2γ₀−1)·OPT = (1+ε)·OPT` (Theorems
//!   16/21), never beats the exact optimum, and never exceeds the
//!   coarse solve it was lifted from.

use proptest::prelude::*;
use rsz_core::{CostModel, CostSpec, Instance, ServerType};
use rsz_dispatch::{CachedDispatcher, Dispatcher};
use rsz_offline::dp::{solve, DpOptions};
use rsz_offline::refine::{solve_refined, RefineOptions};
use rsz_offline::GridMode;

#[derive(Clone, Debug)]
struct Spec {
    counts: Vec<u32>,
    betas: Vec<f64>,
    idles: Vec<f64>,
    rates: Vec<f64>,
    load_fracs: Vec<f64>,
    price: Vec<f64>,
}

fn spec_strategy(max_d: usize, max_m: u32, max_t: usize) -> impl Strategy<Value = Spec> {
    (1..=max_d).prop_flat_map(move |d| {
        (
            prop::collection::vec(2..=max_m, d..=d),
            prop::collection::vec(0.1..4.0_f64, d..=d),
            prop::collection::vec(0.1..2.0_f64, d..=d),
            prop::collection::vec(0.0..2.0_f64, d..=d),
            prop::collection::vec(0.0..1.0_f64, 2..=max_t),
            prop::collection::vec(0.25..2.5_f64, max_t..=max_t),
        )
            .prop_map(|(counts, betas, idles, rates, load_fracs, price)| Spec {
                counts,
                betas,
                idles,
                rates,
                load_fracs,
                price,
            })
    })
}

fn build(spec: &Spec, time_dependent: bool) -> Instance {
    let horizon = spec.load_fracs.len();
    let types: Vec<ServerType> = (0..spec.counts.len())
        .map(|j| {
            let base = CostModel::linear(spec.idles[j], spec.rates[j]);
            if time_dependent {
                ServerType::with_spec(
                    format!("t{j}"),
                    spec.counts[j],
                    spec.betas[j],
                    1.0,
                    CostSpec::scaled(base, spec.price[..horizon].to_vec()),
                )
            } else {
                ServerType::new(format!("t{j}"), spec.counts[j], spec.betas[j], 1.0, base)
            }
        })
        .collect();
    let cap: f64 = types.iter().map(ServerType::fleet_capacity).sum();
    Instance::builder()
        .server_types(types)
        .loads(spec.load_fracs.iter().map(|f| f * cap).collect::<Vec<f64>>())
        .build()
        .expect("spec instances are feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Refined-exact solves are schedule-identical to unrestricted
    /// solves across {plain, cached} oracles × {legacy, pipeline}
    /// pricing × {Full, Γ(1.5)} fine targets × both cost shapes.
    #[test]
    fn refined_exact_matches_unrestricted(
        spec in spec_strategy(2, 14, 8),
        time_dependent in prop_oneof![Just(false), Just(true)],
        pipeline in prop_oneof![Just(false), Just(true)],
        cached in prop_oneof![Just(false), Just(true)],
    ) {
        let inst = build(&spec, time_dependent);
        for target in [GridMode::Full, GridMode::Gamma(1.5)] {
            let base = DpOptions { parallel: false, pipeline, grid: target, ..DpOptions::default() };
            let refined_opts = DpOptions {
                refine: Some(RefineOptions::exact().with_target(target)),
                ..base
            };
            let (want, got) = if cached {
                let oracle = CachedDispatcher::new(&inst);
                (solve(&inst, &oracle, base), solve(&inst, &oracle, refined_opts))
            } else {
                let oracle = Dispatcher::new();
                (solve(&inst, &oracle, base), solve(&inst, &oracle, refined_opts))
            };
            prop_assert_eq!(
                &want.schedule, &got.schedule,
                "target {:?} pipeline={} cached={} td={}: schedules diverged",
                target, pipeline, cached, time_dependent
            );
            prop_assert!(
                (want.cost - got.cost).abs() <= 1e-9 * want.cost.abs().max(1.0),
                "cost gap: {} vs {}", want.cost, got.cost
            );
        }
    }

    /// The expansion fixpoint terminates within `max_rounds` banded
    /// rounds (+ 1 fallback round), whatever the coarse gamma; and a
    /// `max_rounds = 1` budget still returns the exact schedule via the
    /// fallback.
    #[test]
    fn expansion_terminates_within_max_rounds(
        spec in spec_strategy(2, 12, 6),
        gamma in 1.1..4.0_f64,
        max_rounds in 1usize..6,
    ) {
        let inst = build(&spec, false);
        let oracle = Dispatcher::new();
        let base = DpOptions { parallel: false, ..DpOptions::default() };
        let refine = RefineOptions { max_rounds, ..RefineOptions::exact().with_gamma(gamma) };
        let opts = DpOptions { refine: Some(refine), ..base };
        let (got, stats) = solve_refined(&inst, &oracle, opts);
        prop_assert!(
            stats.rounds <= max_rounds + 2,
            "rounds {} exceeded budget {} (+ verification + fallback)", stats.rounds, max_rounds
        );
        let want = solve(&inst, &oracle, base);
        prop_assert_eq!(&want.schedule, &got.schedule, "gamma={}: fixpoint lost exactness", gamma);
    }

    /// `(1+ε)` early-stop: exact ≤ refined ≤ min(coarse, (2γ₀−1)·exact).
    #[test]
    fn epsilon_mode_within_corridor_factor_of_exact(
        spec in spec_strategy(2, 14, 6),
        eps in 0.2..2.0_f64,
    ) {
        let inst = build(&spec, false);
        let oracle = Dispatcher::new();
        let base = DpOptions { parallel: false, ..DpOptions::default() };
        let exact = solve(&inst, &oracle, base);
        let refine = RefineOptions::epsilon(eps);
        let factor = refine.corridor_factor(); // 2γ₀ − 1 = 1 + ε
        let (got, stats) = solve_refined(&inst, &oracle, DpOptions { refine: Some(refine), ..base });
        prop_assert!(stats.early_stopped);
        prop_assert_eq!(stats.rounds, 1, "early-stop must not expand");
        prop_assert!(got.cost + 1e-9 >= exact.cost, "cannot beat exact: {} vs {}", got.cost, exact.cost);
        prop_assert!(
            got.cost <= factor * exact.cost + 1e-9,
            "corridor-factor guarantee: {} vs {}·{}", got.cost, factor, exact.cost
        );
        prop_assert!(
            got.cost <= stats.coarse_cost + 1e-9,
            "banded refinement must not lose to its own coarse solve: {} vs {}",
            got.cost, stats.coarse_cost
        );
        got.schedule.check_feasible(&inst).unwrap();
    }
}

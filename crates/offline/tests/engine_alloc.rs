//! Steady-state allocation accounting of the online decision engine.
//!
//! The whole point of the in-place prefix stepping (double-buffered
//! tables, persistent suffix/levels/counts scratch) plus the dense
//! priced-slot pool is that a cluster controller's per-slot hot path
//! stops touching the allocator once warm. This harness registers a
//! counting `#[global_allocator]` (the test binary is its own process,
//! so the hook is safe) and asserts **zero** allocations across the
//! steady-state portion of a run — the engine analogue of PR 3's
//! live-table-counting test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::DpOptions;
use rsz_offline::PrefixDp;

/// Counts every allocation and reallocation (deallocations are free to
/// happen — the invariant under test is "no new heap memory").
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A time-independent instance whose loads tile an 8-slot "day": after
/// one period every `(λ, grid)` pricing is pool-resident.
fn tiled_instance(horizon: usize) -> Instance {
    let day = [1.0, 3.0, 6.0, 8.0, 7.0, 4.0, 2.0, 0.5];
    let loads: Vec<f64> = (0..horizon).map(|t| day[t % day.len()]).collect();
    Instance::builder()
        .server_type(ServerType::new("cpu", 6, 2.0, 1.0, CostModel::linear(0.5, 1.0)))
        .server_type(ServerType::new("gpu", 4, 3.0, 2.0, CostModel::power(1.0, 0.5, 2.0)))
        .loads(loads)
        .build()
        .expect("tiled instance feasible")
}

#[test]
fn steady_state_prefix_step_is_allocation_free() {
    let horizon = 48;
    let inst = tiled_instance(horizon);
    let oracle = Dispatcher::new();
    let opts = DpOptions { engine: true, parallel: false, threads: Some(1), ..Default::default() };
    let mut pre = PrefixDp::new(&inst, opts);

    // Warm-up: two full periods price every distinct (λ, grid) into the
    // pool and grow every scratch buffer to its high-water mark.
    for t in 0..16 {
        let _ = pre.step_counts(&inst, &oracle, t);
    }

    let before = allocations();
    for t in 16..horizon {
        let counts = pre.step_counts(&inst, &oracle, t);
        assert!(!counts.is_empty());
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state PrefixDp::step must not touch the allocator ({during} allocations across {} slots)",
        horizon - 16
    );

    // Sanity: the engine really was answering from the pool.
    let stats = pre.engine_stats().expect("engine on");
    assert_eq!(stats.pricings, 8, "one pricing per distinct day slot");
    assert_eq!(stats.pool_hits, horizon as u64 - 8);
}

#[test]
fn legacy_step_matches_engine_decisions_on_the_same_trace() {
    // Companion check in the same process (same allocator): the engine's
    // zero-alloc path and the legacy per-cell path pick identical
    // prefix-optimal configurations.
    let inst = tiled_instance(24);
    let oracle = Dispatcher::new();
    let base = DpOptions { parallel: false, ..Default::default() };
    let mut legacy = PrefixDp::new(&inst, base);
    let mut engine = PrefixDp::new(&inst, DpOptions { engine: true, ..base });
    for t in 0..inst.horizon() {
        let a = legacy.step(&inst, &oracle, t);
        let b = engine.step(&inst, &oracle, t);
        assert_eq!(a, b, "t={t}");
    }
}

//! Lanes/scalar parity for the kernel layer.
//!
//! The kernel twins in `rsz_offline::kernels` promise **bit-identical**
//! results, not epsilon-close ones — the determinism matrix relies on a
//! scalar-forced solve reproducing the lanes solve bit for bit. These
//! properties pin that contract directly on the kernels, across every
//! lane remainder (`len % 4 ∈ {0, 1, 2, 3}`), with `+∞`-saturated lines
//! mixed in, and check the NaN-free invariant the bit-identity argument
//! rests on.

use proptest::prelude::*;
use rsz_offline::kernels::{
    argmin_scan_lanes, argmin_scan_scalar, axpy_fold_lanes, axpy_fold_scalar, min_scan_lanes,
    min_scan_scalar, suffix_min_inplace_lanes, suffix_min_inplace_scalar,
};

/// One table cell: a nonnegative cost, an exact near-tie of a round
/// value (to exercise the argmin tie window), or the `+∞` infeasibility
/// marker. Never NaN, never negative — the solver's table invariant.
fn cell() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..1.0e4_f64,
        Just(5.0),
        Just(5.0 + 1e-10),
        Just(5.0 + 1e-7),
        Just(0.0),
        Just(f64::INFINITY),
    ]
}

/// Lines long enough to cover full 4-blocks plus every remainder.
fn line() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(cell(), 0..=67)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn suffix_min_twins_are_bit_identical(v in line()) {
        let mut a = v;
        let mut b = a.clone();
        suffix_min_inplace_scalar(&mut a);
        suffix_min_inplace_lanes(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        prop_assert!(a.iter().all(|v| !v.is_nan()), "suffix minima stay NaN-free");
    }

    #[test]
    fn axpy_twins_are_bit_identical(
        pair in prop::collection::vec((cell(), cell()), 0..=67),
        scale in prop_oneof![Just(0.0), Just(1.0), 0.0..3.0_f64],
    ) {
        let (v0, g): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        let mut a = v0.clone();
        let mut b = v0.clone();
        axpy_fold_scalar(&mut a, &g, scale);
        axpy_fold_lanes(&mut b, &g, scale);
        prop_assert_eq!(bits(&a), bits(&b));
        // The saturation rule, cell by cell: an infinite g poisons the
        // cell even at scale 0 (0·∞ would be NaN — the kernel must not
        // compute it), an infinite v stays put, finite cells accrue.
        for i in 0..a.len() {
            prop_assert!(!a[i].is_nan(), "cell {i} went NaN");
            if !g[i].is_finite() {
                prop_assert_eq!(a[i], f64::INFINITY);
            } else if v0[i].is_finite() {
                prop_assert_eq!(a[i].to_bits(), (v0[i] + scale * g[i]).to_bits());
            } else {
                prop_assert_eq!(a[i], f64::INFINITY);
            }
        }
    }

    #[test]
    fn min_scan_twins_are_bit_identical(v in line()) {
        prop_assert_eq!(min_scan_scalar(&v).to_bits(), min_scan_lanes(&v).to_bits());
    }

    #[test]
    fn argmin_twins_pick_the_same_winner(
        v in line(),
        totals in prop::collection::vec(0u64..6, 67..=67),
    ) {
        let scalar = argmin_scan_scalar(&v, |i| totals[i]);
        let lanes = argmin_scan_lanes(&v, |i| totals[i]);
        prop_assert_eq!(scalar, lanes);
        match scalar {
            None => prop_assert!(v.iter().all(|x| !x.is_finite())),
            Some(i) => prop_assert!(v[i].is_finite()),
        }
    }
}

/// Deterministic sweep over every lane remainder at small lengths, where
/// a block-boundary bug would hide from random sampling the longest.
#[test]
fn every_lane_remainder_matches_at_small_lengths() {
    for n in 0..=13usize {
        let v: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 3 { f64::INFINITY } else { ((i * 37) % 11) as f64 * 0.5 })
            .collect();
        let mut a = v.clone();
        let mut b = v.clone();
        suffix_min_inplace_scalar(&mut a);
        suffix_min_inplace_lanes(&mut b);
        assert_eq!(bits(&a), bits(&b), "suffix n={n}");

        let g: Vec<f64> = (0..n)
            .map(|i| if i % 7 == 2 { f64::INFINITY } else { ((i * 13) % 9) as f64 * 0.25 })
            .collect();
        let mut a = v.clone();
        let mut b = v.clone();
        axpy_fold_scalar(&mut a, &g, 1.5);
        axpy_fold_lanes(&mut b, &g, 1.5);
        assert_eq!(bits(&a), bits(&b), "axpy n={n}");

        assert_eq!(min_scan_scalar(&v).to_bits(), min_scan_lanes(&v).to_bits(), "min n={n}");
        assert_eq!(
            argmin_scan_scalar(&v, |i| (i % 3) as u64),
            argmin_scan_lanes(&v, |i| (i % 3) as u64),
            "argmin n={n}"
        );
    }
}

/// Fully `+∞`-saturated lines: the all-infeasible edge every kernel must
/// treat as "no winner / everything stays infinite".
#[test]
fn saturated_lines_agree_and_stay_saturated() {
    for n in [0usize, 1, 3, 4, 5, 8, 11] {
        let inf = vec![f64::INFINITY; n];
        let mut a = inf.clone();
        let mut b = inf.clone();
        suffix_min_inplace_scalar(&mut a);
        suffix_min_inplace_lanes(&mut b);
        assert!(a.iter().chain(&b).all(|&v| v == f64::INFINITY), "n={n}");

        let mut a = inf.clone();
        let mut b = inf.clone();
        axpy_fold_scalar(&mut a, &inf, 1.0);
        axpy_fold_lanes(&mut b, &inf, 1.0);
        assert!(a.iter().chain(&b).all(|&v| v == f64::INFINITY), "n={n}");

        assert_eq!(min_scan_scalar(&inf), f64::INFINITY);
        assert_eq!(min_scan_lanes(&inf), f64::INFINITY);
        assert_eq!(argmin_scan_scalar(&inf, |_| 0), None);
        assert_eq!(argmin_scan_lanes(&inf, |_| 0), None);
    }
}

//! Cross-validation of all offline solvers on richer instance families
//! than the unit tests cover: piecewise-linear and power costs,
//! time-varying fleets, γ-grids, and the corridor witness.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rsz_core::cost::PiecewiseLinearCost;
use rsz_core::{CostModel, Instance, ServerType};
use rsz_dispatch::Dispatcher;
use rsz_offline::dp::{solve, solve_cost_only, DpOptions};
use rsz_offline::rounding::{corridor_invariant_holds, corridor_schedule};
use rsz_offline::{brute, graph, relax, GridMode};

fn random_cost(rng: &mut StdRng) -> CostModel {
    match rng.gen_range(0..4) {
        0 => CostModel::constant(rng.gen_range(0.2..2.0)),
        1 => CostModel::linear(rng.gen_range(0.0..1.5), rng.gen_range(0.0..2.0)),
        2 => CostModel::power(
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.1..1.5),
            rng.gen_range(1.0..3.0),
        ),
        _ => {
            // Random convex piecewise-linear curve with increasing slopes.
            let idle = rng.gen_range(0.0..1.0);
            let mut slope = rng.gen_range(0.1..1.0);
            let mut points = vec![(0.0, idle)];
            let mut z = 0.0;
            let mut c = idle;
            for _ in 0..rng.gen_range(1..4) {
                let dz = rng.gen_range(0.3..1.5);
                z += dz;
                c += slope * dz;
                points.push((z, c));
                slope += rng.gen_range(0.0..1.0);
            }
            CostModel::PiecewiseLinear(PiecewiseLinearCost::new(&points))
        }
    }
}

fn random_instance(rng: &mut StdRng, time_varying_m: bool) -> Instance {
    let d = rng.gen_range(1..=2);
    let horizon = rng.gen_range(2..=5);
    let types: Vec<ServerType> = (0..d)
        .map(|j| {
            ServerType::new(
                format!("t{j}"),
                rng.gen_range(1..=2),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.5..2.5),
                random_cost(rng),
            )
        })
        .collect();
    let mut builder = Instance::builder().server_types(types.clone());
    let counts: Option<Vec<Vec<u32>>> = if time_varying_m {
        Some(
            (0..horizon)
                .map(|_| types.iter().map(|ty| rng.gen_range(1..=ty.count)).collect())
                .collect(),
        )
    } else {
        None
    };
    let loads: Vec<f64> = (0..horizon)
        .map(|t| {
            let cap: f64 = match &counts {
                Some(m) => m[t].iter().zip(&types).map(|(&c, ty)| f64::from(c) * ty.capacity).sum(),
                None => types.iter().map(ServerType::fleet_capacity).sum(),
            };
            rng.gen_range(0.0..cap)
        })
        .collect();
    builder = builder.loads(loads);
    if let Some(m) = counts {
        builder = builder.counts_over_time(m);
    }
    builder.build().expect("random instances are feasible by construction")
}

#[test]
fn dp_graph_brute_agree_on_mixed_costs() {
    let mut rng = StdRng::seed_from_u64(2024);
    let oracle = Dispatcher::new();
    for trial in 0..40 {
        let inst = random_instance(&mut rng, false);
        let dp = solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let g = graph::solve(&inst, &oracle, GridMode::Full);
        let bf = brute::solve(&inst, &oracle);
        assert!(
            (dp.cost - g.cost).abs() < 1e-7 * dp.cost.abs().max(1.0),
            "trial {trial}: dp {} vs graph {}",
            dp.cost,
            g.cost
        );
        assert!(
            (dp.cost - bf.cost).abs() < 1e-7 * dp.cost.abs().max(1.0),
            "trial {trial}: dp {} vs brute {}",
            dp.cost,
            bf.cost
        );
    }
}

#[test]
fn dp_equals_brute_with_time_varying_fleets() {
    let mut rng = StdRng::seed_from_u64(77);
    let oracle = Dispatcher::new();
    for trial in 0..25 {
        let inst = random_instance(&mut rng, true);
        let dp = solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        let bf = brute::solve(&inst, &oracle);
        assert!(
            (dp.cost - bf.cost).abs() < 1e-7 * dp.cost.abs().max(1.0),
            "trial {trial}: dp {} vs brute {}",
            dp.cost,
            bf.cost
        );
        dp.schedule.check_feasible(&inst).unwrap();
    }
}

#[test]
fn corridor_witness_bounds_hold_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(31);
    let oracle = Dispatcher::new();
    for _ in 0..15 {
        let m = rng.gen_range(4..=12);
        let horizon = rng.gen_range(3..=8);
        let inst = Instance::builder()
            .server_type(ServerType::new(
                "a",
                m,
                rng.gen_range(0.5..3.0),
                1.0,
                CostModel::linear(rng.gen_range(0.1..1.0), rng.gen_range(0.0..1.5)),
            ))
            .loads((0..horizon).map(|_| rng.gen_range(0.0..f64::from(m))).collect::<Vec<_>>())
            .build()
            .unwrap();
        let opt = solve(&inst, &oracle, DpOptions { parallel: false, ..Default::default() });
        for gamma in [1.2, 1.7, 2.5] {
            let w = corridor_schedule(&inst, &opt.schedule, gamma);
            assert!(corridor_invariant_holds(&inst, &opt.schedule, &w, gamma));
            w.check_feasible(&inst).unwrap();
            let wc = rsz_core::objective::evaluate(&inst, &w, &oracle).total();
            assert!(wc <= (2.0 * gamma - 1.0) * opt.cost + 1e-9);
            // The γ-grid DP beats its witness.
            let gdp = solve_cost_only(
                &inst,
                &oracle,
                DpOptions { grid: GridMode::Gamma(gamma), parallel: false, ..DpOptions::default() },
            );
            assert!(gdp <= wc + 1e-9);
        }
    }
}

#[test]
fn subdivision_bounds_bracket_discrete_optimum() {
    let mut rng = StdRng::seed_from_u64(5);
    let oracle = Dispatcher::new();
    let opts = DpOptions { parallel: false, ..Default::default() };
    for _ in 0..10 {
        let inst = random_instance(&mut rng, false);
        let discrete = solve_cost_only(&inst, &oracle, opts);
        let lb2 = relax::fractional_lower_bound(&inst, &oracle, 2, opts);
        let lb4 = relax::fractional_lower_bound(&inst, &oracle, 4, opts);
        assert!(lb4 <= lb2 + 1e-9, "finer granularity must not cost more");
        assert!(lb2 <= discrete + 1e-9, "relaxation must lower-bound the discrete optimum");
    }
}
